//! End-to-end protocol tests for the Zeus deployment: propagation,
//! ordering, leader failover, observer/proxy failure handling, and the
//! on-disk-cache availability property from §3.4 of the paper.

use simnet::prelude::*;
use zeus::deploy::{DeployConfig, ZeusDeployment};
use zeus::ensemble::EnsembleActor;
use zeus::observer::ObserverActor;
use zeus::proxy::ProxyActor;
use zeus::pull::{PullClientActor, PullMsg, PullServerActor};

fn deployment(seed: u64, subscriptions: Vec<String>) -> (Sim, ZeusDeployment) {
    // 3 regions × 2 clusters × 10 servers = 60 nodes.
    let topo = Topology::symmetric(3, 2, 10);
    let mut sim = Sim::new(topo, NetConfig::datacenter(), seed);
    let cfg = DeployConfig {
        ensemble_size: 5,
        observers_per_cluster: 2,
        subscriptions,
        ..DeployConfig::default()
    };
    let zeus = ZeusDeployment::install(&mut sim, &cfg);
    sim.run_for(SimDuration::from_secs(1));
    (sim, zeus)
}

#[test]
fn write_reaches_every_proxy() {
    let (mut sim, zeus) = deployment(1, vec!["cfg/a".into()]);
    let t = sim.now();
    zeus.write_at(&mut sim, t, "cfg/a", &b"v1"[..]);
    sim.run_for(SimDuration::from_secs(2));
    assert_eq!(zeus.coverage(&sim, "cfg/a", b"v1"), 1.0);
    // Propagation latency samples were recorded for every proxy.
    let s = sim.metrics().summary("zeus.propagation_s").unwrap();
    assert_eq!(s.count, zeus.proxies.len());
    assert!(s.max < 2.0, "p100 propagation took {}s", s.max);
}

#[test]
fn updates_arrive_in_order_and_last_wins() {
    let (mut sim, zeus) = deployment(2, vec!["cfg/seq".into()]);
    let t = sim.now();
    for i in 0..20u32 {
        zeus.write_at(&mut sim, t, "cfg/seq", format!("v{i}").into_bytes());
    }
    sim.run_for(SimDuration::from_secs(3));
    assert_eq!(zeus.coverage(&sim, "cfg/seq", b"v19"), 1.0);
}

#[test]
fn late_subscription_gets_current_value() {
    let (mut sim, zeus) = deployment(3, vec![]);
    let t = sim.now();
    zeus.write_at(&mut sim, t, "cfg/late", &b"current"[..]);
    sim.run_for(SimDuration::from_secs(1));
    // Nobody was subscribed; now everyone subscribes and must receive the
    // value already committed (observer answers from its replica).
    zeus.subscribe_all(&mut sim, "cfg/late");
    sim.run_for(SimDuration::from_secs(2));
    assert_eq!(zeus.coverage(&sim, "cfg/late", b"current"), 1.0);
}

#[test]
fn leader_crash_elects_new_leader_and_writes_continue() {
    let (mut sim, zeus) = deployment(4, vec!["cfg/f".into()]);
    let t = sim.now();
    zeus.write_at(&mut sim, t, "cfg/f", &b"before"[..]);
    sim.run_for(SimDuration::from_secs(2));
    assert_eq!(zeus.coverage(&sim, "cfg/f", b"before"), 1.0);

    // Kill the leader; a follower must take over.
    let old_leader = zeus.initial_leader();
    sim.crash(old_leader);
    sim.run_for(SimDuration::from_secs(5));
    let leaders: Vec<NodeId> = zeus
        .ensemble
        .iter()
        .copied()
        .filter(|&n| n != old_leader)
        .filter(|&n| {
            sim.actor::<EnsembleActor>(n)
                .map(|a| a.is_leader())
                .unwrap_or(false)
        })
        .collect();
    assert_eq!(leaders.len(), 1, "exactly one live leader: {leaders:?}");
    let new_leader = leaders[0];
    assert!(sim.metrics().counter("zeus.leader_elections") >= 1);

    // Writes through the new leader propagate to the whole fleet.
    let msg = zeus::ZeusMsg::Propose {
        path: "cfg/f".to_string(),
        data: bytes::Bytes::from_static(b"after"),
        origin: sim.now(),
        trace: None,
    };
    let now = sim.now();
    sim.post(now, new_leader, new_leader, Box::new(msg));
    sim.run_for(SimDuration::from_secs(3));
    assert_eq!(zeus.coverage(&sim, "cfg/f", b"after"), 1.0);
}

#[test]
fn crashed_follower_catches_up_on_recovery() {
    let (mut sim, zeus) = deployment(5, vec![]);
    let victim = zeus.ensemble[3];
    sim.crash(victim);
    let t = sim.now();
    for i in 0..5u32 {
        zeus.write_at(
            &mut sim,
            t,
            &format!("cfg/k{i}"),
            format!("v{i}").into_bytes(),
        );
    }
    sim.run_for(SimDuration::from_secs(2));
    sim.recover(victim);
    sim.run_for(SimDuration::from_secs(3));
    let actor: &EnsembleActor = sim.actor(victim).unwrap();
    assert_eq!(actor.store().len(), 5, "recovered follower must catch up");
}

#[test]
fn crashed_observer_catches_up_and_proxies_fail_over() {
    let (mut sim, zeus) = deployment(6, vec!["cfg/x".into()]);
    // Crash one observer, write, let proxies fail over to the sibling
    // observer in the same cluster.
    let victim = zeus.observers[0];
    sim.crash(victim);
    let t = sim.now();
    zeus.write_at(&mut sim, t, "cfg/x", &b"v1"[..]);
    sim.run_for(SimDuration::from_secs(5));
    assert_eq!(
        zeus.coverage(&sim, "cfg/x", b"v1"),
        1.0,
        "proxies must reach the data through the surviving observer"
    );
    assert!(sim.metrics().counter("zeus.proxy_failovers") > 0);

    // The observer recovers and must resync the missed write.
    sim.recover(victim);
    sim.run_for(SimDuration::from_secs(2));
    let obs: &ObserverActor = sim.actor(victim).unwrap();
    assert_eq!(&obs.store().get("cfg/x").unwrap().data[..], b"v1");
}

#[test]
fn disk_cache_survives_proxy_crash() {
    let (mut sim, zeus) = deployment(7, vec!["cfg/d".into()]);
    let t = sim.now();
    zeus.write_at(&mut sim, t, "cfg/d", &b"cached"[..]);
    sim.run_for(SimDuration::from_secs(2));
    let proxy_node = zeus.proxies[0];
    sim.crash(proxy_node);
    // Even with the proxy process down, the application reads the on-disk
    // cache directly (§3.4's availability fallback).
    let proxy: &ProxyActor = sim.actor(proxy_node).unwrap();
    assert_eq!(
        &proxy.disk_cache().get("cfg/d").unwrap().data[..],
        b"cached"
    );
}

#[test]
fn all_components_down_apps_still_read_cache() {
    let (mut sim, zeus) = deployment(8, vec!["cfg/all".into()]);
    let t = sim.now();
    zeus.write_at(&mut sim, t, "cfg/all", &b"v"[..]);
    sim.run_for(SimDuration::from_secs(2));
    // Crash everything: ensemble, observers, proxies.
    for &n in zeus
        .ensemble
        .iter()
        .chain(zeus.observers.iter())
        .chain(zeus.proxies.iter())
    {
        sim.crash(n);
    }
    sim.run_for(SimDuration::from_secs(1));
    for &p in &zeus.proxies {
        let proxy: &ProxyActor = sim.actor(p).unwrap();
        assert!(proxy.disk_cache().get("cfg/all").is_some());
    }
}

#[test]
fn pull_baseline_polls_and_converges() {
    let topo = Topology::symmetric(1, 1, 21);
    let mut sim = Sim::new(topo, NetConfig::datacenter(), 9);
    let server = NodeId(0);
    sim.add_actor(server, Box::new(PullServerActor::new()));
    let paths: Vec<String> = (0..10).map(|i| format!("cfg/p{i}")).collect();
    for n in 1..21u32 {
        sim.add_actor(
            NodeId(n),
            Box::new(PullClientActor::new(
                server,
                SimDuration::from_secs(2),
                paths.clone(),
            )),
        );
    }
    // Seed one config; most polls will be empty — the pure overhead the
    // paper calls out.
    let now = sim.now();
    sim.post(
        now,
        server,
        server,
        Box::new(PullMsg::Set {
            path: "cfg/p3".into(),
            data: bytes::Bytes::from_static(b"v"),
            origin: now,
        }),
    );
    sim.run_for(SimDuration::from_secs(30));
    for n in 1..21u32 {
        let c: &PullClientActor = sim.actor(NodeId(n)).unwrap();
        assert_eq!(&c.read("cfg/p3").unwrap().data[..], b"v");
    }
    let polls = sim.metrics().counter("pull.polls");
    let empty = sim.metrics().counter("pull.empty_polls");
    assert!(polls > 200, "20 clients × ~15 polls: got {polls}");
    assert!(
        empty as f64 / polls as f64 > 0.9,
        "most polls should be empty: {empty}/{polls}"
    );
    // Staleness is bounded by the poll interval plus network time.
    let s = sim.metrics().summary("pull.staleness_s").unwrap();
    assert!(
        s.max <= 2.5,
        "staleness bounded by poll interval: {}",
        s.max
    );
}

#[test]
fn deterministic_given_seed() {
    let run = |seed: u64| {
        let (mut sim, zeus) = deployment(seed, vec!["cfg/det".into()]);
        let t = sim.now();
        zeus.write_at(&mut sim, t, "cfg/det", &b"v"[..]);
        sim.run_for(SimDuration::from_secs(2));
        let s = sim.metrics().summary("zeus.propagation_s").unwrap();
        (s.mean, sim.events_processed())
    };
    assert_eq!(run(42), run(42));
}

#[test]
fn minority_partition_stalls_then_catches_up() {
    // 3 regions; the ensemble has 5 members spread 2/2/1. Partitioning
    // region 2 (1 member + its observers/proxies) leaves a quorum of 4 on
    // the majority side: writes keep committing there, the minority's
    // proxies stop seeing updates, and everything converges after healing.
    let (mut sim, zeus) = deployment(20, vec!["cfg/p".into()]);
    let r2 = RegionId(2);
    sim.partition(RegionId(0), r2);
    sim.partition(RegionId(1), r2);
    let t = sim.now();
    zeus.write_at(&mut sim, t, "cfg/p", &b"during"[..]);
    sim.run_for(SimDuration::from_secs(5));

    // Majority-side proxies have the write; minority-side do not.
    let topo = sim.topology().clone();
    let (minority, majority): (Vec<_>, Vec<_>) = zeus
        .proxies
        .iter()
        .copied()
        .partition(|&p| topo.placement(p).region == r2);
    let have = |sim: &Sim, nodes: &[NodeId]| {
        nodes
            .iter()
            .filter(|&&p| {
                sim.actor::<ProxyActor>(p)
                    .and_then(|a| a.read("cfg/p"))
                    .map(|w| &w.data[..] == b"during")
                    .unwrap_or(false)
            })
            .count()
    };
    assert_eq!(
        have(&sim, &majority),
        majority.len(),
        "majority side converged"
    );
    assert_eq!(have(&sim, &minority), 0, "partitioned region is stale");

    // Heal: the minority observers resync from the leader and push to
    // their proxies.
    sim.heal(RegionId(0), r2);
    sim.heal(RegionId(1), r2);
    sim.run_for(SimDuration::from_secs(10));
    assert_eq!(have(&sim, &minority), minority.len(), "minority caught up");
}

/// The up ensemble member claiming leadership with the highest epoch.
fn max_epoch_leader(sim: &Sim, ensemble: &[NodeId]) -> NodeId {
    ensemble
        .iter()
        .copied()
        .filter(|&n| sim.is_up(n))
        .filter(|&n| {
            sim.actor::<EnsembleActor>(n)
                .map(|a| a.is_leader())
                .unwrap_or(false)
        })
        .max_by_key(|&n| sim.actor::<EnsembleActor>(n).unwrap().epoch())
        .expect("a leader exists")
}

#[test]
fn acked_write_survives_leader_crash_mid_propose() {
    let (mut sim, zeus) = deployment(30, vec!["cfg/ack".into()]);
    let t = sim.now();
    zeus.write_at(&mut sim, t, "cfg/ack", &b"acked"[..]);
    // Long enough for the quorum commit (the acknowledgment), short enough
    // that distribution to the fleet is still in flight.
    sim.run_for(SimDuration::from_millis(300));
    let old_leader = zeus.initial_leader();
    assert!(
        sim.actor::<EnsembleActor>(old_leader)
            .unwrap()
            .store()
            .get("cfg/ack")
            .is_some(),
        "write must be committed at the leader before the crash"
    );
    sim.crash(old_leader);
    sim.run_for(SimDuration::from_secs(5));

    // The new leader inherited the acknowledged write, and the whole fleet
    // converged to it despite the mid-distribution crash.
    let new_leader = max_epoch_leader(&sim, &zeus.ensemble);
    assert_ne!(new_leader, old_leader);
    let a: &EnsembleActor = sim.actor(new_leader).unwrap();
    assert_eq!(&a.store().get("cfg/ack").unwrap().data[..], b"acked");
    assert_eq!(zeus.coverage(&sim, "cfg/ack", b"acked"), 1.0);
}

#[test]
fn proxy_crash_recover_serves_stale_cache_under_partition() {
    let (mut sim, zeus) = deployment(31, vec!["cfg/stale".into()]);
    let t = sim.now();
    zeus.write_at(&mut sim, t, "cfg/stale", &b"v1"[..]);
    sim.run_for(SimDuration::from_secs(2));
    assert_eq!(zeus.coverage(&sim, "cfg/stale", b"v1"), 1.0);

    // Cut region 2 off and advance the config on the majority side.
    let r2 = RegionId(2);
    sim.partition(RegionId(0), r2);
    sim.partition(RegionId(1), r2);
    let topo = sim.topology().clone();
    let victim = zeus
        .proxies
        .iter()
        .copied()
        .find(|&p| topo.placement(p).region == r2)
        .unwrap();
    let t = sim.now();
    zeus.write_current(&mut sim, t, "cfg/stale", &b"v2"[..]);
    sim.run_for(SimDuration::from_secs(1));

    // Crash the partitioned proxy: its on-disk cache keeps serving the
    // stale-but-available value (§3.4's fallback).
    sim.crash(victim);
    sim.run_for(SimDuration::from_secs(1));
    let proxy: &ProxyActor = sim.actor(victim).unwrap();
    assert_eq!(
        &proxy.disk_cache().get("cfg/stale").unwrap().data[..],
        b"v1"
    );

    // Recovered but still partitioned: serves the stale value, not nothing.
    sim.recover(victim);
    sim.run_for(SimDuration::from_secs(2));
    let proxy: &ProxyActor = sim.actor(victim).unwrap();
    assert_eq!(&proxy.read("cfg/stale").unwrap().data[..], b"v1");

    // Healed: converges to the majority's head.
    sim.heal(RegionId(0), r2);
    sim.heal(RegionId(1), r2);
    sim.run_for(SimDuration::from_secs(5));
    assert_eq!(zeus.coverage(&sim, "cfg/stale", b"v2"), 1.0);
}

#[test]
fn sole_observer_crash_exhausts_failover_then_reconnects() {
    // One observer per cluster: when it crashes, its proxies have no
    // failover target and must back off instead of spinning.
    let topo = Topology::symmetric(3, 2, 10);
    let mut sim = Sim::new(topo, NetConfig::datacenter(), 32);
    let cfg = DeployConfig {
        ensemble_size: 5,
        observers_per_cluster: 1,
        subscriptions: vec!["cfg/sole".into()],
        ..DeployConfig::default()
    };
    let zeus = ZeusDeployment::install(&mut sim, &cfg);
    sim.run_for(SimDuration::from_secs(1));
    let t = sim.now();
    zeus.write_at(&mut sim, t, "cfg/sole", &b"v1"[..]);
    sim.run_for(SimDuration::from_secs(2));
    assert_eq!(zeus.coverage(&sim, "cfg/sole", b"v1"), 1.0);

    let victim = zeus.observers[0];
    sim.crash(victim);
    sim.run_for(SimDuration::from_secs(10));
    assert!(
        sim.metrics().counter("zeus.proxy_failover_exhausted") > 0,
        "orphaned proxies must report exhausted failover"
    );
    // Cached reads keep working the whole time.
    assert_eq!(zeus.coverage(&sim, "cfg/sole", b"v1"), 1.0);

    // Once the observer returns, backed-off proxies reconnect (within the
    // 8s backoff cap) and new writes flow again.
    sim.recover(victim);
    let t = sim.now();
    zeus.write_at(&mut sim, t, "cfg/sole", &b"v2"[..]);
    sim.run_for(SimDuration::from_secs(12));
    assert_eq!(zeus.coverage(&sim, "cfg/sole", b"v2"), 1.0);
}

#[test]
fn dropped_updates_heal_via_retransmit_and_gap_resync() {
    let (mut sim, zeus) = deployment(33, vec!["cfg/loss".into()]);
    // A lossy network drops 30% of messages: ensemble appends/acks and
    // observer pushes all take hits.
    sim.set_link_faults(LinkFaults {
        drop_prob: 0.3,
        delay_prob: 0.0,
        max_extra_delay: SimDuration::ZERO,
    });
    let t = sim.now();
    for i in 0..15u64 {
        zeus.write_current(
            &mut sim,
            SimTime(t.0 + i * 200_000),
            "cfg/loss",
            format!("v{i}").into_bytes(),
        );
    }
    sim.run_for(SimDuration::from_secs(5));
    sim.clear_link_faults();
    sim.run_for(SimDuration::from_secs(10));

    // The leader had to retransmit stalled appends, observers had to detect
    // push gaps and resync — and the final value still reached everyone.
    assert!(sim.metrics().counter("zeus.append_retransmits") > 0);
    assert!(sim.metrics().counter("zeus.observer_gap_resyncs") > 0);
    assert_eq!(zeus.coverage(&sim, "cfg/loss", b"v14"), 1.0);
}

#[test]
fn traces_survive_retransmission_without_orphans_or_double_counts() {
    use simnet::trace::RecordKind;
    use zeus::metrics::hops;

    let (mut sim, zeus) = deployment(35, vec!["cfg/traced".into()]);
    // 30% loss forces retransmits and duplicate deliveries on every tier.
    sim.set_link_faults(LinkFaults {
        drop_prob: 0.3,
        delay_prob: 0.0,
        max_extra_delay: SimDuration::ZERO,
    });
    let t = sim.now();
    let mut roots = Vec::new();
    for i in 0..10u64 {
        let at = SimTime(t.0 + i * 200_000);
        let root = sim
            .tracer_mut()
            .start("cfg/traced", "driver.write", None, at, vec![]);
        roots.push(root);
        zeus.write_current_traced(
            &mut sim,
            at,
            "cfg/traced",
            format!("v{i}").into_bytes(),
            Some(root),
        );
    }
    sim.run_for(SimDuration::from_secs(5));
    sim.clear_link_faults();
    sim.run_for(SimDuration::from_secs(10));
    assert_eq!(zeus.coverage(&sim, "cfg/traced", b"v9"), 1.0);
    assert!(sim.metrics().counter("zeus.append_retransmits") > 0);

    let tracer = sim.tracer();
    let mut retransmit_annots = 0usize;
    for root in &roots {
        // Every hop's parent context was recorded before the message
        // carrying it was sent: no orphans, even across drops and resyncs.
        assert!(
            tracer.orphans(root.trace).is_empty(),
            "orphan records in trace {:?}",
            root.trace
        );
        // Duplicate deliveries never double-count a hop: each (hop, node)
        // pair appears at most once per trace.
        let mut seen = std::collections::HashSet::new();
        for r in tracer.trace_records(root.trace) {
            if r.kind == RecordKind::Span {
                assert!(
                    seen.insert((r.name, r.node)),
                    "hop {} recorded twice on {:?} in trace {:?}",
                    r.name,
                    r.node,
                    root.trace
                );
            } else if r.name == hops::RETRANSMIT {
                retransmit_annots += 1;
            }
        }
    }
    // Retransmissions are annotated (every one counts), not re-recorded as
    // hops.
    assert!(
        retransmit_annots > 0,
        "lossy run produced no retransmit annotations"
    );

    // The final write's trace reaches client visibility on every proxy.
    let last = roots.last().unwrap();
    let proxy_applies = tracer
        .trace_records(last.trace)
        .iter()
        .filter(|r| r.kind == RecordKind::Span && r.name == hops::PROXY_APPLY)
        .count();
    assert_eq!(proxy_applies, zeus.proxies.len());
}

#[test]
fn rejoining_partitioned_member_cannot_wedge_the_leader() {
    // The sole region-2 member sits out a partition, inflating its promised
    // epoch with doomed candidacies. On rejoin its high-epoch ElectMe would
    // wedge a leader that silently ignored it (the classic disruptive-
    // server livelock); instead the leader steps down and the next election
    // outbids the disruptor.
    let (mut sim, zeus) = deployment(34, vec!["cfg/rejoin".into()]);
    let r2 = RegionId(2);
    sim.partition(RegionId(0), r2);
    sim.partition(RegionId(1), r2);
    let t = sim.now();
    for i in 0..10u64 {
        zeus.write_current(
            &mut sim,
            SimTime(t.0 + i * 400_000),
            "cfg/rejoin",
            format!("v{i}").into_bytes(),
        );
    }
    sim.run_for(SimDuration::from_secs(6));
    sim.heal(RegionId(0), r2);
    sim.heal(RegionId(1), r2);
    sim.run_for(SimDuration::from_secs(8));

    assert!(
        sim.metrics().counter("zeus.leader_stepdowns") >= 1,
        "the refused high-epoch candidacy must force a stepdown"
    );
    // The system settled on a working leader: a post-heal write commits
    // fleet-wide.
    let t = sim.now();
    zeus.write_current(&mut sim, t, "cfg/rejoin", &b"post-heal"[..]);
    sim.run_for(SimDuration::from_secs(3));
    assert_eq!(zeus.coverage(&sim, "cfg/rejoin", b"post-heal"), 1.0);
}

#[test]
fn uncommitted_minority_proposals_truncated_on_rejoin() {
    let (mut sim, zeus) = deployment(35, vec!["cfg/trunc".into()]);
    let t = sim.now();
    zeus.write_at(&mut sim, t, "cfg/trunc", &b"base"[..]);
    sim.run_for(SimDuration::from_secs(2));

    // Cut the leader's region (2 of 5 members) away from the quorum side,
    // then feed the stranded leader proposals it can never commit.
    let r0 = RegionId(0);
    sim.partition(r0, RegionId(1));
    sim.partition(r0, RegionId(2));
    let old_leader = zeus.initial_leader();
    let t = sim.now();
    for i in 0..3u32 {
        let msg = zeus::ZeusMsg::Propose {
            path: "cfg/trunc".into(),
            data: bytes::Bytes::from(format!("minority{i}").into_bytes()),
            origin: t,
            trace: None,
        };
        sim.post(t, old_leader, old_leader, Box::new(msg));
    }
    // The majority elects a fresh leader and commits a competing value.
    sim.run_for(SimDuration::from_secs(3));
    let majority_leader = max_epoch_leader(&sim, &zeus.ensemble);
    assert_ne!(majority_leader, old_leader);
    let t = sim.now();
    let msg = zeus::ZeusMsg::Propose {
        path: "cfg/trunc".into(),
        data: bytes::Bytes::from_static(b"majority"),
        origin: t,
        trace: None,
    };
    sim.post(t, majority_leader, majority_leader, Box::new(msg));
    sim.run_for(SimDuration::from_secs(2));

    // On heal the deposed leader must drop its uncommitted suffix and adopt
    // the majority history — no divergence, no resurrected writes.
    sim.heal(r0, RegionId(1));
    sim.heal(r0, RegionId(2));
    sim.run_for(SimDuration::from_secs(5));
    assert!(sim.metrics().counter("zeus.truncated_uncommitted") > 0);
    let a: &EnsembleActor = sim.actor(old_leader).unwrap();
    assert_eq!(&a.store().get("cfg/trunc").unwrap().data[..], b"majority");
    assert_eq!(zeus.coverage(&sim, "cfg/trunc", b"majority"), 1.0);
}

#[test]
fn write_sizes_affect_bytes_accounting() {
    let (mut sim, zeus) = deployment(21, vec!["big".into()]);
    let before = sim.metrics().counter("simnet.bytes_sent");
    let t = sim.now();
    zeus.write_at(&mut sim, t, "big", vec![0u8; 100_000]);
    sim.run_for(SimDuration::from_secs(3));
    let moved = sim.metrics().counter("simnet.bytes_sent") - before;
    // Ensemble replication + observer pushes + proxy notifies each carry
    // the payload: at least (proxies + observers) × 100 KB must move.
    let floor = (zeus.proxies.len() + zeus.observers.len()) as u64 * 100_000;
    assert!(moved > floor, "moved {moved} < floor {floor}");
}

/// Audits every ensemble member and observer: each zxid at or below the
/// node's contiguity cursor must actually be held. Batch frames are
/// all-or-nothing, and the cursor only advances through what arrived — a
/// partially applied frame (or a cursor advanced past a dropped sibling)
/// would surface here as a hole below the cursor.
fn audit_no_holes_below_cursor(sim: &Sim, zeus: &ZeusDeployment) {
    use std::collections::HashSet;
    for &n in &zeus.ensemble {
        let Some(a) = sim.actor::<EnsembleActor>(n) else {
            continue;
        };
        let c = a.contiguous();
        let held: HashSet<zeus::Zxid> = a.logged_zxids().into_iter().collect();
        let mut z = zeus::Zxid {
            epoch: c.epoch,
            counter: 1,
        };
        while z <= c {
            assert!(
                held.contains(&z) || z <= a.committed(),
                "ensemble {n:?}: hole at {z} below contiguity cursor {c}"
            );
            z = z.next();
        }
    }
    for &n in &zeus.observers {
        let Some(o) = sim.actor::<ObserverActor>(n) else {
            continue;
        };
        let c = o.contiguous();
        let held: HashSet<zeus::Zxid> = o.store().log_entries().map(|(z, _)| *z).collect();
        let mut z = zeus::Zxid {
            epoch: c.epoch,
            counter: 1,
        };
        while z <= c {
            assert!(
                held.contains(&z),
                "observer {n:?}: hole at {z} below contiguity cursor {c}"
            );
            z = z.next();
        }
    }
}

#[test]
fn batch_frames_deliver_all_or_nothing_under_drops() {
    // Every write goes to a distinct path so even a snapshot-shaped sync
    // reply carries the full history, keeping the audit exact.
    let (mut sim, zeus) = deployment(40, vec!["cfg/ao31".into()]);
    sim.set_link_faults(LinkFaults {
        drop_prob: 0.3,
        delay_prob: 0.0,
        max_extra_delay: SimDuration::ZERO,
    });
    let t = sim.now();
    for b in 0..4u64 {
        // Bursts land at one instant, which is what makes the leader form
        // multi-write AppendBatch / ObserverUpdateBatch frames.
        let at = SimTime(t.0 + b * 500_000);
        for i in 0..8u64 {
            let idx = b * 8 + i;
            zeus.write_current(
                &mut sim,
                at,
                &format!("cfg/ao{idx}"),
                format!("v{idx}").into_bytes(),
            );
        }
    }
    // Sample the invariant repeatedly WHILE drops are active: a partially
    // applied batch would be visible mid-flight, not after healing.
    for _ in 0..10 {
        sim.run_for(SimDuration::from_millis(400));
        audit_no_holes_below_cursor(&sim, &zeus);
    }
    sim.clear_link_faults();
    sim.run_for(SimDuration::from_secs(10));
    audit_no_holes_below_cursor(&sim, &zeus);

    // The lossy window really exercised the repair paths, and the watched
    // path still converged everywhere.
    assert!(sim.metrics().counter("zeus.append_retransmits") > 0);
    assert!(sim.metrics().counter("zeus.observer_gap_resyncs") > 0);
    assert_eq!(zeus.coverage(&sim, "cfg/ao31", b"v31"), 1.0);
}

#[test]
fn delivered_batches_never_double_count_trace_hops() {
    use simnet::trace::RecordKind;

    let (mut sim, zeus) = deployment(
        41,
        vec![
            "cfg/bt0".into(),
            "cfg/bt1".into(),
            "cfg/bt2".into(),
            "cfg/bt3".into(),
        ],
    );
    sim.set_link_faults(LinkFaults {
        drop_prob: 0.3,
        delay_prob: 0.0,
        max_extra_delay: SimDuration::ZERO,
    });
    // Traced bursts: simultaneous writes travel inside shared batch frames
    // (append retransmissions, observer pushes, coalesced notifies), so
    // each trace's hops are recorded off batched deliveries.
    let t = sim.now();
    let mut roots = Vec::new();
    for b in 0..3u64 {
        let at = SimTime(t.0 + b * 500_000);
        for i in 0..8u64 {
            let path = format!("cfg/bt{}", i % 4);
            let root = sim
                .tracer_mut()
                .start("cfg/bt", "driver.write", None, at, vec![]);
            roots.push(root);
            zeus.write_current_traced(
                &mut sim,
                at,
                &path,
                format!("v{}", b * 8 + i).into_bytes(),
                Some(root),
            );
        }
    }
    sim.run_for(SimDuration::from_secs(5));
    sim.clear_link_faults();
    sim.run_for(SimDuration::from_secs(10));
    assert!(sim.metrics().counter("zeus.append_retransmits") > 0);

    // A write delivered once inside a batch and again solo (or in another
    // batch) must still record each pipeline hop at most once per node.
    let tracer = sim.tracer();
    for root in &roots {
        assert!(
            tracer.orphans(root.trace).is_empty(),
            "orphan records in trace {:?}",
            root.trace
        );
        let mut seen = std::collections::HashSet::new();
        for r in tracer.trace_records(root.trace) {
            if r.kind == RecordKind::Span {
                assert!(
                    seen.insert((r.name, r.node)),
                    "hop {} recorded twice on {:?} in trace {:?}",
                    r.name,
                    r.node,
                    root.trace
                );
            }
        }
    }
    // The last burst's final writes win their paths fleet-wide.
    for i in 0..4u64 {
        let idx = 2 * 8 + 4 + i; // last burst writes each path twice; the
                                 // second write (i % 4 == i) is idx 20..23.
        let path = format!("cfg/bt{}", idx % 4);
        assert_eq!(
            zeus.coverage(&sim, &path, format!("v{idx}").as_bytes()),
            1.0,
            "path {path} did not converge to v{idx}"
        );
    }
}

#[test]
fn acked_write_is_never_retransmitted_to_that_follower() {
    use simnet::trace::RecordKind;
    use zeus::metrics::hops;

    let (mut sim, zeus) = deployment(42, vec!["cfg/ackreg".into()]);
    let leader = zeus.initial_leader();
    let followers: Vec<NodeId> = zeus
        .ensemble
        .iter()
        .copied()
        .filter(|&n| n != leader)
        .collect();
    let live = followers[0];
    let crashed = &followers[1..];
    for &f in crashed {
        sim.crash(f);
    }

    // With three of four followers down the write cannot reach a quorum
    // (leader + one ack = 2 of 5), so it stays pending and the heartbeat
    // pacer must keep retransmitting it — but only to the silent followers.
    let t = sim.now();
    let root = sim
        .tracer_mut()
        .start("cfg/ackreg", "driver.write", None, t, vec![]);
    zeus.write_current_traced(&mut sim, t, "cfg/ackreg", &b"v1"[..], Some(root));
    sim.run_for(SimDuration::from_secs(4));
    assert_eq!(sim.metrics().counter("zeus.commits"), 0);

    // Give the live follower's cumulative ack a generous second to land,
    // then require that every later retransmission targets a crashed
    // follower: an acked write is never re-sent to the follower that acked.
    let cutoff = SimTime(t.0 + 1_000_000);
    let mut late_to_crashed = 0u32;
    let mut late_to_live = 0u32;
    for r in sim.tracer().trace_records(root.trace) {
        if r.kind != RecordKind::Annot || r.name != hops::RETRANSMIT || r.at < cutoff {
            continue;
        }
        let Some((_, to)) = r.attrs.iter().find(|(k, _)| *k == "to") else {
            continue;
        };
        if *to == live.0.to_string() {
            late_to_live += 1;
        } else {
            late_to_crashed += 1;
        }
    }
    assert!(
        late_to_crashed > 0,
        "pacer stopped retransmitting to silent followers"
    );
    assert_eq!(
        late_to_live, 0,
        "write was re-sent to the follower that already acked it"
    );

    // Recovery completes the story: the crashed followers ack, the write
    // commits and reaches every proxy.
    for &f in crashed {
        sim.recover(f);
    }
    sim.run_for(SimDuration::from_secs(8));
    assert!(sim.metrics().counter("zeus.commits") >= 1);
    assert_eq!(zeus.coverage(&sim, "cfg/ackreg", b"v1"), 1.0);
}

#[test]
fn retransmit_chunk_adapts_to_measured_loss() {
    // Clean network: after enough appends the loss estimate settles at
    // zero and the retransmission chunk grows past the fixed default.
    let (mut sim, zeus) = deployment(31, vec![]);
    let t = sim.now();
    for i in 0..30u32 {
        zeus.write_at(&mut sim, t, &format!("cfg/clean{i}"), &b"v"[..]);
    }
    sim.run_for(SimDuration::from_secs(3));
    let leader = max_epoch_leader(&sim, &zeus.ensemble);
    let a: &EnsembleActor = sim.actor(leader).unwrap();
    for &f in zeus.ensemble.iter().filter(|&&n| n != leader) {
        assert!(
            a.retransmit_chunk_for(f) > zeus::types::MAX_BATCH_WRITES,
            "clean link should amortize past the fixed chunk"
        );
    }

    // Lossy network: the same workload drives the estimate up and the
    // chunk below the fixed default, bounding the all-or-nothing blast
    // radius per frame.
    let (mut sim, zeus) = deployment(32, vec![]);
    sim.set_link_faults(LinkFaults {
        drop_prob: 0.4,
        ..LinkFaults::default()
    });
    let t = sim.now();
    for i in 0..30u32 {
        zeus.write_at(&mut sim, t, &format!("cfg/lossy{i}"), &b"v"[..]);
    }
    sim.run_for(SimDuration::from_secs(6));
    let leader = max_epoch_leader(&sim, &zeus.ensemble);
    let a: &EnsembleActor = sim.actor(leader).unwrap();
    let adapted = zeus
        .ensemble
        .iter()
        .filter(|&&n| n != leader)
        .filter(|&&f| a.retransmit_chunk_for(f) < zeus::types::MAX_BATCH_WRITES)
        .count();
    assert!(
        adapted > 0,
        "40% drop must shrink the retransmission chunk on some link"
    );
}

#[test]
fn lease_expiry_during_oneway_partition_triggers_full_resubscribe() {
    use zeus::metrics::{LEASE_EXPIRIES, LEASE_RENEWALS};

    let (mut sim, zeus) = deployment(50, vec!["cfg/lease".into()]);
    // Install one cross-region watcher: a region-1 node watching a
    // region-0 observer, so a region-level one-way cut can sever exactly
    // the proxy→observer direction (pings and renewals) while the
    // observer→proxy direction stays up — the silent-expiry scenario a
    // symmetric partition cannot produce.
    let topo = sim.topology().clone();
    let observer = zeus.observers[0];
    assert_eq!(topo.placement(observer).region, RegionId(0));
    let cross = zeus
        .proxies
        .iter()
        .copied()
        .find(|&p| topo.placement(p).region == RegionId(1))
        .unwrap();
    sim.add_actor(
        cross,
        Box::new(ProxyActor::new(vec![observer], vec!["cfg/lease".into()])),
    );
    sim.run_for(SimDuration::from_secs(2));

    let t = sim.now();
    zeus.write_current(&mut sim, t, "cfg/lease", &b"v1"[..]);
    sim.run_for(SimDuration::from_secs(4));
    assert_eq!(zeus.coverage(&sim, "cfg/lease", b"v1"), 1.0);
    assert!(
        sim.metrics().counter(LEASE_RENEWALS) > 0,
        "watchers must be on the lease protocol"
    );
    let expiries_before = sim.metrics().counter(LEASE_EXPIRIES);

    // Cut region 1 → region 0 only. The cross watcher's pings vanish; the
    // observer hears nothing, and after the lease TTL its anti-entropy
    // sweep must expire the lease and drop the watches.
    sim.partition_oneway(RegionId(1), RegionId(0));
    sim.run_for(SimDuration::from_secs(10));
    assert!(
        sim.metrics().counter(LEASE_EXPIRIES) > expiries_before,
        "observer must expire the silent watcher's lease"
    );

    // A write committed while the watch is gone: the cut proxy must miss
    // it (its watch no longer exists at the observer) …
    let t = sim.now();
    zeus.write_current(&mut sim, t, "cfg/lease", &b"v2"[..]);
    sim.run_for(SimDuration::from_secs(2));
    let p: &ProxyActor = sim.actor(cross).unwrap();
    assert_eq!(
        &p.read("cfg/lease").unwrap().data[..],
        b"v1",
        "expired watcher must be stale during the cut"
    );

    // … and the post-heal re-establishment (fresh lease + full
    // re-subscribe with held versions) must deliver it: no lost
    // notifications.
    sim.heal_oneway(RegionId(1), RegionId(0));
    sim.run_for(SimDuration::from_secs(15));
    assert_eq!(
        zeus.coverage(&sim, "cfg/lease", b"v2"),
        1.0,
        "full re-subscribe must repair the missed write"
    );
}

#[test]
fn observer_restart_fences_stale_leases_and_watchers_fall_back() {
    use zeus::metrics::{LEASE_FALLS_BACK, LEASE_RENEWALS};

    let (mut sim, zeus) = deployment(51, vec!["cfg/fence".into()]);
    let t = sim.now();
    zeus.write_current(&mut sim, t, "cfg/fence", &b"v1"[..]);
    sim.run_for(SimDuration::from_secs(3));
    assert_eq!(zeus.coverage(&sim, "cfg/fence", b"v1"), 1.0);
    assert!(sim.metrics().counter(LEASE_RENEWALS) > 0);
    let falls_before = sim.metrics().counter(LEASE_FALLS_BACK);

    // Restart an observer in place (no simulated downtime, so no
    // healthcheck failover): recovery bumps its lease generation, fencing
    // every lease granted before the crash. The next ping from each
    // holder carries a now-unknown epoch and must be answered with a
    // failed-lease pong, driving the holder through the anti-entropy
    // fallback — a fresh lease and a full re-subscribe.
    let victim = zeus.observers[0];
    sim.crash(victim);
    sim.recover(victim);
    sim.run_for(SimDuration::from_secs(4));
    assert!(
        sim.metrics().counter(LEASE_FALLS_BACK) > falls_before,
        "stale-epoch watchers must fall back to a full re-subscribe"
    );

    // The fenced-and-reestablished watchers still get new writes.
    let t = sim.now();
    zeus.write_current(&mut sim, t, "cfg/fence", &b"v2"[..]);
    sim.run_for(SimDuration::from_secs(3));
    assert_eq!(zeus.coverage(&sim, "cfg/fence", b"v2"), 1.0);
}
