//! Drift audit: fingerprints every proxy's on-disk cache against the
//! canonical artifacts and repairs divergence with targeted resyncs.
//!
//! The push tree keeps the fleet converged *when everything works*; the
//! audit is the backstop for the cases the protocol cannot see. §2 of the
//! paper opens with exactly this failure class: an automation tool "may
//! have a bug that leads to corrupted config distribution", and a leaf
//! cache that rots on disk is invisible to a subscription protocol keyed
//! on version numbers — a corrupted entry still advertises the *current*
//! zxid, so anti-entropy never asks for it again. The audit compares
//! actual bytes, not versions.
//!
//! Drift is classified three ways (each needs a different story to occur,
//! and a different signal to detect):
//!
//! * [`DriftKind::Missing`] — the proxy subscribes to a path but holds no
//!   entry (lost or truncated cache file). Version-level anti-entropy
//!   *would* eventually repair this; the audit just repairs it now.
//! * [`DriftKind::Stale`] — the entry's zxid is behind canonical (a cache
//!   rolled back by a bad restore, or a notify lost right before a long
//!   partition). Detectable from versions alone.
//! * [`DriftKind::Corrupt`] — the entry's zxid matches canonical but the
//!   bytes differ. Only a byte-level fingerprint catches this, and only a
//!   from-scratch resync ([`ProxyCmd::Resync`]) repairs it.

use std::collections::BTreeMap;

use bytes::Bytes;
use simnet::{NodeId, Sim};

use crate::ensemble::EnsembleActor;
use crate::metrics::audit as names;
use crate::proxy::{ProxyActor, ProxyCmd};
use crate::types::Zxid;

/// The canonical fingerprint set: `path → (zxid, bytes)` as they should be
/// everywhere. Built from the leader's replicated store (which in the full
/// stack holds exactly the gitstore-committed artifacts), or assembled by
/// hand from gitstore heads.
#[derive(Debug, Clone, Default)]
pub struct CanonicalSet {
    entries: BTreeMap<String, (Zxid, Bytes)>,
}

impl CanonicalSet {
    /// An empty set.
    pub fn new() -> CanonicalSet {
        CanonicalSet::default()
    }

    /// Records the canonical state for `path`.
    pub fn insert(&mut self, path: &str, zxid: Zxid, data: Bytes) {
        self.entries.insert(path.to_string(), (zxid, data));
    }

    /// Snapshots every path under `prefix` from the current leader's
    /// store. Returns `None` if no up ensemble member claims leadership.
    pub fn from_leader(sim: &Sim, ensemble: &[NodeId], prefix: &str) -> Option<CanonicalSet> {
        let leader = ensemble
            .iter()
            .copied()
            .filter(|&n| sim.is_up(n))
            .find(|&n| {
                sim.actor::<EnsembleActor>(n)
                    .is_some_and(EnsembleActor::is_leader)
            })?;
        let actor = sim.actor::<EnsembleActor>(leader)?;
        let mut set = CanonicalSet::new();
        for w in actor.store().entries() {
            if w.path.starts_with(prefix) {
                set.insert(&w.path, w.zxid, w.data.clone());
            }
        }
        Some(set)
    }

    /// The canonical `(zxid, bytes)` for `path`.
    pub fn get(&self, path: &str) -> Option<&(Zxid, Bytes)> {
        self.entries.get(path)
    }

    /// Number of fingerprinted paths.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// How a cache entry diverges from canonical.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum DriftKind {
    /// Subscribed path with no cached entry.
    Missing,
    /// Cached zxid behind the canonical zxid.
    Stale,
    /// Cached zxid at (or past) canonical but bytes differ.
    Corrupt,
}

impl std::fmt::Display for DriftKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            DriftKind::Missing => "missing",
            DriftKind::Stale => "stale",
            DriftKind::Corrupt => "corrupt",
        })
    }
}

/// One divergent `(node, path)` pair found by a sweep.
#[derive(Debug, Clone)]
pub struct DriftFinding {
    /// The proxy holding the divergent entry.
    pub node: NodeId,
    /// The divergent path.
    pub path: String,
    /// Classification.
    pub kind: DriftKind,
    /// The zxid the proxy holds (zero when missing).
    pub cached: Zxid,
    /// The canonical zxid.
    pub canonical: Zxid,
}

impl DriftFinding {
    /// One-line description for reports.
    pub fn describe(&self) -> String {
        format!(
            "{} at {} {} (cached {}, canonical {})",
            self.kind, self.node, self.path, self.cached, self.canonical
        )
    }
}

/// Sweeps `proxies`, fingerprinting every subscribed path that appears in
/// `canon`, and returns the divergences in deterministic (node, path)
/// order. Crashed proxies are still audited — the on-disk cache outlives
/// the process, which is exactly when silent rot goes unnoticed longest.
pub fn audit_proxies(sim: &Sim, proxies: &[NodeId], canon: &CanonicalSet) -> Vec<DriftFinding> {
    let mut findings = Vec::new();
    for &node in proxies {
        let Some(actor) = sim.actor::<ProxyActor>(node) else {
            continue;
        };
        let cache = actor.disk_cache();
        for path in actor.subscriptions() {
            let Some((canon_zxid, canon_bytes)) = canon.get(path) else {
                continue;
            };
            let kind = match cache.get(path) {
                None => Some((DriftKind::Missing, Zxid::ZERO)),
                Some(w) if w.zxid < *canon_zxid => Some((DriftKind::Stale, w.zxid)),
                Some(w) if w.data != *canon_bytes => Some((DriftKind::Corrupt, w.zxid)),
                Some(_) => None,
            };
            if let Some((kind, cached)) = kind {
                findings.push(DriftFinding {
                    node,
                    path: path.to_string(),
                    kind,
                    cached,
                    canonical: *canon_zxid,
                });
            }
        }
    }
    findings
}

/// Repairs each finding with a targeted [`ProxyCmd::Resync`] posted to the
/// divergent proxy, and records the per-class drift counters. Returns the
/// number of resyncs issued.
pub fn repair(sim: &mut Sim, findings: &[DriftFinding]) -> usize {
    let now = sim.now();
    for f in findings {
        let counter = match f.kind {
            DriftKind::Missing => names::DRIFT_MISSING,
            DriftKind::Stale => names::DRIFT_STALE,
            DriftKind::Corrupt => names::DRIFT_CORRUPT,
        };
        sim.metrics_mut().incr(counter, 1);
        sim.metrics_mut().incr(names::REPAIRS, 1);
        sim.post(
            now,
            f.node,
            f.node,
            Box::new(ProxyCmd::Resync {
                path: f.path.clone(),
            }),
        );
    }
    findings.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deploy::{DeployConfig, ZeusDeployment};
    use crate::types::Write;
    use simnet::prelude::*;

    fn converged_fleet() -> (Sim, ZeusDeployment) {
        let topo = Topology::symmetric(2, 2, 8);
        let mut sim = Sim::new(topo, NetConfig::datacenter(), 41);
        let cfg = DeployConfig {
            ensemble_size: 3,
            observers_per_cluster: 2,
            subscriptions: (0..3).map(|i| format!("audit/{i}")).collect(),
            ..DeployConfig::default()
        };
        let zeus = ZeusDeployment::install(&mut sim, &cfg);
        sim.run_for(SimDuration::from_secs(1));
        for i in 0..3 {
            let now = sim.now();
            zeus.write_current(&mut sim, now, &format!("audit/{i}"), format!("v1-{i}"));
        }
        sim.run_for(SimDuration::from_secs(3));
        for i in 0..3 {
            assert_eq!(
                zeus.coverage(&sim, &format!("audit/{i}"), format!("v1-{i}").as_bytes()),
                1.0,
                "fleet must converge before seeding drift"
            );
        }
        (sim, zeus)
    }

    #[test]
    fn clean_fleet_audits_clean() {
        let (sim, zeus) = converged_fleet();
        let canon = CanonicalSet::from_leader(&sim, &zeus.ensemble, "audit/").unwrap();
        assert_eq!(canon.len(), 3);
        assert!(audit_proxies(&sim, &zeus.proxies, &canon).is_empty());
    }

    #[test]
    fn classifies_missing_stale_and_corrupt() {
        let (mut sim, zeus) = converged_fleet();
        let canon = CanonicalSet::from_leader(&sim, &zeus.ensemble, "audit/").unwrap();
        let (p0, p1, p2) = (zeus.proxies[0], zeus.proxies[1], zeus.proxies[2]);

        let cache = sim.actor_mut::<ProxyActor>(p0).unwrap().disk_cache_mut();
        assert!(cache.seed_missing("audit/0"));
        let cache = sim.actor_mut::<ProxyActor>(p1).unwrap().disk_cache_mut();
        cache.seed_stale(Write {
            zxid: Zxid {
                epoch: 1,
                counter: 0,
            },
            path: "audit/1".into(),
            data: Bytes::from_static(b"old"),
            origin: SimTime::ZERO,
            trace: None,
        });
        let cache = sim.actor_mut::<ProxyActor>(p2).unwrap().disk_cache_mut();
        assert!(cache.seed_corruption("audit/2", Bytes::from_static(b"rot")));

        let findings = audit_proxies(&sim, &zeus.proxies, &canon);
        assert_eq!(findings.len(), 3);
        let kind_of = |node: NodeId| {
            findings
                .iter()
                .find(|f| f.node == node)
                .map(|f| f.kind)
                .unwrap()
        };
        assert_eq!(kind_of(p0), DriftKind::Missing);
        assert_eq!(kind_of(p1), DriftKind::Stale);
        assert_eq!(kind_of(p2), DriftKind::Corrupt);
    }

    #[test]
    fn corruption_survives_anti_entropy_but_not_repair() {
        let (mut sim, zeus) = converged_fleet();
        let canon = CanonicalSet::from_leader(&sim, &zeus.ensemble, "audit/").unwrap();
        let p = zeus.proxies[0];
        let cache = sim.actor_mut::<ProxyActor>(p).unwrap().disk_cache_mut();
        assert!(cache.seed_corruption("audit/1", Bytes::from_static(b"rot")));

        // Anti-entropy alone never heals a same-zxid corruption: the
        // re-subscribe advertises the current version and gets no reply.
        sim.run_for(SimDuration::from_secs(5));
        let findings = audit_proxies(&sim, &zeus.proxies, &canon);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].kind, DriftKind::Corrupt);

        // A targeted resync re-fetches canonical bytes.
        assert_eq!(repair(&mut sim, &findings), 1);
        sim.run_for(SimDuration::from_secs(2));
        assert!(audit_proxies(&sim, &zeus.proxies, &canon).is_empty());
        assert_eq!(sim.metrics().counter(names::DRIFT_CORRUPT), 1);
        assert_eq!(sim.metrics().counter(names::REPAIRS), 1);
        assert_eq!(
            sim.metrics().counter(crate::metrics::PROXY_RESYNCS),
            1,
            "repair goes through the proxy resync verb"
        );
    }
}
