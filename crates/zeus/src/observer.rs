//! Observers: the middle tier of the distribution tree.
//!
//! "Each cluster ... has multiple servers designated as Zeus observers.
//! Each observer keeps a fully replicated read-only copy of the leader's
//! data. Upon receiving a write, the leader commits the write on the
//! followers, and then asynchronously pushes the write to each observer. If
//! an observer fails and then reconnects to the leader, it sends the latest
//! transaction ID it is aware of, and requests the missing writes" (§3.4).

use simnet::{Actor, Ctx, Message, NodeId, SimDuration};

use crate::metrics::{hops, OBSERVER_APPLIED, OBSERVER_GAP_RESYNCS};
use crate::store::{ConfigStore, WatchTable};
use crate::types::{ZeusMsg, Zxid};

const TIMER_ANTI_ENTROPY: u64 = 1;

/// An observer node: full replica plus per-path watches for the proxies in
/// its cluster.
pub struct ObserverActor {
    leader: NodeId,
    store: ConfigStore,
    watches: WatchTable,
    /// Periodic resync interval. Push delivery is the fast path; the
    /// periodic `ObserverSync` is anti-entropy that repairs any updates
    /// lost to partitions or drops (a caught-up observer costs the leader
    /// one empty reply).
    sync_every: SimDuration,
    /// Contiguity cursor: the highest zxid up to which this observer
    /// provably holds every committed write. Advances one step at a time
    /// through in-order pushes, and jumps only on a leader-asserted
    /// `SyncReply`. Sync requests are keyed off this — NOT off
    /// `store.last_applied()`, which moves past holes and would hide a
    /// dropped update from every later catch-up request.
    contig: Zxid,
}

impl ObserverActor {
    /// Creates an observer that syncs from `leader`.
    pub fn new(leader: NodeId, log_cap: usize) -> ObserverActor {
        ObserverActor {
            leader,
            store: ConfigStore::new(log_cap),
            watches: WatchTable::new(),
            sync_every: SimDuration::from_secs(2),
            contig: Zxid::ZERO,
        }
    }

    /// Read access to the replica (for tests and experiments).
    pub fn store(&self) -> &ConfigStore {
        &self.store
    }

    /// Number of active watch registrations.
    pub fn watch_count(&self) -> usize {
        self.watches.len()
    }

    fn sync(&self, ctx: &mut Ctx<'_>) {
        ctx.send_value(
            self.leader,
            64,
            ZeusMsg::ObserverSync {
                last_zxid: self.contig,
            },
        );
    }

    /// Whether `z` is the immediate successor of the contiguity cursor.
    fn is_next(&self, z: Zxid) -> bool {
        if self.contig == Zxid::ZERO {
            z == Zxid {
                epoch: 1,
                counter: 1,
            }
        } else {
            z == self.contig.next()
        }
    }

    fn notify_watchers(&mut self, ctx: &mut Ctx<'_>, path: &str) {
        if let Some(current) = self.store.get(path).cloned() {
            let size = current.wire_size();
            let watchers: Vec<NodeId> = self.watches.watchers(path).collect();
            for w in watchers {
                ctx.send_traced(
                    w,
                    size,
                    Box::new(ZeusMsg::Notify {
                        write: current.clone(),
                    }),
                    current.trace,
                );
            }
        }
    }
}

impl Actor for ObserverActor {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        self.sync(ctx);
        ctx.set_timer(self.sync_every, TIMER_ANTI_ENTROPY);
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, tag: u64) {
        if tag == TIMER_ANTI_ENTROPY {
            self.sync(ctx);
            ctx.set_timer(self.sync_every, TIMER_ANTI_ENTROPY);
        }
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_>, from: NodeId, msg: Message) {
        let Ok(msg) = msg.downcast::<ZeusMsg>() else {
            return;
        };
        match *msg {
            ZeusMsg::ObserverUpdate { mut write } => {
                let z = write.zxid;
                if self.is_next(z) {
                    self.contig = z;
                } else if z > self.contig {
                    // A gap: a counter jump within the epoch, or an epoch
                    // boundary we cannot locally account for (how much of
                    // the previous epoch's tail did we miss?). Either way,
                    // request the missing range from the cursor; the write
                    // itself is still applied below so reads stay fresh.
                    ctx.metrics().incr(OBSERVER_GAP_RESYNCS, 1);
                    self.sync(ctx);
                }
                // Re-root the context at this observer so proxy hops hang
                // off the observer that served them; the per-node dedup key
                // makes retransmitted pushes record nothing.
                if let Some(t) = write.trace {
                    if let Some(c) = ctx.trace_hop(
                        t,
                        hops::OBSERVER_APPLY,
                        vec![("zxid", z.to_string()), ("via", "push".into())],
                    ) {
                        write.trace = Some(c);
                    }
                }
                let path = write.path.clone();
                if self.store.apply(write) {
                    self.notify_watchers(ctx, &path);
                    ctx.metrics().incr(OBSERVER_APPLIED, 1);
                }
            }
            ZeusMsg::SyncReply { writes, upto } => {
                // Atomic catch-up from the leader: absorb may repair holes
                // behind `last_applied`, so notify watchers of every path
                // whose materialized value actually changed.
                let mut changed: Vec<String> = Vec::new();
                for mut w in writes {
                    if let Some(t) = w.trace {
                        if let Some(c) = ctx.trace_hop(
                            t,
                            hops::OBSERVER_APPLY,
                            vec![("zxid", w.zxid.to_string()), ("via", "sync".into())],
                        ) {
                            w.trace = Some(c);
                        }
                    }
                    let path = w.path.clone();
                    if self.store.absorb(w) {
                        changed.push(path);
                    }
                }
                self.store.fast_forward(upto);
                self.contig = self.contig.max(upto);
                for path in changed {
                    self.notify_watchers(ctx, &path);
                }
            }
            ZeusMsg::Subscribe { path, have } => {
                self.watches.watch(from, &path);
                if let Some(w) = self.store.get(&path).cloned() {
                    if w.zxid > have {
                        let trace = w.trace;
                        ctx.send_traced(
                            from,
                            w.wire_size(),
                            Box::new(ZeusMsg::Notify { write: w }),
                            trace,
                        );
                    }
                }
            }
            ZeusMsg::NewLeader { leader, .. } => {
                self.leader = leader;
                self.sync(ctx);
            }
            ZeusMsg::ProxyPing => {
                ctx.send_value(from, 16, ZeusMsg::ProxyPong);
            }
            _ => {}
        }
    }

    fn on_recover(&mut self, ctx: &mut Ctx<'_>) {
        // "If an observer fails and then reconnects to the leader, it sends
        // the latest transaction ID it is aware of" (§3.4).
        self.sync(ctx);
        ctx.set_timer(self.sync_every, TIMER_ANTI_ENTROPY);
    }
}
