//! Observers: the middle tier of the distribution tree.
//!
//! "Each cluster ... has multiple servers designated as Zeus observers.
//! Each observer keeps a fully replicated read-only copy of the leader's
//! data. Upon receiving a write, the leader commits the write on the
//! followers, and then asynchronously pushes the write to each observer. If
//! an observer fails and then reconnects to the leader, it sends the latest
//! transaction ID it is aware of, and requests the missing writes" (§3.4).

use std::collections::{BTreeMap, VecDeque};

use simnet::intern::FxHashMap;
use simnet::ods;
use simnet::{Actor, Ctx, Message, NodeId, SimDuration, SimTime};

use crate::metrics::{
    hops, LEASE_EXPIRIES, LEASE_RENEWALS, LEASE_REPAIRS, OBSERVER_APPLIED, OBSERVER_GAP_RESYNCS,
};
use crate::store::{ConfigStore, WatchTable};
use crate::types::{
    batch_traces, batch_wire_size, control_wire, NotifyFrame, Write, ZeusMsg, Zxid,
    MAX_BATCH_WRITES,
};

const TIMER_ANTI_ENTROPY: u64 = 1;
/// Retry timer for an unanswered gap sync: a sync request (or its reply)
/// lost after the final push frame of a commit round would otherwise go
/// unnoticed until the next anti-entropy tick — there is no later frame
/// left to re-trigger the ask.
const TIMER_SYNC_RETRY: u64 = 2;

/// One watcher's lease: the observer-side half of the counter pair that
/// replaces per-path re-subscribes as the loss detector. The observer
/// counts every notify frame it sends the watcher; the watcher counts every
/// frame it receives; a ping or renewal carries the watcher's count back
/// and any settled shortfall means loss — repaired by re-pushing the full
/// current state of the watcher's paths.
struct Lease {
    /// The granted epoch (the observer's generation at grant time). A
    /// restart bumps the generation, fencing this lease off.
    epoch: u64,
    /// Notify frames sent to this watcher under the lease.
    frames_sent: u64,
    /// Send log of `(sent_at, cumulative frames_sent)` for frames that may
    /// still be in flight. Entries older than the settle window are pruned
    /// into `settled` — the floor the watcher's counter is compared
    /// against, so frames racing the ping never read as losses.
    sent_log: VecDeque<(SimTime, u64)>,
    /// Highest cumulative count whose frame has had time to arrive.
    settled: u64,
    /// Last establish/renewal/valid-ping time; the anti-entropy sweep
    /// expires leases idle past the TTL and drops their watches.
    last_renew: SimTime,
}

/// An observer node: full replica plus per-path watches for the proxies in
/// its cluster.
pub struct ObserverActor {
    leader: NodeId,
    store: ConfigStore,
    watches: WatchTable,
    /// Periodic resync interval. Push delivery is the fast path; the
    /// periodic `ObserverSync` is anti-entropy that repairs any updates
    /// lost to partitions or drops (a caught-up observer costs the leader
    /// one empty reply).
    sync_every: SimDuration,
    /// Contiguity cursor: the highest zxid up to which this observer
    /// provably holds every committed write. Advances one step at a time
    /// through in-order pushes, and jumps only on a leader-asserted
    /// `SyncReply`. Sync requests are keyed off this — NOT off
    /// `store.last_applied()`, which moves past holes and would hide a
    /// dropped update from every later catch-up request.
    contig: Zxid,
    /// Pre-batching baseline (`repro losssweep`): notify proxies one
    /// `Notify` frame per changed path instead of one coalesced
    /// `NotifyBatch` frame per proxy.
    legacy_notify: bool,
    /// When the last sync request went out, if unanswered. Gap detections
    /// while a sync is already in flight do not issue another request:
    /// every chunk of a push round carries the same commit head, so an
    /// ungated observer would ask for the same missing range once per
    /// arriving frame and the leader would ship the (payload-heavy) reply
    /// just as many times.
    sync_inflight: Option<SimTime>,
    /// How long an unanswered sync blocks re-requests (covers the
    /// cross-region round trip; a lost reply is retried after this).
    sync_retry: SimDuration,
    /// Highest commit head any push frame has asserted. The retry timer
    /// keeps asking until the contiguity cursor reaches it.
    target_head: Zxid,
    /// Whether a `TIMER_SYNC_RETRY` is outstanding (timers cannot be
    /// cancelled, so arming is deduplicated instead).
    retry_armed: bool,
    /// Lease generation: granted as the epoch of new leases, bumped on
    /// recovery so every pre-restart lease is fenced off (stale renewals
    /// are nacked and the watcher re-establishes with a full re-subscribe).
    /// Starts at 1 — epoch 0 is the wire sentinel for "no lease".
    lease_gen: u64,
    /// Active leases by watcher node.
    /// Hash map, not BTree: `note_sent` probes this once per receiver per
    /// fan-out frame and the ping handler once per healthcheck fleet-wide.
    /// The only iteration (the expiry sweep) sorts its hits before acting,
    /// so replay determinism is untouched.
    leases: FxHashMap<NodeId, Lease>,
    /// Idle time after which the anti-entropy sweep expires a lease. Only
    /// leased watchers expire: laser servers and legacy proxies never
    /// establish one, so they keep today's semantics.
    lease_ttl: SimDuration,
    /// How long a sent frame may be in flight before its absence from the
    /// watcher's counter means loss (just above the worst one-way
    /// datacenter delay).
    lease_settle: SimDuration,
}

impl ObserverActor {
    /// Creates an observer that syncs from `leader`.
    pub fn new(leader: NodeId, log_cap: usize) -> ObserverActor {
        ObserverActor {
            leader,
            store: ConfigStore::new(log_cap),
            watches: WatchTable::new(),
            sync_every: SimDuration::from_secs(2),
            contig: Zxid::ZERO,
            legacy_notify: false,
            sync_inflight: None,
            // Just over the worst cross-region round trip (~80 ms), so a
            // lost ask or reply is re-asked on the next heartbeat after
            // the window closes rather than after an anti-entropy tick.
            sync_retry: SimDuration::from_millis(100),
            target_head: Zxid::ZERO,
            retry_armed: false,
            lease_gen: 1,
            leases: FxHashMap::default(),
            lease_ttl: SimDuration::from_secs(6),
            lease_settle: SimDuration::from_millis(50),
        }
    }

    /// Switches the proxy fan-out to the per-path baseline (see
    /// [`crate::ensemble::EnsembleConfig::legacy_rebroadcast`]).
    pub fn with_legacy_notify(mut self, legacy: bool) -> ObserverActor {
        self.legacy_notify = legacy;
        self
    }

    /// Read access to the replica (for tests and experiments).
    pub fn store(&self) -> &ConfigStore {
        &self.store
    }

    /// Number of active watch registrations.
    pub fn watch_count(&self) -> usize {
        self.watches.len()
    }

    /// Number of active watch leases (for tests).
    pub fn lease_count(&self) -> usize {
        self.leases.len()
    }

    /// The contiguity cursor (see the field docs). Exposed for tests that
    /// audit the cursor against the writes actually held.
    pub fn contiguous(&self) -> Zxid {
        self.contig
    }

    fn sync(&mut self, ctx: &mut Ctx<'_>) {
        self.sync_inflight = Some(ctx.now());
        ctx.send_value(
            self.leader,
            64,
            ZeusMsg::ObserverSync {
                last_zxid: self.contig,
            },
        );
    }

    /// Gap-triggered sync, gated on the in-flight request: at most one
    /// outstanding ask per `sync_retry` window, however many frames report
    /// the same hole, with a retry timer covering a lost ask (or reply).
    /// `OBSERVER_GAP_RESYNCS` counts requests actually sent. The legacy
    /// baseline re-asks on every gap frame, as the pre-batching per-write
    /// push path did — the leader then ships the payload-heavy reply once
    /// per duplicate ask.
    fn gap_sync(&mut self, ctx: &mut Ctx<'_>) {
        if self.legacy_notify {
            ctx.metrics().incr(OBSERVER_GAP_RESYNCS, 1);
            self.sync(ctx);
            return;
        }
        self.gated_sync(ctx);
        if !self.retry_armed {
            self.retry_armed = true;
            ctx.set_timer(self.sync_retry, TIMER_SYNC_RETRY);
        }
    }

    /// Sends a gap resync unless one is already in flight and fresh.
    fn gated_sync(&mut self, ctx: &mut Ctx<'_>) {
        let fresh = self
            .sync_inflight
            .is_some_and(|at| ctx.now() - at < self.sync_retry);
        if !fresh {
            ctx.metrics().incr(OBSERVER_GAP_RESYNCS, 1);
            self.sync(ctx);
        }
    }

    /// Whether `z` is the immediate successor of the contiguity cursor.
    fn is_next(&self, z: Zxid) -> bool {
        if self.contig == Zxid::ZERO {
            z == Zxid {
                epoch: 1,
                counter: 1,
            }
        } else {
            z == self.contig.next()
        }
    }

    /// Records one notify frame sent to `to` under its lease, if any.
    /// Lease-less watchers (laser servers, legacy proxies) are a no-op:
    /// nobody will compare a counter for them.
    fn note_sent(&mut self, to: NodeId, now: SimTime) {
        if let Some(l) = self.leases.get_mut(&to) {
            l.frames_sent += 1;
            l.sent_log.push_back((now, l.frames_sent));
        }
    }

    /// Prunes the send log up to the settle horizon and returns the floor
    /// the watcher's counter must have reached: frames sent recently enough
    /// to still be in flight are excluded, so the comparison never reads a
    /// racing frame as a loss.
    fn settle(lease: &mut Lease, now: SimTime, window: SimDuration) -> u64 {
        while let Some(&(at, n)) = lease.sent_log.front() {
            if now - at >= window {
                lease.settled = n;
                lease.sent_log.pop_front();
            } else {
                break;
            }
        }
        lease.settled
    }

    /// Grants a fresh lease epoch (unique per observer lifetime).
    fn grant_epoch(&mut self) -> u64 {
        self.lease_gen += 1;
        self.lease_gen
    }

    /// Loss repair: the counters disagreed, so re-push the full current
    /// state of every path `node` watches under a FRESH lease epoch, then
    /// ack the new lease. Repairing directly (instead of nacking and
    /// forcing a re-subscribe round trip) keeps the per-round repair
    /// probability at the legacy per-check re-subscribe level — one lossy
    /// observer→proxy leg, not three. The fresh epoch is what makes a
    /// dropped repair chunk recoverable: the watcher's receipt count of
    /// the chunks becomes its new counter, so any shortfall shows up at
    /// the very next ping and triggers another repair round.
    fn repair(&mut self, ctx: &mut Ctx<'_>, node: NodeId) {
        ctx.metrics().incr(LEASE_REPAIRS, 1);
        let epoch = self.grant_epoch();
        let mut writes: Vec<Write> = self
            .watches
            .paths_of(node)
            .filter_map(|p| self.store.get(p).cloned())
            .collect();
        writes.sort_by_key(|w| w.zxid);
        let now = ctx.now();
        let mut lease = Lease {
            epoch,
            frames_sent: 0,
            sent_log: VecDeque::new(),
            settled: 0,
            last_renew: now,
        };
        for chunk in writes.chunks(MAX_BATCH_WRITES) {
            lease.frames_sent += 1;
            lease.sent_log.push_back((now, lease.frames_sent));
            ctx.send_traced_batch(
                node,
                batch_wire_size(chunk) + 8,
                Box::new(ZeusMsg::RepairBatch {
                    epoch,
                    writes: chunk.to_vec(),
                }),
                batch_traces(chunk),
            );
        }
        let frames_sent = lease.frames_sent;
        self.leases.insert(node, lease);
        let paths = self.watches.paths_of(node).count() as u64;
        ctx.send_value(
            node,
            control_wire::ACK,
            ZeusMsg::LeaseAck {
                epoch,
                frames_sent,
                repaired: true,
                paths,
            },
        );
    }

    /// Shared-frame watch fan-out for one applied batch. Watchers are
    /// grouped by the exact subset of changed paths they watch; each
    /// group's payload is built ONCE and multicast as an `Arc`-shared
    /// [`NotifyFrame`] — per-receiver link bandwidth is charged by the
    /// simulator without cloning the payload per receiver. In the common
    /// fleet case every proxy in the cluster watches the same paths, so a
    /// hundred-proxy fan-out allocates one frame instead of a hundred
    /// cloned `Vec<Write>`s. The legacy baseline keeps per-path `Notify`
    /// frames.
    fn notify_watchers(&mut self, ctx: &mut Ctx<'_>, changed: &[String]) {
        if changed.is_empty() {
            return;
        }
        // A batch with several writes to one path changes it once: the
        // notify carries the current (latest) state, in zxid order.
        let mut seen: Vec<&str> = Vec::new();
        let mut current: Vec<Write> = Vec::new();
        for path in changed {
            if seen.contains(&path.as_str()) {
                continue;
            }
            seen.push(path);
            if let Some(w) = self.store.get(path) {
                current.push(w.clone());
            }
        }
        current.sort_by_key(|w| w.zxid);
        // Fast path: one changed path (the overwhelmingly common shape —
        // commits usually push one write per frame) means every watcher of
        // that path receives the identical one-write frame. The generic
        // grouping below would allocate a per-watcher index Vec and build
        // two maps just to rediscover that single group; at paper scale
        // that is millions of allocations per replay.
        if !self.legacy_notify {
            if let [w] = &current[..] {
                let nodes: Vec<NodeId> = self.watches.watchers(&w.path).collect();
                if nodes.is_empty() {
                    return;
                }
                let writes = vec![w.clone()];
                let size = batch_wire_size(&writes);
                let traces = batch_traces(&writes);
                let now = ctx.now();
                for &n in &nodes {
                    self.note_sent(n, now);
                }
                if let [only] = nodes[..] {
                    ctx.send_traced_batch(
                        only,
                        size,
                        Box::new(ZeusMsg::NotifyBatch { writes }),
                        traces,
                    );
                } else {
                    ctx.multicast_traced(&nodes, size, NotifyFrame { writes }, &traces);
                }
                return;
            }
        }
        // Per-watcher ascending index lists into `current` (= zxid order).
        let mut per_watcher: BTreeMap<NodeId, Vec<u16>> = BTreeMap::new();
        for (i, w) in current.iter().enumerate() {
            for node in self.watches.watchers(&w.path) {
                per_watcher.entry(node).or_default().push(i as u16);
            }
        }
        if self.legacy_notify {
            for (watcher, idxs) in per_watcher {
                for i in idxs {
                    let w = current[i as usize].clone();
                    let trace = w.trace;
                    ctx.send_traced(
                        watcher,
                        w.wire_size(),
                        Box::new(ZeusMsg::Notify { write: w }),
                        trace,
                    );
                }
            }
            return;
        }
        // Invert: watchers sharing an identical subset form one multicast
        // group. BTree ordering keeps iteration — and therefore simulated
        // message order — deterministic across processes.
        let mut groups: BTreeMap<Vec<u16>, Vec<NodeId>> = BTreeMap::new();
        for (watcher, idxs) in per_watcher {
            groups.entry(idxs).or_default().push(watcher);
        }
        let now = ctx.now();
        for (idxs, nodes) in groups {
            for chunk in idxs.chunks(MAX_BATCH_WRITES) {
                let writes: Vec<Write> =
                    chunk.iter().map(|&i| current[i as usize].clone()).collect();
                let size = batch_wire_size(&writes);
                let traces = batch_traces(&writes);
                for &n in &nodes {
                    self.note_sent(n, now);
                }
                if let [only] = nodes[..] {
                    // Single-receiver group: a plain owned frame, no Arc.
                    ctx.send_traced_batch(
                        only,
                        size,
                        Box::new(ZeusMsg::NotifyBatch { writes }),
                        traces,
                    );
                } else {
                    ctx.multicast_traced(&nodes, size, NotifyFrame { writes }, &traces);
                }
            }
        }
    }
}

impl Actor for ObserverActor {
    fn kind(&self) -> &'static str {
        "zeus.observer"
    }

    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        self.sync(ctx);
        ctx.set_timer(self.sync_every, TIMER_ANTI_ENTROPY);
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, tag: u64) {
        if tag == TIMER_ANTI_ENTROPY {
            self.sync(ctx);
            // Lease sweep: a watcher that stopped renewing (partitioned,
            // crashed, failed over elsewhere) loses its lease AND its
            // watches — fan-out stops paying for dead subscribers. Only
            // leased watchers expire; laser servers and legacy proxies
            // never lease and keep their watches as before.
            let now = ctx.now();
            let mut expired: Vec<NodeId> = self
                .leases
                .iter()
                .filter(|(_, l)| now - l.last_renew > self.lease_ttl)
                .map(|(&n, _)| n)
                .collect();
            // Hash-order iteration: sort so the sweep acts in a stable
            // order (none of its effects send messages, but replay
            // determinism should not hinge on that staying true).
            expired.sort_unstable();
            for n in expired {
                self.leases.remove(&n);
                self.watches.drop_node(n);
                ctx.metrics().incr(LEASE_EXPIRIES, 1);
            }
            ctx.set_timer(self.sync_every, TIMER_ANTI_ENTROPY);
        } else if tag == TIMER_SYNC_RETRY {
            self.retry_armed = false;
            if self.contig < self.target_head {
                self.gap_sync(ctx);
            }
        }
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_>, from: NodeId, msg: Message) {
        let Ok(msg) = msg.downcast::<ZeusMsg>() else {
            return;
        };
        match *msg {
            ZeusMsg::ObserverUpdateBatch { writes, upto } => {
                // All-or-nothing push frame: the writes arrive together, in
                // zxid order. Walk the contiguity cursor through the whole
                // frame, then compare it against the commit head the frame
                // asserts: any shortfall — a hole inside this frame, a
                // dropped sibling chunk, or an epoch boundary we cannot
                // locally account for — is ONE gap, answered by ONE resync.
                for w in &writes {
                    let z = w.zxid;
                    if self.is_next(z) {
                        self.contig = z;
                    }
                }
                self.target_head = self.target_head.max(upto);
                if self.contig < upto {
                    // The writes are still applied below so reads stay
                    // fresh; the resync repairs the missing range.
                    self.gap_sync(ctx);
                }
                let mut changed: Vec<String> = Vec::new();
                for mut write in writes {
                    // Re-root the context at this observer so proxy hops
                    // hang off the observer that served them; the per-node
                    // dedup key makes retransmitted pushes record nothing.
                    if let Some(t) = write.trace {
                        if let Some(c) = ctx.trace_hop(
                            t,
                            hops::OBSERVER_APPLY,
                            vec![("zxid", write.zxid.to_string()), ("via", "push".into())],
                        ) {
                            write.trace = Some(c);
                        }
                    }
                    let path = write.path.clone();
                    if self.store.apply(write) {
                        changed.push(path);
                        ctx.metrics().incr(OBSERVER_APPLIED, 1);
                        ctx.ods_counter(ods::tiers::OBSERVER, ods::series::APPLIED, 1.0);
                    }
                }
                self.notify_watchers(ctx, &changed);
            }
            ZeusMsg::SyncReply { writes, upto } => {
                // Atomic catch-up from the leader: absorb may repair holes
                // behind `last_applied`, so notify watchers of every path
                // whose materialized value actually changed.
                self.sync_inflight = None;
                let mut changed: Vec<String> = Vec::new();
                for mut w in writes {
                    if let Some(t) = w.trace {
                        if let Some(c) = ctx.trace_hop(
                            t,
                            hops::OBSERVER_APPLY,
                            vec![("zxid", w.zxid.to_string()), ("via", "sync".into())],
                        ) {
                            w.trace = Some(c);
                        }
                    }
                    let path = w.path.clone();
                    if self.store.absorb(w) {
                        changed.push(path);
                    }
                }
                self.store.fast_forward(upto);
                self.contig = self.contig.max(upto);
                self.notify_watchers(ctx, &changed);
                // The reply may assert less than the pushed head (a fresh
                // leader clamps to its own gap-free prefix); keep asking
                // until the cursor reaches everything a push promised.
                if self.contig < self.target_head {
                    self.gap_sync(ctx);
                }
            }
            ZeusMsg::Subscribe { path, have } => {
                self.watches.watch(from, &path);
                // Most re-subscribes are caught up; compare zxids before
                // cloning the stored write. Under leases this runs once at
                // establishment per path, not once per health check.
                let mut sent = false;
                if let Some(w) = self.store.get(&path) {
                    if w.zxid > have {
                        let w = w.clone();
                        let trace = w.trace;
                        ctx.send_traced(
                            from,
                            w.wire_size(),
                            Box::new(ZeusMsg::Notify { write: w }),
                            trace,
                        );
                        sent = true;
                    }
                }
                if sent {
                    // In-order delivery puts establishment Subscribes after
                    // the LeaseRenew that created the lease, so this reply
                    // is counted on both ends.
                    self.note_sent(from, ctx.now());
                }
            }
            ZeusMsg::NewLeader { leader, .. } => {
                self.leader = leader;
                self.sync(ctx);
            }
            ZeusMsg::Heartbeat { committed, .. } => {
                // The leader heartbeats observers with its commit head:
                // push frames are all-or-nothing, so this 64-byte signal is
                // what reveals a fully dropped push round. Gated in BOTH
                // modes — at 20 heartbeats/s an ungated ask would turn one
                // hole into a payload-heavy sync-reply flood.
                self.target_head = self.target_head.max(committed);
                if self.contig < committed {
                    self.gated_sync(ctx);
                }
            }
            ZeusMsg::ProxyPing {
                epoch,
                frames_received,
            } => {
                // Epoch 0 = a lease-less pinger (legacy proxy, or one still
                // establishing): answer liveness only. Legacy observers
                // always answer liveness — their watchers never lease.
                if epoch == 0 || self.legacy_notify {
                    ctx.send_value(
                        from,
                        control_wire::PONG,
                        ZeusMsg::ProxyPong { lease_ok: true },
                    );
                } else {
                    let now = ctx.now();
                    let window = self.lease_settle;
                    // One map probe decides all three outcomes; this runs
                    // once per proxy per healthcheck fleet-wide.
                    let lost = match self.leases.get_mut(&from) {
                        Some(l) if l.epoch == epoch => {
                            // A live pinger keeps its lease: expiry is
                            // reserved for watchers that stopped talking
                            // entirely.
                            l.last_renew = now;
                            Some(Self::settle(l, now, window) > frames_received)
                        }
                        // A known watcher pinging under a superseded epoch:
                        // this observer granted a newer lease whose ack was
                        // lost. Its watch set is intact, so repair in place
                        // — bouncing through re-establishment would stretch
                        // the recovery chain to four lossy legs (ping, pong,
                        // renew+subscribe, notify) where legacy anti-entropy
                        // needs two, wrecking tail propagation under
                        // sustained drop.
                        Some(_) => Some(true),
                        // Unknown lease (expired, or fenced by a restart
                        // that cleared the table): the pinger re-establishes
                        // with a full re-subscribe — its watch set here may
                        // be stale, so only the Subscribe path can rebuild
                        // it.
                        None => None,
                    };
                    match lost {
                        Some(true) => {
                            // The piggybacked counters turn every
                            // healthcheck into a loss detector: repair now,
                            // at the same cadence the per-check
                            // re-subscribe used to.
                            self.repair(ctx, from);
                        }
                        Some(false) => ctx.send_value(
                            from,
                            control_wire::PONG,
                            ZeusMsg::ProxyPong { lease_ok: true },
                        ),
                        None => ctx.send_value(
                            from,
                            control_wire::PONG,
                            ZeusMsg::ProxyPong { lease_ok: false },
                        ),
                    }
                }
            }
            ZeusMsg::LeaseRenew {
                epoch,
                frames_received,
            } => {
                ctx.metrics().incr(LEASE_RENEWALS, 1);
                let now = ctx.now();
                if epoch == 0 {
                    // Establishment. Drop any stale watch set first — the
                    // Subscribes following on this link rebuild it, and
                    // in-order delivery means they register under the new
                    // lease (after this ack, on the reply link).
                    self.watches.drop_node(from);
                    let granted = self.grant_epoch();
                    self.leases.insert(
                        from,
                        Lease {
                            epoch: granted,
                            frames_sent: 0,
                            sent_log: VecDeque::new(),
                            settled: 0,
                            last_renew: now,
                        },
                    );
                    ctx.send_value(
                        from,
                        control_wire::ACK,
                        ZeusMsg::LeaseAck {
                            epoch: granted,
                            frames_sent: 0,
                            repaired: false,
                            paths: 0,
                        },
                    );
                } else {
                    match self.leases.get_mut(&from) {
                        Some(l) if l.epoch == epoch => {
                            l.last_renew = now;
                            let lost = Self::settle(l, now, self.lease_settle) > frames_received;
                            let (epoch, frames_sent) = (l.epoch, l.frames_sent);
                            if lost {
                                // `repair` grants a fresh epoch and acks it.
                                self.repair(ctx, from);
                            } else {
                                let paths = self.watches.paths_of(from).count() as u64;
                                ctx.send_value(
                                    from,
                                    control_wire::ACK,
                                    ZeusMsg::LeaseAck {
                                        epoch,
                                        frames_sent,
                                        repaired: false,
                                        paths,
                                    },
                                );
                            }
                        }
                        // Superseded epoch from a watcher this observer
                        // still knows: the newer lease's ack was lost —
                        // repair in place (fresh epoch + full state) instead
                        // of nacking into a re-subscribe round trip.
                        Some(_) => self.repair(ctx, from),
                        None => {
                            ctx.send_value(
                                from,
                                control_wire::NACK,
                                ZeusMsg::LeaseNack {
                                    epoch: self.lease_gen,
                                },
                            );
                        }
                    }
                }
            }
            _ => {}
        }
    }

    fn on_recover(&mut self, ctx: &mut Ctx<'_>) {
        // "If an observer fails and then reconnects to the leader, it sends
        // the latest transaction ID it is aware of" (§3.4).
        //
        // Epoch fence: every pre-restart lease dies with the restart — its
        // counters are gone, so any counter comparison against it would be
        // fiction. Bumping the generation makes stale pings answer
        // `lease_ok: false` and stale renewals nack, sending each watcher
        // back through full re-subscribe establishment. The watch table
        // itself survives (re-watching is idempotent) so lease-less
        // watchers keep their registrations.
        self.lease_gen += 1;
        self.leases.clear();
        self.sync(ctx);
        ctx.set_timer(self.sync_every, TIMER_ANTI_ENTROPY);
    }
}
