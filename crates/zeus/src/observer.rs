//! Observers: the middle tier of the distribution tree.
//!
//! "Each cluster ... has multiple servers designated as Zeus observers.
//! Each observer keeps a fully replicated read-only copy of the leader's
//! data. Upon receiving a write, the leader commits the write on the
//! followers, and then asynchronously pushes the write to each observer. If
//! an observer fails and then reconnects to the leader, it sends the latest
//! transaction ID it is aware of, and requests the missing writes" (§3.4).

use simnet::{Actor, Ctx, Message, NodeId, SimDuration};

use crate::store::{ConfigStore, WatchTable};
use crate::types::ZeusMsg;

const TIMER_ANTI_ENTROPY: u64 = 1;

/// An observer node: full replica plus per-path watches for the proxies in
/// its cluster.
pub struct ObserverActor {
    leader: NodeId,
    store: ConfigStore,
    watches: WatchTable,
    /// Periodic resync interval. Push delivery is the fast path; the
    /// periodic `ObserverSync` is anti-entropy that repairs any updates
    /// lost to partitions or drops (a caught-up observer costs the leader
    /// one empty reply).
    sync_every: SimDuration,
}

impl ObserverActor {
    /// Creates an observer that syncs from `leader`.
    pub fn new(leader: NodeId, log_cap: usize) -> ObserverActor {
        ObserverActor {
            leader,
            store: ConfigStore::new(log_cap),
            watches: WatchTable::new(),
            sync_every: SimDuration::from_secs(2),
        }
    }

    /// Read access to the replica (for tests and experiments).
    pub fn store(&self) -> &ConfigStore {
        &self.store
    }

    /// Number of active watch registrations.
    pub fn watch_count(&self) -> usize {
        self.watches.len()
    }

    fn sync(&self, ctx: &mut Ctx<'_>) {
        ctx.send_value(
            self.leader,
            64,
            ZeusMsg::ObserverSync {
                last_zxid: self.store.last_applied(),
            },
        );
    }
}

impl Actor for ObserverActor {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        self.sync(ctx);
        ctx.set_timer(self.sync_every, TIMER_ANTI_ENTROPY);
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, tag: u64) {
        if tag == TIMER_ANTI_ENTROPY {
            self.sync(ctx);
            ctx.set_timer(self.sync_every, TIMER_ANTI_ENTROPY);
        }
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_>, from: NodeId, msg: Message) {
        let Ok(msg) = msg.downcast::<ZeusMsg>() else {
            return;
        };
        match *msg {
            ZeusMsg::ObserverUpdate { write } => {
                // Detect a gap within an epoch and request the missing tail
                // before applying (jitter can reorder messages).
                let last = self.store.last_applied();
                if write.zxid.epoch == last.epoch && write.zxid.counter > last.counter + 1 {
                    self.sync(ctx);
                }
                let path = write.path.clone();
                if self.store.apply(write) {
                    let current = self.store.get(&path).expect("just applied").clone();
                    let size = current.wire_size();
                    let watchers: Vec<NodeId> = self.watches.watchers(&path).collect();
                    for w in watchers {
                        ctx.send_value(w, size, ZeusMsg::Notify { write: current.clone() });
                    }
                    ctx.metrics().incr("zeus.observer_applied", 1);
                }
            }
            ZeusMsg::Subscribe { path, have } => {
                self.watches.watch(from, &path);
                if let Some(w) = self.store.get(&path) {
                    if w.zxid > have {
                        ctx.send_value(from, w.wire_size(), ZeusMsg::Notify { write: w.clone() });
                    }
                }
            }
            ZeusMsg::NewLeader { leader, .. } => {
                self.leader = leader;
                self.sync(ctx);
            }
            ZeusMsg::ProxyPing => {
                ctx.send_value(from, 16, ZeusMsg::ProxyPong);
            }
            _ => {}
        }
    }

    fn on_recover(&mut self, ctx: &mut Ctx<'_>) {
        // "If an observer fails and then reconnects to the leader, it sends
        // the latest transaction ID it is aware of" (§3.4).
        self.sync(ctx);
        ctx.set_timer(self.sync_every, TIMER_ANTI_ENTROPY);
    }
}
