//! Observers: the middle tier of the distribution tree.
//!
//! "Each cluster ... has multiple servers designated as Zeus observers.
//! Each observer keeps a fully replicated read-only copy of the leader's
//! data. Upon receiving a write, the leader commits the write on the
//! followers, and then asynchronously pushes the write to each observer. If
//! an observer fails and then reconnects to the leader, it sends the latest
//! transaction ID it is aware of, and requests the missing writes" (§3.4).

use std::collections::BTreeMap;

use simnet::ods;
use simnet::{Actor, Ctx, Message, NodeId, SimDuration, SimTime};

use crate::metrics::{hops, OBSERVER_APPLIED, OBSERVER_GAP_RESYNCS};
use crate::store::{ConfigStore, WatchTable};
use crate::types::{batch_traces, batch_wire_size, Write, ZeusMsg, Zxid, MAX_BATCH_WRITES};

const TIMER_ANTI_ENTROPY: u64 = 1;
/// Retry timer for an unanswered gap sync: a sync request (or its reply)
/// lost after the final push frame of a commit round would otherwise go
/// unnoticed until the next anti-entropy tick — there is no later frame
/// left to re-trigger the ask.
const TIMER_SYNC_RETRY: u64 = 2;

/// An observer node: full replica plus per-path watches for the proxies in
/// its cluster.
pub struct ObserverActor {
    leader: NodeId,
    store: ConfigStore,
    watches: WatchTable,
    /// Periodic resync interval. Push delivery is the fast path; the
    /// periodic `ObserverSync` is anti-entropy that repairs any updates
    /// lost to partitions or drops (a caught-up observer costs the leader
    /// one empty reply).
    sync_every: SimDuration,
    /// Contiguity cursor: the highest zxid up to which this observer
    /// provably holds every committed write. Advances one step at a time
    /// through in-order pushes, and jumps only on a leader-asserted
    /// `SyncReply`. Sync requests are keyed off this — NOT off
    /// `store.last_applied()`, which moves past holes and would hide a
    /// dropped update from every later catch-up request.
    contig: Zxid,
    /// Pre-batching baseline (`repro losssweep`): notify proxies one
    /// `Notify` frame per changed path instead of one coalesced
    /// `NotifyBatch` frame per proxy.
    legacy_notify: bool,
    /// When the last sync request went out, if unanswered. Gap detections
    /// while a sync is already in flight do not issue another request:
    /// every chunk of a push round carries the same commit head, so an
    /// ungated observer would ask for the same missing range once per
    /// arriving frame and the leader would ship the (payload-heavy) reply
    /// just as many times.
    sync_inflight: Option<SimTime>,
    /// How long an unanswered sync blocks re-requests (covers the
    /// cross-region round trip; a lost reply is retried after this).
    sync_retry: SimDuration,
    /// Highest commit head any push frame has asserted. The retry timer
    /// keeps asking until the contiguity cursor reaches it.
    target_head: Zxid,
    /// Whether a `TIMER_SYNC_RETRY` is outstanding (timers cannot be
    /// cancelled, so arming is deduplicated instead).
    retry_armed: bool,
}

impl ObserverActor {
    /// Creates an observer that syncs from `leader`.
    pub fn new(leader: NodeId, log_cap: usize) -> ObserverActor {
        ObserverActor {
            leader,
            store: ConfigStore::new(log_cap),
            watches: WatchTable::new(),
            sync_every: SimDuration::from_secs(2),
            contig: Zxid::ZERO,
            legacy_notify: false,
            sync_inflight: None,
            // Just over the worst cross-region round trip (~80 ms), so a
            // lost ask or reply is re-asked on the next heartbeat after
            // the window closes rather than after an anti-entropy tick.
            sync_retry: SimDuration::from_millis(100),
            target_head: Zxid::ZERO,
            retry_armed: false,
        }
    }

    /// Switches the proxy fan-out to the per-path baseline (see
    /// [`crate::ensemble::EnsembleConfig::legacy_rebroadcast`]).
    pub fn with_legacy_notify(mut self, legacy: bool) -> ObserverActor {
        self.legacy_notify = legacy;
        self
    }

    /// Read access to the replica (for tests and experiments).
    pub fn store(&self) -> &ConfigStore {
        &self.store
    }

    /// Number of active watch registrations.
    pub fn watch_count(&self) -> usize {
        self.watches.len()
    }

    /// The contiguity cursor (see the field docs). Exposed for tests that
    /// audit the cursor against the writes actually held.
    pub fn contiguous(&self) -> Zxid {
        self.contig
    }

    fn sync(&mut self, ctx: &mut Ctx<'_>) {
        self.sync_inflight = Some(ctx.now());
        ctx.send_value(
            self.leader,
            64,
            ZeusMsg::ObserverSync {
                last_zxid: self.contig,
            },
        );
    }

    /// Gap-triggered sync, gated on the in-flight request: at most one
    /// outstanding ask per `sync_retry` window, however many frames report
    /// the same hole, with a retry timer covering a lost ask (or reply).
    /// `OBSERVER_GAP_RESYNCS` counts requests actually sent. The legacy
    /// baseline re-asks on every gap frame, as the pre-batching per-write
    /// push path did — the leader then ships the payload-heavy reply once
    /// per duplicate ask.
    fn gap_sync(&mut self, ctx: &mut Ctx<'_>) {
        if self.legacy_notify {
            ctx.metrics().incr(OBSERVER_GAP_RESYNCS, 1);
            self.sync(ctx);
            return;
        }
        self.gated_sync(ctx);
        if !self.retry_armed {
            self.retry_armed = true;
            ctx.set_timer(self.sync_retry, TIMER_SYNC_RETRY);
        }
    }

    /// Sends a gap resync unless one is already in flight and fresh.
    fn gated_sync(&mut self, ctx: &mut Ctx<'_>) {
        let fresh = self
            .sync_inflight
            .is_some_and(|at| ctx.now() - at < self.sync_retry);
        if !fresh {
            ctx.metrics().incr(OBSERVER_GAP_RESYNCS, 1);
            self.sync(ctx);
        }
    }

    /// Whether `z` is the immediate successor of the contiguity cursor.
    fn is_next(&self, z: Zxid) -> bool {
        if self.contig == Zxid::ZERO {
            z == Zxid {
                epoch: 1,
                counter: 1,
            }
        } else {
            z == self.contig.next()
        }
    }

    /// Coalesced watch fan-out for one applied batch: each watching proxy
    /// gets ONE `NotifyBatch` frame carrying the current state of every
    /// changed path it watches (in zxid order), instead of one `Notify`
    /// per path. The legacy baseline keeps the per-path frames.
    fn notify_watchers(&mut self, ctx: &mut Ctx<'_>, changed: &[String]) {
        let mut per_watcher: BTreeMap<NodeId, Vec<Write>> = BTreeMap::new();
        let mut seen: Vec<&str> = Vec::new();
        for path in changed {
            // A batch with several writes to one path changes it once: the
            // notify carries the current (latest) state.
            if seen.contains(&path.as_str()) {
                continue;
            }
            seen.push(path);
            if let Some(current) = self.store.get(path).cloned() {
                let watchers: Vec<NodeId> = self.watches.watchers(path).collect();
                for w in watchers {
                    per_watcher.entry(w).or_default().push(current.clone());
                }
            }
        }
        for (watcher, mut writes) in per_watcher {
            writes.sort_by_key(|w| w.zxid);
            if self.legacy_notify {
                for w in writes {
                    let trace = w.trace;
                    ctx.send_traced(
                        watcher,
                        w.wire_size(),
                        Box::new(ZeusMsg::Notify { write: w }),
                        trace,
                    );
                }
            } else if writes.len() <= MAX_BATCH_WRITES {
                // Single-frame fast path: the list fits one chunk, so move
                // it into the message instead of re-cloning every write.
                let size = batch_wire_size(&writes);
                let traces = batch_traces(&writes);
                ctx.send_traced_batch(
                    watcher,
                    size,
                    Box::new(ZeusMsg::NotifyBatch { writes }),
                    traces,
                );
            } else {
                for chunk in writes.chunks(MAX_BATCH_WRITES) {
                    ctx.send_traced_batch(
                        watcher,
                        batch_wire_size(chunk),
                        Box::new(ZeusMsg::NotifyBatch {
                            writes: chunk.to_vec(),
                        }),
                        batch_traces(chunk),
                    );
                }
            }
        }
    }
}

impl Actor for ObserverActor {
    fn kind(&self) -> &'static str {
        "zeus.observer"
    }

    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        self.sync(ctx);
        ctx.set_timer(self.sync_every, TIMER_ANTI_ENTROPY);
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, tag: u64) {
        if tag == TIMER_ANTI_ENTROPY {
            self.sync(ctx);
            ctx.set_timer(self.sync_every, TIMER_ANTI_ENTROPY);
        } else if tag == TIMER_SYNC_RETRY {
            self.retry_armed = false;
            if self.contig < self.target_head {
                self.gap_sync(ctx);
            }
        }
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_>, from: NodeId, msg: Message) {
        let Ok(msg) = msg.downcast::<ZeusMsg>() else {
            return;
        };
        match *msg {
            ZeusMsg::ObserverUpdateBatch { writes, upto } => {
                // All-or-nothing push frame: the writes arrive together, in
                // zxid order. Walk the contiguity cursor through the whole
                // frame, then compare it against the commit head the frame
                // asserts: any shortfall — a hole inside this frame, a
                // dropped sibling chunk, or an epoch boundary we cannot
                // locally account for — is ONE gap, answered by ONE resync.
                for w in &writes {
                    let z = w.zxid;
                    if self.is_next(z) {
                        self.contig = z;
                    }
                }
                self.target_head = self.target_head.max(upto);
                if self.contig < upto {
                    // The writes are still applied below so reads stay
                    // fresh; the resync repairs the missing range.
                    self.gap_sync(ctx);
                }
                let mut changed: Vec<String> = Vec::new();
                for mut write in writes {
                    // Re-root the context at this observer so proxy hops
                    // hang off the observer that served them; the per-node
                    // dedup key makes retransmitted pushes record nothing.
                    if let Some(t) = write.trace {
                        if let Some(c) = ctx.trace_hop(
                            t,
                            hops::OBSERVER_APPLY,
                            vec![("zxid", write.zxid.to_string()), ("via", "push".into())],
                        ) {
                            write.trace = Some(c);
                        }
                    }
                    let path = write.path.clone();
                    if self.store.apply(write) {
                        changed.push(path);
                        ctx.metrics().incr(OBSERVER_APPLIED, 1);
                        ctx.ods_counter(ods::tiers::OBSERVER, ods::series::APPLIED, 1.0);
                    }
                }
                self.notify_watchers(ctx, &changed);
            }
            ZeusMsg::SyncReply { writes, upto } => {
                // Atomic catch-up from the leader: absorb may repair holes
                // behind `last_applied`, so notify watchers of every path
                // whose materialized value actually changed.
                self.sync_inflight = None;
                let mut changed: Vec<String> = Vec::new();
                for mut w in writes {
                    if let Some(t) = w.trace {
                        if let Some(c) = ctx.trace_hop(
                            t,
                            hops::OBSERVER_APPLY,
                            vec![("zxid", w.zxid.to_string()), ("via", "sync".into())],
                        ) {
                            w.trace = Some(c);
                        }
                    }
                    let path = w.path.clone();
                    if self.store.absorb(w) {
                        changed.push(path);
                    }
                }
                self.store.fast_forward(upto);
                self.contig = self.contig.max(upto);
                self.notify_watchers(ctx, &changed);
                // The reply may assert less than the pushed head (a fresh
                // leader clamps to its own gap-free prefix); keep asking
                // until the cursor reaches everything a push promised.
                if self.contig < self.target_head {
                    self.gap_sync(ctx);
                }
            }
            ZeusMsg::Subscribe { path, have } => {
                self.watches.watch(from, &path);
                // Most re-subscribes are caught up; compare zxids before
                // cloning the stored write (this handler runs once per
                // proxy health-check per path).
                if let Some(w) = self.store.get(&path) {
                    if w.zxid > have {
                        let w = w.clone();
                        let trace = w.trace;
                        ctx.send_traced(
                            from,
                            w.wire_size(),
                            Box::new(ZeusMsg::Notify { write: w }),
                            trace,
                        );
                    }
                }
            }
            ZeusMsg::NewLeader { leader, .. } => {
                self.leader = leader;
                self.sync(ctx);
            }
            ZeusMsg::Heartbeat { committed, .. } => {
                // The leader heartbeats observers with its commit head:
                // push frames are all-or-nothing, so this 64-byte signal is
                // what reveals a fully dropped push round. Gated in BOTH
                // modes — at 20 heartbeats/s an ungated ask would turn one
                // hole into a payload-heavy sync-reply flood.
                self.target_head = self.target_head.max(committed);
                if self.contig < committed {
                    self.gated_sync(ctx);
                }
            }
            ZeusMsg::ProxyPing => {
                ctx.send_value(from, 16, ZeusMsg::ProxyPong);
            }
            _ => {}
        }
    }

    fn on_recover(&mut self, ctx: &mut Ctx<'_>) {
        // "If an observer fails and then reconnects to the leader, it sends
        // the latest transaction ID it is aware of" (§3.4).
        self.sync(ctx);
        ctx.set_timer(self.sync_every, TIMER_ANTI_ENTROPY);
    }
}
