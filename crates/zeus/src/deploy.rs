//! Fleet wiring: installs a complete Zeus deployment onto a simulation.
//!
//! Reproduces the paper's layout (§3.4): a consensus ensemble spread across
//! regions, several observers per cluster, and a proxy on every remaining
//! server, forming the three-level leader → observer → proxy tree.

use bytes::Bytes;
use simnet::{NodeId, Sim, SimTime, TraceCtx};

use crate::ensemble::{EnsembleActor, EnsembleConfig};
use crate::metrics::WRITES_UNROUTABLE;
use crate::observer::ObserverActor;
use crate::proxy::{ProxyActor, ProxyCmd};
use crate::types::ZeusMsg;

/// Deployment parameters.
#[derive(Debug, Clone)]
pub struct DeployConfig {
    /// Ensemble size (leader + followers). Must be odd and ≥ 1.
    pub ensemble_size: usize,
    /// Observers designated per cluster.
    pub observers_per_cluster: usize,
    /// Paths every proxy subscribes to at start.
    pub subscriptions: Vec<String>,
    /// Ensemble protocol tuning.
    pub ensemble: EnsembleConfig,
}

impl Default for DeployConfig {
    fn default() -> DeployConfig {
        DeployConfig {
            ensemble_size: 5,
            observers_per_cluster: 2,
            subscriptions: Vec::new(),
            ensemble: EnsembleConfig::default(),
        }
    }
}

/// Handles to an installed deployment.
#[derive(Debug, Clone)]
pub struct ZeusDeployment {
    /// Ensemble member nodes; `ensemble[0]` is the initial leader.
    pub ensemble: Vec<NodeId>,
    /// Observer nodes, grouped per cluster in topology order.
    pub observers: Vec<NodeId>,
    /// Proxy nodes (every server that is neither ensemble nor observer).
    pub proxies: Vec<NodeId>,
}

impl ZeusDeployment {
    /// Installs ensemble, observers, and proxies onto `sim`.
    ///
    /// Ensemble members are spread round-robin across regions (first
    /// server of successive clusters); each cluster's next
    /// `observers_per_cluster` servers become observers; everything else
    /// runs a proxy.
    ///
    /// # Panics
    ///
    /// Panics if the topology is too small for the requested layout.
    pub fn install(sim: &mut Sim, cfg: &DeployConfig) -> ZeusDeployment {
        assert!(cfg.ensemble_size >= 1, "ensemble must be nonempty");
        let topo = sim.topology().clone();
        // Ensemble: first server of cluster 0, 1, 2, ... spread across
        // regions by taking one cluster per region round-robin.
        let mut ensemble: Vec<NodeId> = Vec::new();
        let mut region_cursor = 0usize;
        let mut per_region_cluster = vec![0usize; topo.num_regions()];
        while ensemble.len() < cfg.ensemble_size {
            let region = simnet::RegionId((region_cursor % topo.num_regions()) as u16);
            let clusters = topo.region_clusters(region);
            let ci = per_region_cluster[region.0 as usize];
            let cluster = clusters[ci % clusters.len()];
            per_region_cluster[region.0 as usize] += 1;
            let nodes = topo.cluster_nodes(cluster);
            assert!(!nodes.is_empty(), "empty cluster");
            ensemble.push(nodes[0]);
            region_cursor += 1;
        }
        ensemble.dedup();
        assert_eq!(
            ensemble.len(),
            cfg.ensemble_size,
            "topology too small for the requested ensemble"
        );
        let leader = ensemble[0];

        // Observers: per cluster, the first few non-ensemble servers.
        let mut observers = Vec::new();
        let mut observers_by_cluster: Vec<Vec<NodeId>> = Vec::new();
        for c in 0..topo.num_clusters() {
            let cluster = simnet::ClusterId(c as u32);
            let mut mine = Vec::new();
            for &n in topo.cluster_nodes(cluster) {
                if mine.len() >= cfg.observers_per_cluster {
                    break;
                }
                if !ensemble.contains(&n) {
                    mine.push(n);
                }
            }
            assert!(
                mine.len() == cfg.observers_per_cluster,
                "cluster {c} too small for {} observers",
                cfg.observers_per_cluster
            );
            observers.extend(&mine);
            observers_by_cluster.push(mine);
        }

        // Install ensemble actors.
        for &node in &ensemble {
            sim.add_actor(
                node,
                Box::new(EnsembleActor::new(
                    cfg.ensemble.clone(),
                    ensemble.clone(),
                    observers.clone(),
                    node,
                    leader,
                )),
            );
        }
        // Install observers. The legacy flag rides along so the losssweep
        // baseline degrades the whole pipeline, not just the ensemble tier.
        for &node in &observers {
            sim.add_actor(
                node,
                Box::new(
                    ObserverActor::new(leader, cfg.ensemble.log_cap)
                        .with_legacy_notify(cfg.ensemble.legacy_rebroadcast),
                ),
            );
        }
        // Install proxies everywhere else.
        let mut proxies = Vec::new();
        for node in topo.nodes() {
            if ensemble.contains(&node) || observers.contains(&node) {
                continue;
            }
            let cluster = topo.placement(node).cluster;
            let local_observers = observers_by_cluster[cluster.0 as usize].clone();
            sim.add_actor(
                node,
                Box::new(
                    ProxyActor::new(local_observers, cfg.subscriptions.clone())
                        .with_legacy(cfg.ensemble.legacy_rebroadcast),
                ),
            );
            proxies.push(node);
        }
        crate::metrics::register_help(sim.metrics_mut());
        ZeusDeployment {
            ensemble,
            observers,
            proxies,
        }
    }

    /// The initial leader node.
    pub fn initial_leader(&self) -> NodeId {
        self.ensemble[0]
    }

    /// Posts a config write to the deployment at time `at`, stamped with
    /// that origination time (propagation latency is measured against it).
    pub fn write_at(&self, sim: &mut Sim, at: SimTime, path: &str, data: impl Into<Bytes>) {
        let leader = self.initial_leader();
        let msg = ZeusMsg::Propose {
            path: path.to_string(),
            data: data.into(),
            origin: at,
            trace: None,
        };
        sim.post(at, leader, leader, Box::new(msg));
    }

    /// Schedules a config write at `at`, routed when it fires to whichever
    /// up ensemble member currently claims leadership (falling back to any
    /// up member, which forwards to its known leader). Unlike [`write_at`],
    /// which always targets the initial leader, this keeps a write workload
    /// flowing across leader crashes and elections.
    ///
    /// [`write_at`]: ZeusDeployment::write_at
    pub fn write_current(&self, sim: &mut Sim, at: SimTime, path: &str, data: impl Into<Bytes>) {
        self.write_current_traced(sim, at, path, data, None);
    }

    /// [`write_current`] with an optional trace context: the proposal (and
    /// every downstream hop) is attributed to the given trace.
    ///
    /// [`write_current`]: ZeusDeployment::write_current
    pub fn write_current_traced(
        &self,
        sim: &mut Sim,
        at: SimTime,
        path: &str,
        data: impl Into<Bytes>,
        trace: Option<TraceCtx>,
    ) {
        let ensemble = self.ensemble.clone();
        let path = path.to_string();
        let data = data.into();
        sim.schedule(at, move |s| {
            let target = ensemble
                .iter()
                .copied()
                .filter(|n| s.is_up(*n))
                .find(|n| {
                    s.actor::<EnsembleActor>(*n)
                        .is_some_and(EnsembleActor::is_leader)
                })
                .or_else(|| ensemble.iter().copied().find(|n| s.is_up(*n)));
            let Some(target) = target else {
                // Whole ensemble down: the write never enters the system
                // (and is therefore never acknowledged).
                s.metrics_mut().incr(WRITES_UNROUTABLE, 1);
                if let Some(t) = trace {
                    let now = s.now();
                    s.tracer_mut().annot(
                        t,
                        "zeus.unroutable",
                        None,
                        now,
                        vec![("reason", "ensemble_down".into())],
                    );
                }
                return;
            };
            let now = s.now();
            let msg = ZeusMsg::Propose {
                path: path.clone(),
                data: data.clone(),
                origin: now,
                trace,
            };
            s.post_traced(now, target, target, Box::new(msg), trace);
        });
    }

    /// Subscribes every proxy to `path` (driver-side convenience).
    pub fn subscribe_all(&self, sim: &mut Sim, path: &str) {
        self.subscribe_cohort(sim, path, &self.proxies.clone());
    }

    /// Subscribes only `cohort` to `path`: the scoped delivery under the
    /// canary pipeline's phase-gated blast radius — a staged artifact
    /// reaches exactly the designated canary servers, never the rest of
    /// the fleet, until the phase verdict promotes it.
    pub fn subscribe_cohort(&self, sim: &mut Sim, path: &str, cohort: &[NodeId]) {
        let now = sim.now();
        for &p in cohort {
            sim.post(
                now,
                p,
                p,
                Box::new(ProxyCmd::Subscribe {
                    path: path.to_string(),
                }),
            );
        }
    }

    /// Fraction of proxies whose cache holds `path` at a version ≥ the
    /// given payload check (by data equality).
    pub fn coverage(&self, sim: &Sim, path: &str, expected: &[u8]) -> f64 {
        Self::coverage_among(sim, &self.proxies, path, expected)
    }

    /// [`coverage`] over an explicit proxy subset — the phase-gate check of
    /// the canary pipeline (how much of *this cohort* holds the staged
    /// bytes) and its blast-radius invariant (no proxy *outside* the
    /// cohort ever does).
    ///
    /// [`coverage`]: ZeusDeployment::coverage
    pub fn coverage_among(sim: &Sim, proxies: &[NodeId], path: &str, expected: &[u8]) -> f64 {
        if proxies.is_empty() {
            return 0.0;
        }
        let mut have = 0usize;
        for &p in proxies {
            if let Some(actor) = sim.actor::<ProxyActor>(p) {
                if let Some(w) = actor.read(path) {
                    if &w.data[..] == expected {
                        have += 1;
                    }
                }
            }
        }
        have as f64 / proxies.len() as f64
    }
}
