//! The consensus ensemble: leader and followers with quorum commit.
//!
//! "Zeus ... runs a consensus protocol among servers distributed across
//! multiple regions for resilience. If the leader fails, a follower is
//! converted into a new leader" (§3.4). [`EnsembleActor`] implements a
//! ZAB-flavoured protocol:
//!
//! * The leader assigns `(epoch, counter)` zxids to proposals, replicates
//!   them to followers, and commits once a majority (counting itself) has
//!   acknowledged.
//! * Committed writes are pushed to observers in zxid order — the first
//!   level of the paper's leader → observer → proxy distribution tree.
//! * Followers monitor leader heartbeats; on silence, a follower starts an
//!   election for the next epoch. Votes are granted to candidates whose log
//!   is at least as advanced, and a candidate with a majority becomes the
//!   new leader.
//! * Late or restarted replicas (and observers) catch up by sending
//!   `ObserverSync { last_zxid }`; the leader replies with the missing
//!   committed writes, in order.

use std::collections::{BTreeMap, HashSet};

use rand::Rng;
use simnet::ods;
use simnet::{Actor, Ctx, Message, NodeId, SimDuration, TraceCtx};

use crate::metrics::TRUNCATED_UNCOMMITTED;
use crate::metrics::{hops, APPEND_RETRANSMITS, COMMITS, DROPPED_PROPOSALS, LEADER_ELECTIONS};
use crate::metrics::{LEADER_STEPDOWNS, REPROPOSED_ON_ELECTION, SYNC_REDIRECTS};
use crate::store::ConfigStore;
use crate::types::{adaptive_batch_size, batch_traces, batch_wire_size, Write, ZeusMsg, Zxid};
use crate::types::{MAX_BATCH_WRITES, MIN_LOSS_SAMPLES};

/// Timer tag for the leader heartbeat. Election timers use a per-node
/// generation counter (1, 2, 3, ...) as their tag instead of a fixed value:
/// timers cannot be cancelled, so bumping the generation is how a node
/// retires its election chain when it becomes leader (and how a deposed
/// leader starts a fresh chain without racing a stale one).
const TIMER_HEARTBEAT: u64 = 0;

/// Tuning knobs for the ensemble protocol.
#[derive(Debug, Clone)]
pub struct EnsembleConfig {
    /// Leader heartbeat period.
    pub heartbeat: SimDuration,
    /// Base election timeout (randomized up to 2x).
    pub election_timeout: SimDuration,
    /// Writes retained for catch-up responses.
    pub log_cap: usize,
    /// Pre-batching baseline for A/B measurement (`repro losssweep`): the
    /// heartbeat pacer re-broadcasts the entire uncommitted tail, one
    /// `Append` frame per write, to every follower — acked or not — and
    /// the leader pushes one frame per committed write to each observer
    /// (with observers notifying proxies one frame per path). Leave off
    /// for the ack-aware, batched behavior.
    pub legacy_rebroadcast: bool,
}

impl Default for EnsembleConfig {
    fn default() -> EnsembleConfig {
        EnsembleConfig {
            heartbeat: SimDuration::from_millis(50),
            election_timeout: SimDuration::from_millis(400),
            log_cap: 100_000,
            legacy_rebroadcast: false,
        }
    }
}

/// Per-follower transmission counters feeding the loss estimate.
///
/// `sends` counts every (follower, write) transmission — first appends
/// and repeats alike. `resends` counts only *second-and-later*
/// retransmissions of a write: a write's first retransmission is as
/// often ack round-trip lag as loss (a burst proposed just before a
/// heartbeat tick is re-sent once even on a perfect network), so it is
/// deliberately not counted as loss evidence. `retx_head` is the highest
/// zxid ever retransmitted toward the follower — a write at or below it
/// that shows up missing again has provably been retransmitted before.
#[derive(Debug, Clone, Copy, Default)]
struct LinkStats {
    sends: u64,
    resends: u64,
    retx_head: Zxid,
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum Role {
    Leader,
    Follower,
    Candidate,
}

/// One member of the Zeus ensemble (leader or follower, depending on
/// elections).
pub struct EnsembleActor {
    cfg: EnsembleConfig,
    peers: Vec<NodeId>,
    observers: Vec<NodeId>,
    role: Role,
    epoch: u32,
    /// Highest epoch this node has voted in (vote-once-per-epoch guard).
    promised_epoch: u32,
    current_leader: Option<NodeId>,
    /// Proposals received (leader: all proposed; follower: all appended).
    log: BTreeMap<Zxid, Write>,
    committed: Zxid,
    store: ConfigStore,
    next_counter: u64,
    /// Leader-side per-follower cumulative ack cursors: the highest zxid
    /// each peer has confirmed holding as a gap-free prefix of its epoch's
    /// log (via [`ZeusMsg::AckUpTo`]). Commit counting and targeted
    /// retransmission both read this — a write at or below a follower's
    /// cursor is acked and is never re-sent to that follower.
    peer_acked: BTreeMap<NodeId, Zxid>,
    /// Leader-side per-follower link statistics backing the adaptive
    /// retransmission chunk size. Kept across elections: loss is a
    /// property of the network path, not of the epoch, and a re-elected
    /// leader should start from warm estimates rather than re-learn a
    /// lossy link.
    peer_link: BTreeMap<NodeId, LinkStats>,
    /// Follower-side cumulative ack position: the longest gap-free prefix
    /// `(epoch, 1..=counter)` of the current epoch's appends held in the
    /// log. Unlike `contig` it resets at every epoch boundary (a new
    /// leader's log starts at counter 1 by construction), which is what
    /// lets acks keep flowing right after an election, before a sync
    /// reply walks `contig` across the boundary.
    ack_upto: Zxid,
    votes: HashSet<NodeId>,
    heard_from_leader: bool,
    /// Tag of the live election-timer chain; older tags are stale chains.
    election_gen: u64,
    /// Contiguity cursor: the highest zxid up to which this node provably
    /// holds *every* entry of the leader's history. Unlike
    /// `store.last_applied()`, which advances past holes left by dropped
    /// `Append`s, this only moves through gap-free prefixes — so gap
    /// detection and election comparisons stay sound when a single message
    /// in the middle of the stream is lost.
    contig: Zxid,
}

impl EnsembleActor {
    /// Creates an ensemble member. `initial_leader` bootstraps epoch 1
    /// without an election (as when the ensemble is first deployed).
    pub fn new(
        cfg: EnsembleConfig,
        peers: Vec<NodeId>,
        observers: Vec<NodeId>,
        me: NodeId,
        initial_leader: NodeId,
    ) -> EnsembleActor {
        let is_leader = me == initial_leader;
        EnsembleActor {
            store: ConfigStore::new(cfg.log_cap),
            cfg,
            peers,
            observers,
            role: if is_leader {
                Role::Leader
            } else {
                Role::Follower
            },
            epoch: 1,
            promised_epoch: 1,
            current_leader: Some(initial_leader),
            log: BTreeMap::new(),
            committed: Zxid::ZERO,
            next_counter: 0,
            peer_acked: BTreeMap::new(),
            peer_link: BTreeMap::new(),
            ack_upto: Zxid::ZERO,
            votes: HashSet::new(),
            heard_from_leader: true,
            election_gen: 0,
            contig: Zxid::ZERO,
        }
    }

    /// Current role name, for assertions in tests and experiments.
    pub fn is_leader(&self) -> bool {
        self.role == Role::Leader
    }

    /// Highest committed zxid.
    pub fn committed(&self) -> Zxid {
        self.committed
    }

    /// This node's view of the current leader.
    pub fn known_leader(&self) -> Option<NodeId> {
        self.current_leader
    }

    /// Read access to the applied store.
    pub fn store(&self) -> &ConfigStore {
        &self.store
    }

    /// Current epoch.
    pub fn epoch(&self) -> u32 {
        self.epoch
    }

    /// The contiguity cursor (see the field docs). Exposed for tests and
    /// chaos diagnostics.
    pub fn contiguous(&self) -> Zxid {
        self.contig
    }

    /// Whether an entry for `path` sits in the consensus log (appended or
    /// re-proposed, possibly not yet applied). Used by chaos invariants: a
    /// freshly elected leader holds re-proposed writes here until the
    /// quorum re-acknowledges them.
    pub fn pending_for_path(&self, path: &str) -> bool {
        self.log.values().any(|w| w.path == path)
    }

    /// The zxids currently held in the replication log. Exposed for tests
    /// that audit the contiguity cursor against what is actually held: a
    /// partially applied batch frame would leave a hole below the cursor.
    pub fn logged_zxids(&self) -> Vec<Zxid> {
        self.log.keys().copied().collect()
    }

    fn quorum(&self) -> usize {
        self.peers.len() / 2 + 1
    }

    /// Advances and returns the follower-side cumulative ack position: the
    /// longest gap-free `(epoch, 1..=counter)` prefix of `epoch`'s appends
    /// held in the log. A leader's first proposal of an epoch is always
    /// counter 1 (`become_leader` resets the counter), so the prefix walk
    /// can start from zero at every epoch change.
    fn ack_position(&mut self, epoch: u32) -> Zxid {
        if self.ack_upto.epoch != epoch {
            self.ack_upto = Zxid { epoch, counter: 0 };
        }
        loop {
            let next = Zxid {
                epoch,
                counter: self.ack_upto.counter + 1,
            };
            if self.log.contains_key(&next) {
                self.ack_upto = next;
            } else {
                break;
            }
        }
        self.ack_upto
    }

    /// Leader-side support count for `zxid`: self plus every follower whose
    /// cumulative ack covers it. Cursors are per-epoch (a follower acks the
    /// gap-free prefix of the *current* epoch's appends), so only same-epoch
    /// acks count — which is exactly right: every uncommitted log entry is
    /// a current-epoch proposal (`become_leader` re-proposes the inherited
    /// tail under its own epoch).
    fn support_for(&self, zxid: Zxid) -> usize {
        1 + self
            .peer_acked
            .values()
            .filter(|a| a.epoch == zxid.epoch && a.counter >= zxid.counter)
            .count()
    }

    /// Measured one-way frame-loss rate toward follower `f`, from the
    /// counted repeat rate `resends / sends`. Two inversions sit between
    /// them. A write needs a retransmission when *either* its append or
    /// its ack was lost, so with one-way loss `p` the round-trip loss is
    /// `q = 1 - (1-p)²`; and because a write's first retransmission is not
    /// counted (see [`LinkStats`]), the counted repeats per write converge
    /// to `q²/(1-q)` against `1/(1-q)` transmissions — a repeat rate of
    /// `q²`. So `q = √rate` and `p = 1 - √(1-q)`. `None` until
    /// [`MIN_LOSS_SAMPLES`] transmissions have been observed.
    fn loss_estimate(&self, f: NodeId) -> Option<f64> {
        let link = self.peer_link.get(&f).copied().unwrap_or_default();
        if link.sends < MIN_LOSS_SAMPLES {
            return None;
        }
        let repeat_rate = (link.resends as f64 / link.sends as f64).min(1.0);
        let roundtrip = repeat_rate.sqrt();
        Some(1.0 - (1.0 - roundtrip).sqrt())
    }

    /// The retransmission chunk size currently in effect toward follower
    /// `f` (exposed for tests and loss-sweep diagnostics): adaptive once
    /// the link has a trusted loss estimate, the fixed
    /// [`MAX_BATCH_WRITES`] tuning until then.
    pub fn retransmit_chunk_for(&self, f: NodeId) -> usize {
        match self.loss_estimate(f) {
            Some(p) => adaptive_batch_size(p),
            None => MAX_BATCH_WRITES,
        }
    }

    /// Walks the contiguity cursor forward through gap-free same-epoch
    /// successors present in the log. The cursor never jumps epochs on its
    /// own: locally there is no way to tell how much of the previous
    /// epoch's tail we missed, so epoch boundaries are only crossed by a
    /// leader-asserted `SyncReply` (the ZAB NEWLEADER-sync analogue) or by
    /// becoming the leader ourselves.
    fn extend_contig(&mut self) {
        loop {
            let next = if self.contig == Zxid::ZERO {
                Zxid {
                    epoch: 1,
                    counter: 1,
                }
            } else {
                self.contig.next()
            };
            if self.log.contains_key(&next) {
                self.contig = next;
            } else {
                return;
            }
        }
    }

    /// The election position: the highest zxid through which this node's
    /// history is provably gap-free. Elections must compare gap-free
    /// prefixes of full logs (not applied prefixes, and not raw log tails):
    /// a follower that appended a quorum-committed entry but has not yet
    /// seen the commit must still outrank peers that never saw the entry —
    /// but a raw log tail would let a node with a *hole* below the tail
    /// outrank a peer that actually holds the acknowledged write.
    fn election_position(&self) -> Zxid {
        self.contig
    }

    /// Heard from a leader of `leader_epoch`: drop uncommitted log entries
    /// appended under earlier epochs. The new leader re-proposes its own
    /// uncommitted suffix under its epoch, so any such entry is either
    /// arriving again with a new zxid or was abandoned by the election;
    /// keeping it would let a later `CommitUpTo` range-apply a write that
    /// no quorum ever acknowledged. Keyed off the leader's epoch rather
    /// than our own so a candidate that bumped its epoch and then lost the
    /// election still truncates its stale suffix.
    fn sync_epoch(&mut self, ctx: &mut Ctx<'_>, leader_epoch: u32) {
        self.epoch = self.epoch.max(leader_epoch);
        let committed = self.committed;
        let has_stale = self
            .log
            .range((
                std::ops::Bound::Excluded(committed),
                std::ops::Bound::Unbounded,
            ))
            .next()
            .is_some_and(|(z, _)| z.epoch < leader_epoch);
        if !has_stale {
            return;
        }
        let before = self.log.len();
        self.log
            .retain(|z, _| *z <= committed || z.epoch >= leader_epoch);
        let dropped = before - self.log.len();
        if dropped > 0 {
            ctx.metrics().incr(TRUNCATED_UNCOMMITTED, dropped as u64);
            // The truncated entries no longer back the contiguity cursor;
            // leaving it past them would let this node overclaim abandoned
            // history in elections (and in sync replies, as a leader).
            self.contig = self.contig.min(committed);
        }
    }

    /// Starts a fresh election-timer chain, retiring any previous one.
    fn arm_election(&mut self, ctx: &mut Ctx<'_>) {
        self.election_gen += 1;
        let jitter = ctx
            .rng()
            .gen_range(0..=self.cfg.election_timeout.as_micros());
        ctx.set_timer(
            self.cfg.election_timeout + SimDuration::from_micros(jitter),
            self.election_gen,
        );
    }

    /// Demotion on hearing from a leader. A node that *was* the leader has
    /// no election chain running (it retired it on winning), so it must
    /// start one or it could never depose a failed successor.
    fn step_down(&mut self, ctx: &mut Ctx<'_>) {
        let was_leader = self.role == Role::Leader;
        self.role = Role::Follower;
        // Ack cursors are leader-side state; a deposed leader's copy is
        // stale the moment the new epoch's proposals start flowing.
        self.peer_acked.clear();
        if was_leader {
            self.arm_election(ctx);
        }
    }

    fn broadcast(&self, ctx: &mut Ctx<'_>, msg: &ZeusMsg, size: u64) {
        for &p in &self.peers {
            if p != ctx.node() {
                ctx.send_value(p, size, msg.clone());
            }
        }
    }

    fn become_leader(&mut self, ctx: &mut Ctx<'_>) {
        self.role = Role::Leader;
        self.current_leader = Some(ctx.node());
        self.next_counter = 0;
        self.peer_acked.clear();
        // Retire the election chain; the heartbeat chain takes over.
        self.election_gen += 1;
        ctx.metrics().incr(LEADER_ELECTIONS, 1);
        let msg = ZeusMsg::NewLeader {
            epoch: self.epoch,
            leader: ctx.node(),
        };
        self.broadcast(ctx, &msg, 64);
        for &o in &self.observers.clone() {
            ctx.send_value(o, 64, msg.clone());
        }
        self.send_heartbeat(ctx);
        ctx.set_timer(self.cfg.heartbeat, TIMER_HEARTBEAT);
        // Reconciliation: entries this node appended but never saw commit
        // may or may not have reached a quorum under the old leader. Either
        // way the only safe path is to re-propose them under the new epoch;
        // followers truncate their own uncommitted old-epoch suffixes when
        // they observe the epoch change, so no entry is applied twice.
        let committed = self.committed;
        let uncommitted: Vec<Write> = self
            .log
            .range((
                std::ops::Bound::Excluded(committed),
                std::ops::Bound::Unbounded,
            ))
            .map(|(_, w)| w.clone())
            .collect();
        self.log.retain(|z, _| *z <= committed);
        // The winner's history is the ensemble's history by definition, so
        // `propose` below (and for every later client write) re-asserts the
        // contiguity cursor under the new epoch. Deliberately NOT widened to
        // `store.last_applied()` here: the store may have applied past a
        // hole while we were a follower, and the cursor must stay gap-free.
        if !uncommitted.is_empty() {
            ctx.metrics()
                .incr(REPROPOSED_ON_ELECTION, uncommitted.len() as u64);
        }
        for w in uncommitted {
            if let Some(t) = w.trace {
                ctx.trace_annot(t, hops::REPROPOSE, vec![("epoch", self.epoch.to_string())]);
            }
            self.propose(ctx, w.path, w.data, w.origin, w.trace);
        }
    }

    fn send_heartbeat(&self, ctx: &mut Ctx<'_>) {
        let msg = ZeusMsg::Heartbeat {
            epoch: self.epoch,
            committed: self.committed,
        };
        self.broadcast(ctx, &msg, 64);
        // Observers get the heartbeat too: push frames are all-or-nothing,
        // so a fully dropped push round is otherwise silent until the next
        // anti-entropy tick. The 64-byte commit head lets an observer spot
        // the hole within one heartbeat period and resync immediately.
        for &o in &self.observers {
            ctx.send_value(o, 64, msg.clone());
        }
    }

    /// Leader path: assign a zxid, append locally, replicate.
    fn propose(
        &mut self,
        ctx: &mut Ctx<'_>,
        path: String,
        data: bytes::Bytes,
        origin: simnet::SimTime,
        trace: Option<TraceCtx>,
    ) {
        self.next_counter += 1;
        let zxid = Zxid {
            epoch: self.epoch,
            counter: self.next_counter,
        };
        // Hang all downstream hops under the propose span. A re-proposal
        // after election lands on a different node, so the dedup key admits
        // it; a duplicate on the same leader keeps the original context.
        let trace = trace.map(|t| {
            ctx.trace_hop(t, hops::LEADER_PROPOSE, vec![("zxid", zxid.to_string())])
                .unwrap_or(t)
        });
        let write = Write {
            zxid,
            path,
            data,
            origin,
            trace,
        };
        self.log.insert(write.zxid, write.clone());
        // The leader authors history in order; its own proposals are
        // contiguous by construction.
        self.contig = write.zxid;
        let size = write.wire_size();
        // First transmission toward every follower: feeds the denominator
        // of the per-link loss estimate.
        let me = ctx.node();
        for &p in &self.peers {
            if p != me {
                self.peer_link.entry(p).or_default().sends += 1;
            }
        }
        self.broadcast(ctx, &ZeusMsg::Append { write }, size);
        // A single-node ensemble commits immediately.
        self.try_commit(ctx);
    }

    fn try_commit(&mut self, ctx: &mut Ctx<'_>) {
        let quorum = self.quorum();
        let mut new_commit = self.committed;
        // Commits are in-order: advance through consecutive proposals whose
        // cumulative-ack support reaches a quorum, stop at the first that
        // lacks it. Cumulative cursors make the per-proposal check O(peers).
        let candidates: Vec<Zxid> = self
            .log
            .range((
                std::ops::Bound::Excluded(self.committed),
                std::ops::Bound::Unbounded,
            ))
            .map(|(&z, _)| z)
            .collect();
        for zxid in candidates {
            if self.support_for(zxid) >= quorum {
                new_commit = zxid;
            } else {
                break;
            }
        }
        if new_commit > self.committed {
            self.committed = new_commit;
            // Apply in order, then push to each observer as ONE batched
            // frame. A quorum ack that commits several proposals at once
            // (the norm when loss stalled the in-order commit point) used
            // to fan out one message per write per observer.
            let to_apply: Vec<Write> = self
                .log
                .range(..=new_commit)
                .filter(|(z, _)| **z > self.store.last_applied())
                .map(|(_, w)| w.clone())
                .collect();
            let mut batch: Vec<Write> = Vec::with_capacity(to_apply.len());
            for mut w in to_apply {
                // Re-root the write's context at the commit span, so the
                // observer/proxy fan-out hangs off the quorum decision.
                if let Some(t) = w.trace {
                    let acks = self.support_for(w.zxid);
                    if let Some(c) = ctx.trace_hop(
                        t,
                        hops::QUORUM_COMMIT,
                        vec![("zxid", w.zxid.to_string()), ("acks", acks.to_string())],
                    ) {
                        w.trace = Some(c);
                    }
                }
                self.store.apply(w.clone());
                batch.push(w);
            }
            if !batch.is_empty() {
                for &o in &self.observers.clone() {
                    if self.cfg.legacy_rebroadcast {
                        // Baseline: one frame per committed write, asserting
                        // completeness only up to itself — exactly the
                        // information the pre-batching per-write push
                        // carried.
                        for w in &batch {
                            ctx.send_traced_batch(
                                o,
                                batch_wire_size(std::slice::from_ref(w)),
                                Box::new(ZeusMsg::ObserverUpdateBatch {
                                    writes: vec![w.clone()],
                                    upto: w.zxid,
                                }),
                                batch_traces(std::slice::from_ref(w)),
                            );
                        }
                    } else {
                        for chunk in batch.chunks(MAX_BATCH_WRITES) {
                            ctx.send_traced_batch(
                                o,
                                batch_wire_size(chunk),
                                Box::new(ZeusMsg::ObserverUpdateBatch {
                                    writes: chunk.to_vec(),
                                    upto: new_commit,
                                }),
                                batch_traces(chunk),
                            );
                        }
                    }
                }
            }
            self.broadcast(ctx, &ZeusMsg::CommitUpTo { zxid: new_commit }, 64);
            // Counts committed WRITES, not commit-point advances: a quorum
            // ack that lands several proposals at once is that many commits.
            ctx.metrics().incr(COMMITS, batch.len() as u64);
            ctx.ods_counter(ods::tiers::ZEUS, ods::series::COMMITS, batch.len() as f64);
        }
    }

    /// Targeted retransmission: for each follower, send exactly the pending
    /// writes its cumulative ack cursor does not cover, as all-or-nothing
    /// `AppendBatch` frames chunked by the link's measured loss rate (see
    /// [`adaptive_batch_size`]) — big frames on clean links, small blast
    /// radii on lossy ones. Followers that already acked the whole tail get
    /// nothing. `APPEND_RETRANSMITS` counts the actually retransmitted
    /// (follower, write) pairs.
    fn retransmit_targeted(&mut self, ctx: &mut Ctx<'_>, pending: &[Write]) {
        let me = ctx.node();
        for &f in &self.peers.clone() {
            if f == me {
                continue;
            }
            let acked = self.peer_acked.get(&f).copied().unwrap_or(Zxid::ZERO);
            let floor = self.committed.max(acked);
            let missing: Vec<Write> = pending.iter().filter(|w| w.zxid > floor).cloned().collect();
            if missing.is_empty() {
                continue;
            }
            ctx.metrics().incr(APPEND_RETRANSMITS, missing.len() as u64);
            let link = self.peer_link.entry(f).or_default();
            link.sends += missing.len() as u64;
            // Only second-and-later retransmissions count as loss
            // evidence: anything at or below the retransmit head has been
            // re-sent before and is still missing.
            link.resends += missing.iter().filter(|w| w.zxid <= link.retx_head).count() as u64;
            if let Some(last) = missing.last() {
                link.retx_head = link.retx_head.max(last.zxid);
            }
            let chunk_size = self.retransmit_chunk_for(f);
            for w in &missing {
                if let Some(t) = w.trace {
                    // Every retransmission is annotated (never deduped) so
                    // the waterfall shows per-follower retry counts.
                    ctx.trace_annot(
                        t,
                        hops::RETRANSMIT,
                        vec![("zxid", w.zxid.to_string()), ("to", f.0.to_string())],
                    );
                }
            }
            for chunk in missing.chunks(chunk_size) {
                ctx.send_traced_batch(
                    f,
                    batch_wire_size(chunk),
                    Box::new(ZeusMsg::AppendBatch {
                        writes: chunk.to_vec(),
                    }),
                    batch_traces(chunk),
                );
            }
        }
    }

    /// Pre-batching baseline (`legacy_rebroadcast`): the whole pending tail
    /// goes to every follower, one `Append` frame per write, acked or not.
    /// Kept so `repro losssweep` can measure the bytes the targeted path
    /// saves. `APPEND_RETRANSMITS` counts (follower, write) pairs here too,
    /// so the two modes are comparable.
    fn retransmit_blanket(&mut self, ctx: &mut Ctx<'_>, pending: &[Write]) {
        let fanout = (self.peers.len() - 1) as u64;
        ctx.metrics()
            .incr(APPEND_RETRANSMITS, pending.len() as u64 * fanout);
        for w in pending {
            if let Some(t) = w.trace {
                ctx.trace_annot(t, hops::RETRANSMIT, vec![("zxid", w.zxid.to_string())]);
            }
            let size = w.wire_size();
            self.broadcast(ctx, &ZeusMsg::Append { write: w.clone() }, size);
        }
    }

    /// Follower path: apply commits up to `zxid` from the in-order log.
    fn apply_commits(&mut self, upto: Zxid) {
        if upto <= self.committed {
            return;
        }
        let to_apply: Vec<Write> = self
            .log
            .range(..=upto)
            .filter(|(z, _)| **z > self.store.last_applied())
            .map(|(_, w)| w.clone())
            .collect();
        for w in to_apply {
            self.store.apply(w);
        }
        self.committed = upto;
    }

    fn handle(&mut self, ctx: &mut Ctx<'_>, from: NodeId, msg: ZeusMsg) {
        match msg {
            ZeusMsg::Propose {
                path,
                data,
                origin,
                trace,
            } => {
                if self.role == Role::Leader {
                    self.propose(ctx, path, data, origin, trace);
                } else if let Some(leader) = self.current_leader {
                    // Forward to the leader.
                    let size = (path.len() + data.len() + 64) as u64;
                    ctx.send_traced(
                        leader,
                        size,
                        Box::new(ZeusMsg::Propose {
                            path,
                            data,
                            origin,
                            trace,
                        }),
                        trace,
                    );
                } else {
                    ctx.metrics().incr(DROPPED_PROPOSALS, 1);
                    ctx.ods_counter(ods::tiers::ZEUS, ods::series::ERRORS, 1.0);
                }
            }
            ZeusMsg::Append { write }
                if self.role != Role::Leader && write.zxid.epoch >= self.epoch => {
                    let epoch = write.zxid.epoch;
                    self.sync_epoch(ctx, epoch);
                    self.heard_from_leader = true;
                    if let Some(t) = write.trace {
                        // Deduplicated per node: a retransmitted append does
                        // not double-count the hop.
                        ctx.trace_hop(
                            t,
                            hops::FOLLOWER_APPEND,
                            vec![("zxid", write.zxid.to_string())],
                        );
                    }
                    self.log.insert(write.zxid, write.clone());
                    self.extend_contig();
                    // Cumulative ack: one frame covers everything held so
                    // far, and re-acking a duplicate delivery is free.
                    let upto = self.ack_position(epoch);
                    ctx.send_value(from, 64, ZeusMsg::AckUpTo { upto });
                }
            ZeusMsg::AppendBatch { writes }
                if self.role != Role::Leader
                    && writes.first().is_some_and(|w| w.zxid.epoch >= self.epoch) => {
                    // All-or-nothing retransmission frame: by the time this
                    // arm runs, the whole batch was delivered (drops happen
                    // at the network layer, frame-granular). Apply every
                    // write, then ack once.
                    let epoch = writes[0].zxid.epoch;
                    self.sync_epoch(ctx, epoch);
                    self.heard_from_leader = true;
                    for write in writes {
                        if let Some(t) = write.trace {
                            ctx.trace_hop(
                                t,
                                hops::FOLLOWER_APPEND,
                                vec![("zxid", write.zxid.to_string())],
                            );
                        }
                        self.log.insert(write.zxid, write);
                    }
                    self.extend_contig();
                    let upto = self.ack_position(epoch);
                    ctx.send_value(from, 64, ZeusMsg::AckUpTo { upto });
                }
            ZeusMsg::AckUpTo { upto }
                if self.role == Role::Leader => {
                    let cur = self.peer_acked.entry(from).or_insert(Zxid::ZERO);
                    if upto > *cur {
                        *cur = upto;
                        self.try_commit(ctx);
                    }
                }
            ZeusMsg::CommitUpTo { zxid }
                if self.role != Role::Leader => {
                    self.heard_from_leader = true;
                    self.apply_commits(zxid);
                }
            ZeusMsg::Heartbeat { epoch, committed }
                if epoch >= self.epoch => {
                    self.sync_epoch(ctx, epoch);
                    if self.role != Role::Follower && from != ctx.node() {
                        self.step_down(ctx);
                    }
                    self.current_leader = Some(from);
                    self.heard_from_leader = true;
                    self.apply_commits(committed);
                    // Detect gaps: if the leader has committed past our
                    // gap-free prefix, request the missing range. Keyed off
                    // the contiguity cursor, NOT `store.last_applied()` —
                    // the store applies whatever the log holds and can
                    // advance past a hole, which would mask the missing
                    // write from a threshold comparison forever.
                    if committed > self.contig {
                        ctx.send_value(
                            from,
                            64,
                            ZeusMsg::ObserverSync {
                                last_zxid: self.contig,
                            },
                        );
                    }
                }
            ZeusMsg::ElectMe { epoch, last_zxid }
                if epoch > self.promised_epoch => {
                    // The promise advances whether or not the vote is
                    // granted (as Raft updates currentTerm on any higher
                    // term). Without this, a replica that inflated its
                    // epoch through failed candidacies while partitioned
                    // can never rejoin: it ignores the incumbent's
                    // lower-epoch heartbeats forever. Adopting the promise
                    // — and stepping down if we lead — forces the next
                    // election to an epoch above the disruptor's, which
                    // the up-to-date majority wins, and the stray replica
                    // follows the new epoch home.
                    self.promised_epoch = epoch;
                    if last_zxid >= self.election_position() {
                        ctx.send_value(from, 64, ZeusMsg::Vote { epoch });
                    } else if self.role == Role::Leader {
                        ctx.metrics().incr(LEADER_STEPDOWNS, 1);
                        self.step_down(ctx);
                    }
                }
            ZeusMsg::Vote { epoch }
                if self.role == Role::Candidate && epoch == self.epoch => {
                    self.votes.insert(from);
                    if self.votes.len() >= self.quorum() {
                        self.become_leader(ctx);
                    }
                }
            ZeusMsg::NewLeader { epoch, leader }
                if epoch >= self.epoch && leader != ctx.node() => {
                    self.sync_epoch(ctx, epoch);
                    self.promised_epoch = self.promised_epoch.max(epoch);
                    self.step_down(ctx);
                    self.current_leader = Some(leader);
                    self.heard_from_leader = true;
                    // Catch up with the new leader from the gap-free prefix
                    // so the reply also repairs any holes behind our head.
                    ctx.send_value(
                        leader,
                        64,
                        ZeusMsg::ObserverSync {
                            last_zxid: self.contig,
                        },
                    );
                }
            ZeusMsg::ObserverSync { last_zxid }
                if self.role == Role::Leader => {
                    let writes = match self.store.writes_after(last_zxid) {
                        Some(w) => w,
                        None => self.store.snapshot(),
                    };
                    // One atomic reply (ZooKeeper's DIFF/SNAP analogue):
                    // a stream of per-write messages could lose its middle
                    // to a drop window, leaving the receiver with a hole
                    // behind its cursor that no retry would ever cover.
                    //
                    // Assert completeness only up to our own gap-free
                    // prefix: a just-elected leader's `last_applied` can
                    // itself sit past a hole inherited from its follower
                    // days, and passing that on would corrupt the
                    // receiver's cursor with a hole nobody ever re-checks.
                    let size: u64 = writes.iter().map(Write::wire_size).sum::<u64>() + 64;
                    let upto = self.store.last_applied().min(self.contig);
                    ctx.send_value(from, size, ZeusMsg::SyncReply { writes, upto });
                }
            ZeusMsg::ObserverSync { .. } => {
                // We are not the leader. An observer syncing against us
                // has a stale leader pointer (its `NewLeader` was lost);
                // redirect it rather than silently dropping the request,
                // or it would anti-entropy into the void forever.
                if let Some(leader) = self.current_leader {
                    if leader != ctx.node() {
                        ctx.metrics().incr(SYNC_REDIRECTS, 1);
                        ctx.send_value(from, 64, ZeusMsg::NewLeader { epoch: self.epoch, leader });
                    }
                }
            }
            ZeusMsg::SyncReply { writes, upto }
                // Catch-up data from the leader: committed writes, possibly
                // repairing holes *behind* our applied head.
                if self.role != Role::Leader => {
                    for w in writes {
                        self.log.insert(w.zxid, w.clone());
                        self.store.absorb(w);
                    }
                    self.store.fast_forward(upto);
                    self.committed = self.committed.max(upto);
                    // The leader asserted completeness up to `upto`; this is
                    // the only place the cursor may cross an epoch boundary.
                    self.contig = self.contig.max(upto);
                    self.extend_contig();
                    // The sync may have filled holes below appends we
                    // already hold; re-ack so the leader's cursor (and the
                    // commit point) can advance past the repaired range.
                    let ack = self.ack_position(self.epoch);
                    if ack.counter > 0 {
                        ctx.send_value(from, 64, ZeusMsg::AckUpTo { upto: ack });
                    }
                }
            _ => {}
        }
    }
}

impl Actor for EnsembleActor {
    fn kind(&self) -> &'static str {
        "zeus.ensemble"
    }

    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        if self.role == Role::Leader {
            ctx.set_timer(self.cfg.heartbeat, TIMER_HEARTBEAT);
        } else {
            self.arm_election(ctx);
        }
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_>, from: NodeId, msg: Message) {
        if let Ok(m) = msg.downcast::<ZeusMsg>() {
            self.handle(ctx, from, *m);
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, tag: u64) {
        if tag == TIMER_HEARTBEAT {
            if self.role == Role::Leader {
                self.send_heartbeat(ctx);
                // Retransmit the uncommitted tail. Commits are strictly
                // in-order, so a single proposal whose appends (or acks)
                // were all lost would otherwise block every later commit
                // forever — ZAB gets this for free from FIFO TCP channels,
                // but this network drops individual messages. Re-appends
                // are idempotent and followers re-ack what they hold.
                let pending: Vec<Write> = self
                    .log
                    .range((
                        std::ops::Bound::Excluded(self.committed),
                        std::ops::Bound::Unbounded,
                    ))
                    .map(|(_, w)| w.clone())
                    .collect();
                if !pending.is_empty() {
                    if self.cfg.legacy_rebroadcast {
                        self.retransmit_blanket(ctx, &pending);
                    } else {
                        self.retransmit_targeted(ctx, &pending);
                    }
                }
                ctx.set_timer(self.cfg.heartbeat, TIMER_HEARTBEAT);
            }
            return;
        }
        // Election chain: only the live generation counts; stale chains
        // (from before a crash or a term as leader) die here.
        if tag != self.election_gen || self.role == Role::Leader {
            return;
        }
        if self.heard_from_leader {
            self.heard_from_leader = false;
        } else {
            // Leader is silent: start an election for the next epoch.
            self.role = Role::Candidate;
            self.epoch = self.promised_epoch + 1;
            self.promised_epoch = self.epoch;
            self.current_leader = None;
            self.votes.clear();
            self.votes.insert(ctx.node());
            let msg = ZeusMsg::ElectMe {
                epoch: self.epoch,
                last_zxid: self.election_position(),
            };
            self.broadcast(ctx, &msg, 64);
            if self.votes.len() >= self.quorum() {
                // Single-node ensemble.
                self.become_leader(ctx);
                return;
            }
        }
        let jitter = ctx
            .rng()
            .gen_range(0..=self.cfg.election_timeout.as_micros());
        ctx.set_timer(
            self.cfg.election_timeout + SimDuration::from_micros(jitter),
            self.election_gen,
        );
    }

    fn on_recover(&mut self, ctx: &mut Ctx<'_>) {
        // Rejoin as a follower and catch up.
        self.role = Role::Follower;
        self.heard_from_leader = false;
        if let Some(leader) = self.current_leader {
            ctx.send_value(
                leader,
                64,
                ZeusMsg::ObserverSync {
                    last_zxid: self.contig,
                },
            );
        }
        self.arm_election(ctx);
    }
}
