//! The consensus ensemble: leader and followers with quorum commit.
//!
//! "Zeus ... runs a consensus protocol among servers distributed across
//! multiple regions for resilience. If the leader fails, a follower is
//! converted into a new leader" (§3.4). [`EnsembleActor`] implements a
//! ZAB-flavoured protocol:
//!
//! * The leader assigns `(epoch, counter)` zxids to proposals, replicates
//!   them to followers, and commits once a majority (counting itself) has
//!   acknowledged.
//! * Committed writes are pushed to observers in zxid order — the first
//!   level of the paper's leader → observer → proxy distribution tree.
//! * Followers monitor leader heartbeats; on silence, a follower starts an
//!   election for the next epoch. Votes are granted to candidates whose log
//!   is at least as advanced, and a candidate with a majority becomes the
//!   new leader.
//! * Late or restarted replicas (and observers) catch up by sending
//!   `ObserverSync { last_zxid }`; the leader replies with the missing
//!   committed writes, in order.

use std::collections::{BTreeMap, HashSet};

use rand::Rng;
use simnet::{Actor, Ctx, Message, NodeId, SimDuration};

use crate::store::ConfigStore;
use crate::types::{Write, ZeusMsg, Zxid};

/// Timer tags.
const TIMER_HEARTBEAT: u64 = 1;
const TIMER_ELECTION: u64 = 2;

/// Tuning knobs for the ensemble protocol.
#[derive(Debug, Clone)]
pub struct EnsembleConfig {
    /// Leader heartbeat period.
    pub heartbeat: SimDuration,
    /// Base election timeout (randomized up to 2x).
    pub election_timeout: SimDuration,
    /// Writes retained for catch-up responses.
    pub log_cap: usize,
}

impl Default for EnsembleConfig {
    fn default() -> EnsembleConfig {
        EnsembleConfig {
            heartbeat: SimDuration::from_millis(50),
            election_timeout: SimDuration::from_millis(400),
            log_cap: 100_000,
        }
    }
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum Role {
    Leader,
    Follower,
    Candidate,
}

/// One member of the Zeus ensemble (leader or follower, depending on
/// elections).
pub struct EnsembleActor {
    cfg: EnsembleConfig,
    peers: Vec<NodeId>,
    observers: Vec<NodeId>,
    role: Role,
    epoch: u32,
    /// Highest epoch this node has voted in (vote-once-per-epoch guard).
    promised_epoch: u32,
    current_leader: Option<NodeId>,
    /// Proposals received (leader: all proposed; follower: all appended).
    log: BTreeMap<Zxid, Write>,
    committed: Zxid,
    store: ConfigStore,
    next_counter: u64,
    acks: BTreeMap<Zxid, HashSet<NodeId>>,
    votes: HashSet<NodeId>,
    heard_from_leader: bool,
}

impl EnsembleActor {
    /// Creates an ensemble member. `initial_leader` bootstraps epoch 1
    /// without an election (as when the ensemble is first deployed).
    pub fn new(
        cfg: EnsembleConfig,
        peers: Vec<NodeId>,
        observers: Vec<NodeId>,
        me: NodeId,
        initial_leader: NodeId,
    ) -> EnsembleActor {
        let is_leader = me == initial_leader;
        EnsembleActor {
            store: ConfigStore::new(cfg.log_cap),
            cfg,
            peers,
            observers,
            role: if is_leader { Role::Leader } else { Role::Follower },
            epoch: 1,
            promised_epoch: 1,
            current_leader: Some(initial_leader),
            log: BTreeMap::new(),
            committed: Zxid::ZERO,
            next_counter: 0,
            acks: BTreeMap::new(),
            votes: HashSet::new(),
            heard_from_leader: true,
        }
    }

    /// Current role name, for assertions in tests and experiments.
    pub fn is_leader(&self) -> bool {
        self.role == Role::Leader
    }

    /// Highest committed zxid.
    pub fn committed(&self) -> Zxid {
        self.committed
    }

    /// This node's view of the current leader.
    pub fn known_leader(&self) -> Option<NodeId> {
        self.current_leader
    }

    /// Read access to the applied store.
    pub fn store(&self) -> &ConfigStore {
        &self.store
    }

    /// Current epoch.
    pub fn epoch(&self) -> u32 {
        self.epoch
    }

    fn quorum(&self) -> usize {
        self.peers.len() / 2 + 1
    }

    fn broadcast(&self, ctx: &mut Ctx<'_>, msg: &ZeusMsg, size: u64) {
        for &p in &self.peers {
            if p != ctx.node() {
                ctx.send_value(p, size, msg.clone());
            }
        }
    }

    fn become_leader(&mut self, ctx: &mut Ctx<'_>) {
        self.role = Role::Leader;
        self.current_leader = Some(ctx.node());
        self.next_counter = 0;
        self.acks.clear();
        ctx.metrics().incr("zeus.leader_elections", 1);
        let msg = ZeusMsg::NewLeader {
            epoch: self.epoch,
            leader: ctx.node(),
        };
        self.broadcast(ctx, &msg, 64);
        for &o in &self.observers.clone() {
            ctx.send_value(o, 64, msg.clone());
        }
        self.send_heartbeat(ctx);
        ctx.set_timer(self.cfg.heartbeat, TIMER_HEARTBEAT);
    }

    fn send_heartbeat(&self, ctx: &mut Ctx<'_>) {
        let msg = ZeusMsg::Heartbeat {
            epoch: self.epoch,
            committed: self.committed,
        };
        self.broadcast(ctx, &msg, 64);
    }

    /// Leader path: assign a zxid, append locally, replicate.
    fn propose(&mut self, ctx: &mut Ctx<'_>, path: String, data: bytes::Bytes, origin: simnet::SimTime) {
        self.next_counter += 1;
        let write = Write {
            zxid: Zxid {
                epoch: self.epoch,
                counter: self.next_counter,
            },
            path,
            data,
            origin,
        };
        self.log.insert(write.zxid, write.clone());
        let mut set = HashSet::new();
        set.insert(ctx.node());
        self.acks.insert(write.zxid, set);
        let size = write.wire_size();
        self.broadcast(ctx, &ZeusMsg::Append { write }, size);
        // A single-node ensemble commits immediately.
        self.try_commit(ctx);
    }

    fn try_commit(&mut self, ctx: &mut Ctx<'_>) {
        let quorum = self.quorum();
        let mut new_commit = self.committed;
        // Commits are in-order: advance through consecutive quorum-acked
        // proposals only.
        for (&zxid, ackers) in &self.acks {
            if zxid <= new_commit {
                continue;
            }
            if ackers.len() >= quorum {
                new_commit = zxid;
            } else {
                break;
            }
        }
        if new_commit > self.committed {
            self.committed = new_commit;
            // Apply and push to observers in order.
            let to_apply: Vec<Write> = self
                .log
                .range(..=new_commit)
                .filter(|(z, _)| **z > self.store.last_applied())
                .map(|(_, w)| w.clone())
                .collect();
            for w in to_apply {
                self.store.apply(w.clone());
                let size = w.wire_size();
                for &o in &self.observers.clone() {
                    ctx.send_value(o, size, ZeusMsg::ObserverUpdate { write: w.clone() });
                }
            }
            self.acks.retain(|z, _| *z > new_commit);
            self.broadcast(ctx, &ZeusMsg::CommitUpTo { zxid: new_commit }, 64);
            ctx.metrics().incr("zeus.commits", 1);
        }
    }

    /// Follower path: apply commits up to `zxid` from the in-order log.
    fn apply_commits(&mut self, upto: Zxid) {
        if upto <= self.committed {
            return;
        }
        let to_apply: Vec<Write> = self
            .log
            .range(..=upto)
            .filter(|(z, _)| **z > self.store.last_applied())
            .map(|(_, w)| w.clone())
            .collect();
        for w in to_apply {
            self.store.apply(w);
        }
        self.committed = upto;
    }

    fn handle(&mut self, ctx: &mut Ctx<'_>, from: NodeId, msg: ZeusMsg) {
        match msg {
            ZeusMsg::Propose { path, data, origin } => {
                if self.role == Role::Leader {
                    self.propose(ctx, path, data, origin);
                } else if let Some(leader) = self.current_leader {
                    // Forward to the leader.
                    let size = (path.len() + data.len() + 64) as u64;
                    ctx.send_value(leader, size, ZeusMsg::Propose { path, data, origin });
                } else {
                    ctx.metrics().incr("zeus.dropped_proposals", 1);
                }
            }
            ZeusMsg::Append { write }
                if self.role != Role::Leader && write.zxid.epoch >= self.epoch => {
                    self.epoch = write.zxid.epoch;
                    self.heard_from_leader = true;
                    self.log.insert(write.zxid, write.clone());
                    ctx.send_value(from, 64, ZeusMsg::AckAppend { zxid: write.zxid });
                }
            ZeusMsg::AckAppend { zxid }
                if self.role == Role::Leader => {
                    if let Some(set) = self.acks.get_mut(&zxid) {
                        set.insert(from);
                    }
                    self.try_commit(ctx);
                }
            ZeusMsg::CommitUpTo { zxid }
                if self.role != Role::Leader => {
                    self.heard_from_leader = true;
                    self.apply_commits(zxid);
                }
            ZeusMsg::Heartbeat { epoch, committed }
                if epoch >= self.epoch => {
                    self.epoch = epoch;
                    if self.role != Role::Follower && from != ctx.node() {
                        self.role = Role::Follower;
                    }
                    self.current_leader = Some(from);
                    self.heard_from_leader = true;
                    self.apply_commits(committed);
                    // Detect log gaps: if the leader has committed past our
                    // log, request the missing tail.
                    if committed > self.store.last_applied() {
                        ctx.send_value(
                            from,
                            64,
                            ZeusMsg::ObserverSync {
                                last_zxid: self.store.last_applied(),
                            },
                        );
                    }
                }
            ZeusMsg::ElectMe { epoch, last_zxid }
                if epoch > self.promised_epoch && last_zxid >= self.store.last_applied() => {
                    self.promised_epoch = epoch;
                    ctx.send_value(from, 64, ZeusMsg::Vote { epoch });
                }
            ZeusMsg::Vote { epoch }
                if self.role == Role::Candidate && epoch == self.epoch => {
                    self.votes.insert(from);
                    if self.votes.len() >= self.quorum() {
                        self.become_leader(ctx);
                    }
                }
            ZeusMsg::NewLeader { epoch, leader }
                if epoch >= self.epoch && leader != ctx.node() => {
                    self.epoch = epoch;
                    self.promised_epoch = self.promised_epoch.max(epoch);
                    self.role = Role::Follower;
                    self.current_leader = Some(leader);
                    self.heard_from_leader = true;
                    // Catch up with the new leader.
                    ctx.send_value(
                        leader,
                        64,
                        ZeusMsg::ObserverSync {
                            last_zxid: self.store.last_applied(),
                        },
                    );
                }
            ZeusMsg::ObserverSync { last_zxid }
                if self.role == Role::Leader => {
                    let writes = match self.store.writes_after(last_zxid) {
                        Some(w) => w,
                        None => self.store.snapshot(),
                    };
                    for w in writes {
                        let size = w.wire_size();
                        ctx.send_value(from, size, ZeusMsg::ObserverUpdate { write: w });
                    }
                }
            ZeusMsg::ObserverUpdate { write }
                // Catch-up data from the (new) leader: committed writes.
                if self.role != Role::Leader => {
                    let z = write.zxid;
                    self.log.insert(z, write.clone());
                    self.store.apply(write);
                    if z > self.committed {
                        self.committed = z;
                    }
                }
            _ => {}
        }
    }
}

impl Actor for EnsembleActor {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        if self.role == Role::Leader {
            ctx.set_timer(self.cfg.heartbeat, TIMER_HEARTBEAT);
        } else {
            let jitter = ctx.rng().gen_range(0..=self.cfg.election_timeout.as_micros());
            ctx.set_timer(
                self.cfg.election_timeout + SimDuration::from_micros(jitter),
                TIMER_ELECTION,
            );
        }
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_>, from: NodeId, msg: Message) {
        if let Ok(m) = msg.downcast::<ZeusMsg>() {
            self.handle(ctx, from, *m);
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, tag: u64) {
        match tag {
            TIMER_HEARTBEAT if self.role == Role::Leader => {
                self.send_heartbeat(ctx);
                ctx.set_timer(self.cfg.heartbeat, TIMER_HEARTBEAT);
            }
            TIMER_ELECTION if self.role != Role::Leader => {
                if self.heard_from_leader {
                    self.heard_from_leader = false;
                } else {
                    // Leader is silent: start an election for the next
                    // epoch.
                    self.role = Role::Candidate;
                    self.epoch = self.promised_epoch + 1;
                    self.promised_epoch = self.epoch;
                    self.current_leader = None;
                    self.votes.clear();
                    self.votes.insert(ctx.node());
                    let msg = ZeusMsg::ElectMe {
                        epoch: self.epoch,
                        last_zxid: self.store.last_applied(),
                    };
                    self.broadcast(ctx, &msg, 64);
                    if self.votes.len() >= self.quorum() {
                        // Single-node ensemble.
                        self.become_leader(ctx);
                    }
                }
                let jitter = ctx.rng().gen_range(0..=self.cfg.election_timeout.as_micros());
                ctx.set_timer(
                    self.cfg.election_timeout + SimDuration::from_micros(jitter),
                    TIMER_ELECTION,
                );
            }
            _ => {}
        }
    }

    fn on_recover(&mut self, ctx: &mut Ctx<'_>) {
        // Rejoin as a follower and catch up.
        self.role = Role::Follower;
        self.heard_from_leader = false;
        if let Some(leader) = self.current_leader {
            ctx.send_value(
                leader,
                64,
                ZeusMsg::ObserverSync {
                    last_zxid: self.store.last_applied(),
                },
            );
        }
        let jitter = ctx.rng().gen_range(0..=self.cfg.election_timeout.as_micros());
        ctx.set_timer(
            self.cfg.election_timeout + SimDuration::from_micros(jitter),
            TIMER_ELECTION,
        );
    }
}
