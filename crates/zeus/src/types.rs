//! Core protocol types: transaction ids, writes, and wire messages.

use bytes::Bytes;
use simnet::{NodeId, SimTime, TraceCtx};

/// A ZooKeeper-style transaction id: `(epoch, counter)`, totally ordered.
///
/// The epoch increments on every leader change; the counter increments per
/// committed write within an epoch. The commit log's zxid order is the
/// delivery order guarantee the paper relies on: "an application's instances
/// running on different servers should eventually receive all config
/// updates delivered in the same order" (§3.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Zxid {
    /// Leader epoch.
    pub epoch: u32,
    /// Counter within the epoch.
    pub counter: u64,
}

impl Zxid {
    /// The zero id (before any write).
    pub const ZERO: Zxid = Zxid {
        epoch: 0,
        counter: 0,
    };

    /// Returns the next zxid within the same epoch.
    pub fn next(self) -> Zxid {
        Zxid {
            epoch: self.epoch,
            counter: self.counter + 1,
        }
    }
}

impl std::fmt::Display for Zxid {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}", self.epoch, self.counter)
    }
}

/// A single committed write: set `path` to `data`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Write {
    /// Transaction id assigned by the leader.
    pub zxid: Zxid,
    /// Config path.
    pub path: String,
    /// Config payload (compiled JSON, or PackageVessel metadata).
    pub data: Bytes,
    /// When the originating client issued the write (for end-to-end
    /// propagation measurements).
    pub origin: SimTime,
    /// Causal trace context carried from the originating commit, if the
    /// write is being traced. Clones (retransmits, sync replies, notifies)
    /// keep the context, so every downstream hop stays attributable.
    pub trace: Option<TraceCtx>,
}

impl Write {
    /// Approximate wire size in bytes.
    pub fn wire_size(&self) -> u64 {
        (self.path.len() + self.data.len() + 64) as u64
    }
}

/// Default writes per batched frame, used wherever no per-link loss
/// estimate exists (observer pushes, and retransmission before enough
/// transmissions have been observed). Batches are all-or-nothing, so an
/// unbounded frame turns one drop into a silent loss of the whole tail —
/// the receiver sees *nothing* and cannot even detect a gap until the next
/// anti-entropy tick. Chunking bounds that blast radius: under loss, most
/// receivers still get some chunk, notice the hole, and resync
/// immediately, while the header-amortization and targeting savings are
/// kept (cumulative acks never skip past a missing middle chunk). Tuned
/// with `repro losssweep`: at 30% drop, larger chunks buy little extra
/// byte reduction (headers are small next to payloads — the savings come
/// from targeting) but measurably fatten the delivery tail.
pub const MAX_BATCH_WRITES: usize = 4;

/// Ceiling for the adaptive retransmission chunk size on links measured
/// to be clean. Headers are 64 bytes against kilobyte payloads, so going
/// past this buys nothing measurable while widening the all-or-nothing
/// blast radius if the estimate is stale.
pub const MAX_ADAPTIVE_BATCH_WRITES: usize = 16;

/// Transmissions observed toward a follower before its loss estimate is
/// trusted. Below this the retransmission path chunks at
/// [`MAX_BATCH_WRITES`], the fixed tuning the sweep validated.
pub const MIN_LOSS_SAMPLES: u64 = 16;

/// Retransmission chunk size for a link with measured frame-loss rate
/// `loss`, as a fraction in `[0, 1]`.
///
/// A frame of `k` writes is all-or-nothing; at loss rate `p` the expected
/// writes lost to one dropped frame is `k·p`. Holding that blast radius
/// constant at ~half a write per frame gives `k = 0.5 / p`: clean links
/// (`p → 0`) amortize headers across up to [`MAX_ADAPTIVE_BATCH_WRITES`]
/// writes, while at the losssweep's 30% worst case the chunk shrinks to 2
/// so a drop costs at most two writes' worth of tail. At `p = 12.5%` this
/// reproduces the fixed [`MAX_BATCH_WRITES`] = 4 the sweep originally
/// tuned.
pub fn adaptive_batch_size(loss: f64) -> usize {
    if loss <= 0.0 {
        return MAX_ADAPTIVE_BATCH_WRITES;
    }
    let k = (0.5 / loss).ceil() as usize;
    k.clamp(1, MAX_ADAPTIVE_BATCH_WRITES)
}

/// Approximate wire size of a frame carrying `writes` plus a fixed header.
/// One batched frame costs one header; the per-write overhead is already
/// inside [`Write::wire_size`].
pub fn batch_wire_size(writes: &[Write]) -> u64 {
    writes.iter().map(Write::wire_size).sum::<u64>() + 64
}

/// The trace contexts carried by `writes`, for the delivery envelope of a
/// batched frame (so a dropped frame annotates every write's trace).
pub fn batch_traces(writes: &[Write]) -> Vec<TraceCtx> {
    writes.iter().filter_map(|w| w.trace).collect()
}

/// Messages of the Zeus protocol.
#[derive(Debug, Clone)]
pub enum ZeusMsg {
    /// Client → leader: propose a write.
    Propose {
        /// Config path to set.
        path: String,
        /// Payload.
        data: Bytes,
        /// Client-side origination time.
        origin: SimTime,
        /// Trace context of the originating commit, if traced.
        trace: Option<TraceCtx>,
    },
    /// Leader → follower: replicate a proposal.
    Append {
        /// The proposed write.
        write: Write,
    },
    /// Leader → one follower: retransmit exactly the proposals that
    /// follower is missing, as one all-or-nothing frame.
    ///
    /// Same atomicity rule as [`ZeusMsg::SyncReply`]: either the whole
    /// batch arrives or none of it does, so a drop window can never
    /// swallow the middle of a retransmitted tail and leave the follower
    /// with a hole its cumulative ack would silently skip past.
    AppendBatch {
        /// The missing proposals, in zxid order.
        writes: Vec<Write>,
    },
    /// Follower → leader: cumulative acknowledgment — "I hold every
    /// proposal of `upto`'s epoch with a counter ≤ `upto.counter`,
    /// gap-free". Replaces per-write acks: one 64-byte frame acknowledges
    /// an entire append batch, and re-acking a duplicate delivery is free
    /// (the leader takes the max).
    AckUpTo {
        /// Highest contiguously-held zxid of the current epoch.
        upto: Zxid,
    },
    /// Leader → follower: everything up to `zxid` is committed.
    CommitUpTo {
        /// Highest committed zxid.
        zxid: Zxid,
    },
    /// Leader → everyone: liveness heartbeat (also carries commit point).
    Heartbeat {
        /// Leader's epoch.
        epoch: u32,
        /// Highest committed zxid.
        committed: Zxid,
    },
    /// Candidate → ensemble: request votes for a new epoch.
    ElectMe {
        /// Proposed epoch.
        epoch: u32,
        /// Candidate's last logged zxid.
        last_zxid: Zxid,
    },
    /// Voter → candidate: vote granted for `epoch`.
    Vote {
        /// Epoch voted for.
        epoch: u32,
    },
    /// New leader → everyone: epoch established.
    NewLeader {
        /// The new epoch.
        epoch: u32,
        /// The new leader's node.
        leader: NodeId,
    },
    /// Observer → leader: request committed writes after `last_zxid`
    /// (initial sync and crash recovery).
    ObserverSync {
        /// Last zxid the observer has applied.
        last_zxid: Zxid,
    },
    /// Leader → observer: committed writes (push path), in zxid order, as
    /// one all-or-nothing frame. A quorum ack that commits several
    /// proposals at once (the norm when a lost ack stalled the in-order
    /// commit point) ships to each observer as one frame instead of one
    /// message per write.
    ObserverUpdateBatch {
        /// The committed writes, in zxid order.
        writes: Vec<Write>,
        /// The leader's commit point when the frame was sent. Frames are
        /// all-or-nothing, so a *fully* dropped chunk is silent — but any
        /// sibling (or later) chunk that does arrive carries this head,
        /// letting the observer spot the hole and resync immediately
        /// instead of waiting out the anti-entropy interval.
        upto: Zxid,
    },
    /// Leader → syncing replica: the committed tail (or snapshot) answering
    /// an [`ZeusMsg::ObserverSync`], as one atomic unit.
    ///
    /// Like ZooKeeper's DIFF/SNAP sync, the reply is all-or-nothing: either
    /// the whole batch arrives or none of it does. Sending it as individual
    /// updates would let the network drop the middle of a catch-up stream,
    /// leaving the replica with a hole *behind* its sync cursor that no
    /// later request would ever cover.
    SyncReply {
        /// Missing committed writes in zxid order.
        writes: Vec<Write>,
        /// The leader's applied head: after absorbing `writes`, the replica
        /// provably holds every committed write up to this point.
        upto: Zxid,
    },
    /// Proxy → observer: subscribe to a path with a watch.
    Subscribe {
        /// Path to watch.
        path: String,
        /// Version already cached at the proxy (0 if none).
        have: Zxid,
    },
    /// Observer → proxy: current data for a watched path (subscribe
    /// replies, where there is exactly one path in play).
    Notify {
        /// The write (or current state) for the watched path.
        write: Write,
    },
    /// Observer → proxy: coalesced watch notifications — the current data
    /// for every watched path that changed in one applied batch, as one
    /// frame per proxy instead of one `Notify` per path.
    NotifyBatch {
        /// Current state of each changed watched path, in zxid order.
        writes: Vec<Write>,
    },
    /// Proxy → observer: liveness probe. Under the lease protocol the ping
    /// piggybacks the watcher's lease counters, so frame loss is detected
    /// at healthcheck cadence without any per-path messages: the observer
    /// compares `frames_received` against the frames it has sent long
    /// enough ago to have settled, and repairs on a shortfall.
    ProxyPing {
        /// The watcher's lease epoch (0 = no lease established yet; the
        /// observer then answers liveness only).
        epoch: u64,
        /// Notify frames received from the current observer under this
        /// lease.
        frames_received: u64,
    },
    /// Observer → proxy: liveness response.
    ProxyPong {
        /// Whether the pinger's lease is still valid. `false` (unknown
        /// watcher, fenced epoch) sends the proxy back through a full
        /// re-subscribe; always `true` from legacy-mode observers.
        lease_ok: bool,
    },
    /// Proxy → observer: establish or renew the watch lease covering every
    /// path this watcher has subscribed. Sent every N healthchecks instead
    /// of one `Subscribe { path, have }` per path per check — the
    /// O(paths × healthchecks) storm becomes O(1) per renewal interval.
    LeaseRenew {
        /// The lease epoch granted by the last `LeaseAck` (0 = establish a
        /// fresh lease; the sender has reset `frames_received` to 0 and
        /// follows up with one `Subscribe` per path on the same link, so
        /// in-order delivery registers the watches under the new lease).
        epoch: u64,
        /// Notify frames received under this lease.
        frames_received: u64,
    },
    /// Observer → proxy: lease granted or renewed.
    LeaseAck {
        /// The granted lease epoch. Every grant — establishment, or the
        /// fresh lease a repair creates — uses a new epoch, so counter
        /// state can never be confused across grants.
        epoch: u64,
        /// Frames sent under the lease as of this ack (repair chunks
        /// included; 0 at establishment).
        frames_sent: u64,
        /// Whether `RepairBatch` chunks precede this ack on the link. The
        /// watcher then adopts its own *receipt count* of those chunks as
        /// the new frame counter — NOT `frames_sent` — so a dropped chunk
        /// leaves the counters short and the next ping repairs again.
        /// Loss cannot hide behind the ack.
        repaired: bool,
        /// How many paths the observer watches for this lease holder. A
        /// dropped establishment `Subscribe` would otherwise be invisible
        /// forever (no watch → no frames → no counter mismatch); the
        /// watcher compares this against its subscription count at every
        /// renewal ack and re-establishes on a shortfall. Watches are
        /// rebuilt from the watcher's own set at establishment, so count
        /// equality implies set equality. 0 at establishment (the
        /// Subscribes are still behind the ack on the link) — not
        /// compared there.
        paths: u64,
    },
    /// Observer → proxy: loss-repair chunk — the full current state of the
    /// watcher's paths, re-pushed under a freshly granted lease epoch when
    /// the lease counters disagreed. Distinct from `NotifyBatch` so the
    /// watcher can count repair chunks against the new epoch before the
    /// `LeaseAck` that activates it arrives.
    RepairBatch {
        /// The fresh lease epoch these chunks are counted under.
        epoch: u64,
        /// A chunk of the full current state, in zxid order.
        writes: Vec<Write>,
    },
    /// Observer → proxy: lease unknown or fenced off; the watcher must
    /// re-establish with a full re-subscribe (today's anti-entropy path).
    LeaseNack {
        /// The observer's current lease generation.
        epoch: u64,
    },
}

/// One shared fan-out frame: the coalesced notify payload for one applied
/// batch, built once per watcher *group* and multicast as a single
/// refcount-shared allocation (`Arc<NotifyFrame>`) instead of a per-watcher
/// `Vec<Write>` clone. Deliberately carries no per-receiver data — lease
/// accounting lives in the (observer, watcher) counter pair, not in the
/// frame — which is exactly what makes the payload shareable.
#[derive(Debug, Clone)]
pub struct NotifyFrame {
    /// Current state of each changed watched path, in zxid order.
    pub writes: Vec<Write>,
}

/// Wire size of the small lease/liveness control frames.
pub mod control_wire {
    /// `ProxyPing`: 16-byte probe plus the two lease counters.
    pub const PING: u64 = 32;
    /// `ProxyPong`: probe response plus the lease verdict.
    pub const PONG: u64 = 16;
    /// `LeaseRenew`: epoch + counter + header.
    pub const RENEW: u64 = 32;
    /// `LeaseAck`: epoch + counter + path count + flags + header.
    pub const ACK: u64 = 40;
    /// `LeaseNack`: epoch + header.
    pub const NACK: u64 = 24;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zxid_ordering_epoch_dominates() {
        let a = Zxid {
            epoch: 1,
            counter: 99,
        };
        let b = Zxid {
            epoch: 2,
            counter: 0,
        };
        assert!(a < b);
        assert!(Zxid::ZERO < a);
        assert_eq!(
            a.next(),
            Zxid {
                epoch: 1,
                counter: 100
            }
        );
    }

    #[test]
    fn wire_size_scales_with_payload() {
        let w = Write {
            zxid: Zxid::ZERO,
            path: "a/b".into(),
            data: Bytes::from(vec![0u8; 1000]),
            origin: SimTime::ZERO,
            trace: None,
        };
        assert_eq!(w.wire_size(), 3 + 1000 + 64);
    }

    #[test]
    fn adaptive_batch_size_tracks_loss() {
        // Clean link: amortize headers up to the ceiling.
        assert_eq!(adaptive_batch_size(0.0), MAX_ADAPTIVE_BATCH_WRITES);
        assert_eq!(adaptive_batch_size(0.01), MAX_ADAPTIVE_BATCH_WRITES);
        // The fixed tuning's operating point.
        assert_eq!(adaptive_batch_size(0.125), MAX_BATCH_WRITES);
        // losssweep worst case: small frames, small blast radius.
        assert_eq!(adaptive_batch_size(0.30), 2);
        // Pathological loss still sends one write at a time, never zero.
        assert_eq!(adaptive_batch_size(0.99), 1);
        assert_eq!(adaptive_batch_size(1.0), 1);
    }

    #[test]
    fn batch_frame_pays_one_header() {
        let w = |counter| Write {
            zxid: Zxid { epoch: 1, counter },
            path: "p".into(),
            data: Bytes::from_static(b"xy"),
            origin: SimTime::ZERO,
            trace: None,
        };
        let writes = vec![w(1), w(2), w(3)];
        // Three writes in one frame: 3 × per-write size + one 64-byte
        // header, versus 3 × (size + header) for per-write frames.
        assert_eq!(batch_wire_size(&writes), 3 * (1 + 2 + 64) + 64);
        assert!(batch_traces(&writes).is_empty());
    }
}
