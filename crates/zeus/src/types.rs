//! Core protocol types: transaction ids, writes, and wire messages.

use bytes::Bytes;
use simnet::{NodeId, SimTime, TraceCtx};

/// A ZooKeeper-style transaction id: `(epoch, counter)`, totally ordered.
///
/// The epoch increments on every leader change; the counter increments per
/// committed write within an epoch. The commit log's zxid order is the
/// delivery order guarantee the paper relies on: "an application's instances
/// running on different servers should eventually receive all config
/// updates delivered in the same order" (§3.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Zxid {
    /// Leader epoch.
    pub epoch: u32,
    /// Counter within the epoch.
    pub counter: u64,
}

impl Zxid {
    /// The zero id (before any write).
    pub const ZERO: Zxid = Zxid {
        epoch: 0,
        counter: 0,
    };

    /// Returns the next zxid within the same epoch.
    pub fn next(self) -> Zxid {
        Zxid {
            epoch: self.epoch,
            counter: self.counter + 1,
        }
    }
}

impl std::fmt::Display for Zxid {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}", self.epoch, self.counter)
    }
}

/// A single committed write: set `path` to `data`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Write {
    /// Transaction id assigned by the leader.
    pub zxid: Zxid,
    /// Config path.
    pub path: String,
    /// Config payload (compiled JSON, or PackageVessel metadata).
    pub data: Bytes,
    /// When the originating client issued the write (for end-to-end
    /// propagation measurements).
    pub origin: SimTime,
    /// Causal trace context carried from the originating commit, if the
    /// write is being traced. Clones (retransmits, sync replies, notifies)
    /// keep the context, so every downstream hop stays attributable.
    pub trace: Option<TraceCtx>,
}

impl Write {
    /// Approximate wire size in bytes.
    pub fn wire_size(&self) -> u64 {
        (self.path.len() + self.data.len() + 64) as u64
    }
}

/// Messages of the Zeus protocol.
#[derive(Debug, Clone)]
pub enum ZeusMsg {
    /// Client → leader: propose a write.
    Propose {
        /// Config path to set.
        path: String,
        /// Payload.
        data: Bytes,
        /// Client-side origination time.
        origin: SimTime,
        /// Trace context of the originating commit, if traced.
        trace: Option<TraceCtx>,
    },
    /// Leader → follower: replicate a proposal.
    Append {
        /// The proposed write.
        write: Write,
    },
    /// Follower → leader: proposal persisted.
    AckAppend {
        /// Zxid being acknowledged.
        zxid: Zxid,
    },
    /// Leader → follower: everything up to `zxid` is committed.
    CommitUpTo {
        /// Highest committed zxid.
        zxid: Zxid,
    },
    /// Leader → everyone: liveness heartbeat (also carries commit point).
    Heartbeat {
        /// Leader's epoch.
        epoch: u32,
        /// Highest committed zxid.
        committed: Zxid,
    },
    /// Candidate → ensemble: request votes for a new epoch.
    ElectMe {
        /// Proposed epoch.
        epoch: u32,
        /// Candidate's last logged zxid.
        last_zxid: Zxid,
    },
    /// Voter → candidate: vote granted for `epoch`.
    Vote {
        /// Epoch voted for.
        epoch: u32,
    },
    /// New leader → everyone: epoch established.
    NewLeader {
        /// The new epoch.
        epoch: u32,
        /// The new leader's node.
        leader: NodeId,
    },
    /// Observer → leader: request committed writes after `last_zxid`
    /// (initial sync and crash recovery).
    ObserverSync {
        /// Last zxid the observer has applied.
        last_zxid: Zxid,
    },
    /// Leader → observer: a committed write (push path), in zxid order.
    ObserverUpdate {
        /// The committed write.
        write: Write,
    },
    /// Leader → syncing replica: the committed tail (or snapshot) answering
    /// an [`ZeusMsg::ObserverSync`], as one atomic unit.
    ///
    /// Like ZooKeeper's DIFF/SNAP sync, the reply is all-or-nothing: either
    /// the whole batch arrives or none of it does. Sending it as individual
    /// updates would let the network drop the middle of a catch-up stream,
    /// leaving the replica with a hole *behind* its sync cursor that no
    /// later request would ever cover.
    SyncReply {
        /// Missing committed writes in zxid order.
        writes: Vec<Write>,
        /// The leader's applied head: after absorbing `writes`, the replica
        /// provably holds every committed write up to this point.
        upto: Zxid,
    },
    /// Proxy → observer: subscribe to a path with a watch.
    Subscribe {
        /// Path to watch.
        path: String,
        /// Version already cached at the proxy (0 if none).
        have: Zxid,
    },
    /// Observer → proxy: current data for a watched path.
    Notify {
        /// The write (or current state) for the watched path.
        write: Write,
    },
    /// Proxy → observer: liveness probe.
    ProxyPing,
    /// Observer → proxy: liveness response.
    ProxyPong,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zxid_ordering_epoch_dominates() {
        let a = Zxid {
            epoch: 1,
            counter: 99,
        };
        let b = Zxid {
            epoch: 2,
            counter: 0,
        };
        assert!(a < b);
        assert!(Zxid::ZERO < a);
        assert_eq!(
            a.next(),
            Zxid {
                epoch: 1,
                counter: 100
            }
        );
    }

    #[test]
    fn wire_size_scales_with_payload() {
        let w = Write {
            zxid: Zxid::ZERO,
            path: "a/b".into(),
            data: Bytes::from(vec![0u8; 1000]),
            origin: SimTime::ZERO,
            trace: None,
        };
        assert_eq!(w.wire_size(), 3 + 1000 + 64);
    }
}
