//! # zeus — replicated config store with an observer push tree
//!
//! Zeus is the paper's "forked version of ZooKeeper, with many scalability
//! and performance enhancements" (§3.4). It is the distribution substrate
//! under Configerator: a consensus ensemble spread across regions, a
//! three-level high-fanout push tree (leader → observer → proxy), per-path
//! watches, and an on-disk cache at the leaves so applications keep running
//! when every Configerator component is down.
//!
//! The pieces:
//!
//! * [`types`] — zxids, writes, protocol messages.
//! * [`store`] — the replicated data store and watch table (pure state
//!   machines, unit-testable without a simulator).
//! * [`ensemble`] — leader/follower consensus with quorum commit, leader
//!   election, and catch-up.
//! * [`observer`] — full replicas, one group per cluster, that fan writes
//!   out to proxies holding watches.
//! * [`proxy`] — the per-server proxy with its crash-surviving
//!   [`proxy::DiskCache`] and observer failover.
//! * [`pull`] — an ACMS-style pull-model baseline for the push-vs-pull
//!   comparison of §3.4.
//! * [`deploy`] — wires a complete deployment onto a [`simnet::Sim`].
//!
//! # Examples
//!
//! ```
//! use simnet::prelude::*;
//! use zeus::deploy::{DeployConfig, ZeusDeployment};
//!
//! // 2 regions × 2 clusters × 12 servers.
//! let topo = Topology::symmetric(2, 2, 12);
//! let mut sim = Sim::new(topo, NetConfig::datacenter(), 7);
//! let cfg = DeployConfig {
//!     ensemble_size: 3,
//!     observers_per_cluster: 2,
//!     subscriptions: vec!["app/x.json".to_string()],
//!     ..DeployConfig::default()
//! };
//! let zeus = ZeusDeployment::install(&mut sim, &cfg);
//! sim.run_for(SimDuration::from_secs(1));
//!
//! let now = sim.now();
//! zeus.write_at(&mut sim, now, "app/x.json", &b"{\"v\":1}"[..]);
//! sim.run_for(SimDuration::from_secs(2));
//! assert_eq!(zeus.coverage(&sim, "app/x.json", b"{\"v\":1}"), 1.0);
//! ```

pub mod audit;
pub mod deploy;
pub mod ensemble;
pub mod invariants;
pub mod metrics;
pub mod observer;
pub mod proxy;
pub mod pull;
pub mod store;
pub mod types;

pub use audit::{audit_proxies, repair, CanonicalSet, DriftFinding, DriftKind};
pub use deploy::{DeployConfig, ZeusDeployment};
pub use ensemble::{EnsembleActor, EnsembleConfig};
pub use invariants::{DiskCacheAvailability, MonotonicApplies, NoAckedWriteLost, ProxyConvergence};
pub use observer::ObserverActor;
pub use proxy::{DiskCache, ProxyActor, ProxyCmd};
pub use pull::{PullClientActor, PullMsg, PullServerActor};
pub use store::{ConfigStore, WatchTable};
pub use types::{Write, ZeusMsg, Zxid};
