//! Chaos invariants over a Zeus deployment.
//!
//! Implementations of [`simnet::chaos::Invariant`] that downcast the
//! deployment's actors and assert the distribution pipeline's safety and
//! liveness properties while a [`simnet::chaos::ChaosPlan`] injects
//! crashes, partitions, and message-level faults:
//!
//! * [`NoAckedWriteLost`] — a write committed (acknowledged) at a leader is
//!   never lost by later elections (safety).
//! * [`MonotonicApplies`] — every replica applies writes in strictly
//!   increasing zxid order, and no two replicas disagree on the content of
//!   a zxid (safety).
//! * [`ProxyConvergence`] — after all faults heal, every up proxy converges
//!   to the leader's head value for every tracked path (liveness).
//! * [`DiskCacheAvailability`] — a config cached on a proxy's disk stays
//!   readable, and its version never regresses, throughout the run —
//!   including while the proxy is crashed (§3.4's availability fallback).

use std::collections::BTreeMap;

use bytes::Bytes;
use simnet::chaos::Invariant;
use simnet::{NodeId, Sim, SimTime};

use crate::ensemble::EnsembleActor;
use crate::observer::ObserverActor;
use crate::proxy::ProxyActor;
use crate::types::Zxid;

/// The up ensemble member claiming leadership with the highest epoch, if
/// any. Transiently there may be zero (mid-election) or several (a deposed
/// leader that has not yet heard of the new epoch) claimants; the highest
/// epoch is the authoritative one.
fn current_leader<'a>(sim: &'a Sim, ensemble: &[NodeId]) -> Option<(NodeId, &'a EnsembleActor)> {
    ensemble
        .iter()
        .filter(|n| sim.is_up(**n))
        .filter_map(|n| sim.actor::<EnsembleActor>(*n).map(|a| (*n, a)))
        .filter(|(_, a)| a.is_leader())
        .max_by_key(|(_, a)| a.epoch())
}

/// Invariant (a): once a write is committed at a leader, no later election
/// or fault may lose it — every subsequent leader must hold, for that path,
/// a write at least as new (possibly the same content re-proposed under a
/// newer epoch, possibly a genuinely newer write).
pub struct NoAckedWriteLost {
    ensemble: Vec<NodeId>,
    prefix: String,
    /// Highest acknowledged zxid seen per path.
    acked: BTreeMap<String, Zxid>,
}

impl NoAckedWriteLost {
    /// Tracks paths starting with `prefix` across `ensemble`.
    pub fn new(ensemble: Vec<NodeId>, prefix: impl Into<String>) -> NoAckedWriteLost {
        NoAckedWriteLost {
            ensemble,
            prefix: prefix.into(),
            acked: BTreeMap::new(),
        }
    }

    /// Whether `actor` holds a write for `path` at least as new as `acked`,
    /// either applied in its store or pending in its log (a freshly elected
    /// leader re-proposes the uncommitted suffix before applying it).
    fn holds(actor: &EnsembleActor, path: &str, acked: Zxid) -> bool {
        actor.store().get(path).is_some_and(|w| w.zxid >= acked) || actor.pending_for_path(path)
    }
}

impl Invariant for NoAckedWriteLost {
    fn name(&self) -> &'static str {
        "no-acked-write-lost"
    }

    fn check_always(&mut self, sim: &Sim) -> Result<(), String> {
        let Some((node, leader)) = current_leader(sim, &self.ensemble) else {
            return Ok(()); // Mid-election: nothing newly acknowledged.
        };
        // First verify previously acknowledged writes survived into this
        // leader, then record its current committed state.
        for (path, &acked) in &self.acked {
            if !NoAckedWriteLost::holds(leader, path, acked) {
                return Err(format!(
                    "leader {node} (epoch {}) lost acknowledged write {acked:?} for {path}",
                    leader.epoch()
                ));
            }
        }
        for w in leader.store().entries() {
            if w.path.starts_with(&self.prefix) {
                let slot = self.acked.entry(w.path.clone()).or_insert(Zxid::ZERO);
                *slot = (*slot).max(w.zxid);
            }
        }
        Ok(())
    }

    fn check_final(&mut self, sim: &Sim) -> Result<(), String> {
        // After every fault heals, the whole ensemble must hold every
        // acknowledged write (applied, not merely logged).
        for &node in &self.ensemble {
            if !sim.is_up(node) {
                continue;
            }
            let Some(actor) = sim.actor::<EnsembleActor>(node) else {
                continue;
            };
            for (path, &acked) in &self.acked {
                let have = actor.store().get(path).map(|w| w.zxid);
                if have.is_none_or(|z| z < acked) {
                    return Err(format!(
                        "replica {node} ended with {have:?} for {path}, acknowledged {acked:?}"
                    ));
                }
            }
        }
        Ok(())
    }
}

/// Invariant (b): zxid application order is monotonic at every replica, and
/// all replicas agree on the `(path, data)` bound to each zxid. A divergent
/// commit — two replicas applying different writes under one zxid — is the
/// classic symptom of a broken election/reconciliation protocol.
pub struct MonotonicApplies {
    replicas: Vec<NodeId>,
    /// Canonical content per zxid, accumulated across checkpoints.
    canon: BTreeMap<Zxid, (String, Bytes)>,
}

impl MonotonicApplies {
    /// Checks `replicas` (ensemble members and observers).
    pub fn new(replicas: Vec<NodeId>) -> MonotonicApplies {
        MonotonicApplies {
            replicas,
            canon: BTreeMap::new(),
        }
    }

    fn check_store(
        &mut self,
        node: NodeId,
        store: &crate::store::ConfigStore,
    ) -> Result<(), String> {
        let trace: Vec<Zxid> = store.applied_trace().collect();
        if let Some(w) = trace.windows(2).find(|w| w[0] >= w[1]) {
            return Err(format!(
                "replica {node} applied {:?} after {:?} (non-monotonic)",
                w[1], w[0]
            ));
        }
        for (z, w) in store.log_entries() {
            match self.canon.get(z) {
                None => {
                    self.canon.insert(*z, (w.path.clone(), w.data.clone()));
                }
                Some((path, data)) => {
                    if *path != w.path || *data != w.data {
                        return Err(format!(
                            "replica {node} applied {z:?} as {} but another replica applied it as {path} (divergent commit)",
                            w.path
                        ));
                    }
                }
            }
        }
        Ok(())
    }
}

impl Invariant for MonotonicApplies {
    fn name(&self) -> &'static str {
        "monotonic-applies"
    }

    fn check_always(&mut self, sim: &Sim) -> Result<(), String> {
        for &node in &self.replicas.clone() {
            if let Some(a) = sim.actor::<EnsembleActor>(node) {
                self.check_store(node, a.store())?;
            } else if let Some(o) = sim.actor::<ObserverActor>(node) {
                self.check_store(node, o.store())?;
            }
        }
        Ok(())
    }
}

/// Invariant (c): after every fault heals, every subscribed up proxy
/// converges to the leader's head value for every tracked path. Records the
/// start of the final unbroken streak of converged checkpoints, so the
/// reported time is the actual recovery point, not merely "was converged
/// whenever we first looked".
pub struct ProxyConvergence {
    ensemble: Vec<NodeId>,
    proxies: Vec<NodeId>,
    prefix: String,
    /// When the last fault heals; convergence is only demanded after this,
    /// and the recovery lag is reported relative to it.
    heal: SimTime,
    converged_at: Option<SimTime>,
}

impl ProxyConvergence {
    /// Demands convergence of `proxies` to the leader on `ensemble` for
    /// paths starting with `prefix`, once the last fault has healed at
    /// `heal`.
    pub fn new(
        ensemble: Vec<NodeId>,
        proxies: Vec<NodeId>,
        prefix: impl Into<String>,
        heal: SimTime,
    ) -> ProxyConvergence {
        ProxyConvergence {
            ensemble,
            proxies,
            prefix: prefix.into(),
            heal,
            converged_at: None,
        }
    }

    /// The first checkpoint of the final converged streak, if any.
    pub fn converged_at(&self) -> Option<SimTime> {
        self.converged_at
    }

    fn all_converged(&self, sim: &Sim) -> bool {
        let Some((_, leader)) = current_leader(sim, &self.ensemble) else {
            return false;
        };
        let head: Vec<(&str, &Bytes)> = leader
            .store()
            .entries()
            .filter(|w| w.path.starts_with(&self.prefix))
            .map(|w| (w.path.as_str(), &w.data))
            .collect();
        self.proxies.iter().all(|&p| {
            if !sim.is_up(p) {
                return false;
            }
            let Some(proxy) = sim.actor::<ProxyActor>(p) else {
                return false;
            };
            head.iter()
                .all(|(path, data)| proxy.read(path).is_some_and(|w| w.data == **data))
        })
    }
}

impl Invariant for ProxyConvergence {
    fn name(&self) -> &'static str {
        "proxy-convergence"
    }

    fn check_always(&mut self, sim: &Sim) -> Result<(), String> {
        // Track convergence at every checkpoint, resetting on divergence:
        // what survives to the end is the start of the final converged
        // streak. Divergence during an active fault window is expected and
        // harmless (only the final state is pass/fail); divergence after the
        // last heal pushes the recovery point later, which is exactly what
        // the measurement should show.
        if self.all_converged(sim) {
            self.converged_at.get_or_insert(sim.now());
        } else {
            self.converged_at = None;
        }
        Ok(())
    }

    fn check_final(&mut self, sim: &Sim) -> Result<(), String> {
        // A late checkpoint may have converged since the last check_always.
        if self.converged_at.is_none() && self.all_converged(sim) {
            self.converged_at = Some(sim.now());
        }
        match self.converged_at {
            Some(_) => Ok(()),
            None => {
                let disconnected = self
                    .proxies
                    .iter()
                    .filter(|&&p| {
                        sim.actor::<ProxyActor>(p)
                            .is_none_or(|proxy| proxy.connected_observer().is_none())
                    })
                    .count();
                Err(format!(
                    "proxies did not converge to the leader head within the settle window \
                     ({disconnected}/{} disconnected)",
                    self.proxies.len()
                ))
            }
        }
    }

    fn note(&self) -> Option<String> {
        self.converged_at.map(|t| {
            if t >= self.heal {
                format!(
                    "converged {:.2}s after final heal",
                    (t - self.heal).as_secs_f64()
                )
            } else {
                // The final fault never disturbed convergence (e.g. a
                // redundant observer crashed).
                "converged through the final fault".to_string()
            }
        })
    }
}

/// Invariant (d): once a config is in a proxy's on-disk cache it stays
/// readable for the rest of the run — even while the proxy is crashed — and
/// its version never regresses. This is the paper's fallback path: "if the
/// proxy fails, the application falls back to read from the on-disk cache
/// directly" (§3.4).
pub struct DiskCacheAvailability {
    proxies: Vec<NodeId>,
    prefix: String,
    /// Versions previously observed per (proxy, path).
    seen: BTreeMap<(u32, String), Zxid>,
}

impl DiskCacheAvailability {
    /// Tracks cached paths starting with `prefix` on `proxies`.
    pub fn new(proxies: Vec<NodeId>, prefix: impl Into<String>) -> DiskCacheAvailability {
        DiskCacheAvailability {
            proxies,
            prefix: prefix.into(),
            seen: BTreeMap::new(),
        }
    }
}

impl Invariant for DiskCacheAvailability {
    fn name(&self) -> &'static str {
        "disk-cache-availability"
    }

    fn check_always(&mut self, sim: &Sim) -> Result<(), String> {
        for &p in &self.proxies {
            // Deliberately no `is_up` filter: the disk cache must serve
            // reads while the proxy process is down.
            let Some(proxy) = sim.actor::<ProxyActor>(p) else {
                continue;
            };
            let cache = proxy.disk_cache();
            for ((node, path), &seen) in self.seen.range((p.0, String::new())..) {
                if *node != p.0 {
                    break;
                }
                match cache.get(path) {
                    None => {
                        return Err(format!(
                            "proxy {p} cache entry for {path} disappeared (was {seen:?})"
                        ))
                    }
                    Some(w) if w.zxid < seen => {
                        return Err(format!(
                            "proxy {p} cache for {path} regressed from {seen:?} to {:?}",
                            w.zxid
                        ))
                    }
                    Some(_) => {}
                }
            }
            for w in cache.entries() {
                if w.path.starts_with(&self.prefix) {
                    let slot = self.seen.entry((p.0, w.path.clone())).or_insert(Zxid::ZERO);
                    *slot = (*slot).max(w.zxid);
                }
            }
        }
        Ok(())
    }
}
