//! The pull-model baseline (ACMS-style) for the push-vs-pull comparison.
//!
//! Section 3.4: "The biggest advantage of the pull model is its simplicity
//! ... However, the pull model is less efficient for two reasons. First,
//! some polls return no new data and hence are pure overhead. ... Second,
//! since the server side is stateless, the client has to include in each
//! poll the full list of configs needed by the client, which is not
//! scalable as the number of configs grows."
//!
//! [`PullServerActor`] is a stateless config server; [`PullClientActor`]
//! polls it on a fixed interval, sending its full `(path, version)` list
//! each time. The `repro pushpull` experiment sweeps the poll interval and
//! compares bytes moved and staleness against the Zeus push tree.

use std::collections::BTreeMap;

use bytes::Bytes;
use simnet::ods;
use simnet::{Actor, Ctx, Message, NodeId, SimDuration, SimTime};

use crate::metrics::pull::{EMPTY_POLLS, POLLS, POLL_BYTES, REPLY_BYTES, STALENESS_S};
use crate::types::{Write, Zxid};

const TIMER_POLL: u64 = 1;

/// Messages of the pull protocol.
#[derive(Debug, Clone)]
pub enum PullMsg {
    /// Driver → server: apply a write (no consensus — single server
    /// baseline).
    Set {
        /// Config path.
        path: String,
        /// Payload.
        data: Bytes,
        /// Origination time, for staleness measurements.
        origin: SimTime,
    },
    /// Client → server: the client's full interest list with versions.
    Poll {
        /// `(path, version held)` for every config the client needs.
        interests: Vec<(String, Zxid)>,
    },
    /// Server → client: configs newer than the polled versions.
    PollReply {
        /// Changed configs.
        changed: Vec<Write>,
    },
}

impl PullMsg {
    /// Approximate wire size: polls pay for the full interest list; this is
    /// the per-poll overhead the paper calls out.
    pub fn wire_size(&self) -> u64 {
        match self {
            PullMsg::Set { path, data, .. } => (path.len() + data.len() + 64) as u64,
            PullMsg::Poll { interests } => interests
                .iter()
                .map(|(p, _)| p.len() as u64 + 12)
                .sum::<u64>()
                .max(16),
            PullMsg::PollReply { changed } => {
                changed.iter().map(Write::wire_size).sum::<u64>().max(16)
            }
        }
    }
}

/// The stateless pull-model config server.
#[derive(Default)]
pub struct PullServerActor {
    configs: BTreeMap<String, Write>,
    counter: u64,
}

impl PullServerActor {
    /// Creates an empty server.
    pub fn new() -> PullServerActor {
        PullServerActor::default()
    }

    /// Number of configs stored.
    pub fn len(&self) -> usize {
        self.configs.len()
    }

    /// Returns whether the server stores no configs.
    pub fn is_empty(&self) -> bool {
        self.configs.is_empty()
    }
}

impl Actor for PullServerActor {
    fn kind(&self) -> &'static str {
        "mobile.pull_server"
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_>, from: NodeId, msg: Message) {
        let Ok(msg) = msg.downcast::<PullMsg>() else {
            return;
        };
        match *msg {
            PullMsg::Set { path, data, origin } => {
                self.counter += 1;
                let write = Write {
                    zxid: Zxid {
                        epoch: 1,
                        counter: self.counter,
                    },
                    path: path.clone(),
                    data,
                    origin,
                    trace: None,
                };
                self.configs.insert(path, write);
            }
            PullMsg::Poll { interests } => {
                ctx.metrics().incr(POLLS, 1);
                ctx.ods_counter(ods::tiers::MOBILE, ods::series::POLLS, 1.0);
                let changed: Vec<Write> = interests
                    .iter()
                    .filter_map(|(path, have)| {
                        self.configs.get(path).filter(|w| w.zxid > *have).cloned()
                    })
                    .collect();
                if changed.is_empty() {
                    ctx.metrics().incr(EMPTY_POLLS, 1);
                }
                let reply = PullMsg::PollReply { changed };
                let size = reply.wire_size();
                ctx.metrics().incr(REPLY_BYTES, size);
                ctx.send_value(from, size, reply);
            }
            PullMsg::PollReply { .. } => {}
        }
    }
}

/// A pull-model client polling on a fixed interval (or, with
/// [`PullClientActor::with_poisson`], at Poisson-distributed intervals
/// with the same mean — the arrival process the aggregated
/// [`mobileconfig`-population model](https://en.wikipedia.org/wiki/Poisson_point_process)
/// assumes, so the cohort-vs-individual differential test compares like
/// with like).
pub struct PullClientActor {
    server: NodeId,
    interval: SimDuration,
    cache: BTreeMap<String, Write>,
    paths: Vec<String>,
    poisson: bool,
}

impl PullClientActor {
    /// Creates a client polling `server` every `interval` for `paths`.
    pub fn new(server: NodeId, interval: SimDuration, paths: Vec<String>) -> PullClientActor {
        PullClientActor {
            server,
            interval,
            cache: BTreeMap::new(),
            paths,
            poisson: false,
        }
    }

    /// Switches between Poisson-distributed poll gaps (exponential with
    /// mean `interval`) and the fixed-interval baseline.
    pub fn with_poisson(mut self, poisson: bool) -> PullClientActor {
        self.poisson = poisson;
        self
    }

    /// The delay until this client's next poll.
    fn next_gap(&self, ctx: &mut Ctx<'_>) -> SimDuration {
        if self.poisson {
            // Inverse-CDF exponential draw; clamp the log argument away
            // from 0 so the gap stays finite.
            let u: f64 = rand::Rng::gen_range(ctx.rng(), 1e-12..1.0f64);
            let gap = -(u.ln()) * self.interval.as_micros() as f64;
            SimDuration::from_micros((gap as u64).max(1))
        } else {
            self.interval
        }
    }

    /// Reads a config from the client's cache.
    pub fn read(&self, path: &str) -> Option<&Write> {
        self.cache.get(path)
    }

    fn poll(&self, ctx: &mut Ctx<'_>) {
        let interests: Vec<(String, Zxid)> = self
            .paths
            .iter()
            .map(|p| {
                let have = self.cache.get(p).map(|w| w.zxid).unwrap_or(Zxid::ZERO);
                (p.clone(), have)
            })
            .collect();
        let msg = PullMsg::Poll { interests };
        let size = msg.wire_size();
        ctx.metrics().incr(POLL_BYTES, size);
        ctx.send_value(self.server, size, msg);
    }
}

impl Actor for PullClientActor {
    fn kind(&self) -> &'static str {
        "mobile.pull_client"
    }

    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        // Desynchronize clients so the server is not hit in lockstep.
        let offset = rand::Rng::gen_range(ctx.rng(), 0..=self.interval.as_micros());
        ctx.set_timer(SimDuration::from_micros(offset), TIMER_POLL);
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_>, _from: NodeId, msg: Message) {
        let Ok(msg) = msg.downcast::<PullMsg>() else {
            return;
        };
        if let PullMsg::PollReply { changed } = *msg {
            for w in changed {
                let staleness = (ctx.now() - w.origin).as_secs_f64();
                ctx.metrics().sample(STALENESS_S, staleness);
                ctx.ods_sample(ods::tiers::MOBILE, ods::series::STALENESS_S, staleness);
                self.cache.insert(w.path.clone(), w);
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, tag: u64) {
        if tag == TIMER_POLL {
            self.poll(ctx);
            let gap = self.next_gap(ctx);
            ctx.set_timer(gap, TIMER_POLL);
        }
    }
}
