//! The Configerator proxy: the leaf tier of the distribution tree.
//!
//! "Each server runs a Configerator Proxy process, which randomly picks an
//! observer in the same cluster to connect to. If the observer fails, the
//! proxy connects to another observer. ... It only fetches and caches the
//! configs needed by the applications running on the server. ... The proxy
//! stores the config in an on-disk cache for later reuse. If the proxy
//! fails, the application falls back to read from the on-disk cache
//! directly" (§3.4).
//!
//! The on-disk cache is modeled by [`DiskCache`], which survives proxy
//! crashes in the simulation (a crash stops message processing but does not
//! clear state), so the availability property is directly testable.

use std::collections::{BTreeMap, BTreeSet};

use bytes::Bytes;
use rand::seq::SliceRandom;
use rand::Rng;
use simnet::ods;
use simnet::{Actor, Ctx, Message, NodeId, SimDuration};

use crate::metrics::PROXY_UPDATES;
use crate::metrics::{hops, PROPAGATION_S, PROXY_FAILOVERS, PROXY_FAILOVER_EXHAUSTED};
use crate::types::{Write, ZeusMsg, Zxid};

// Healthcheck timers are tagged with a generation counter so a stale timer
// chain from before a crash cannot race the one armed by `on_recover`.

/// The proxy's persistent on-disk cache: `path → last seen write`.
#[derive(Debug, Clone, Default)]
pub struct DiskCache {
    entries: BTreeMap<String, Write>,
}

impl DiskCache {
    /// Reads a cached config.
    pub fn get(&self, path: &str) -> Option<&Write> {
        self.entries.get(path)
    }

    /// Stores a config if newer than what is cached. Returns whether the
    /// cache changed.
    pub fn put(&mut self, write: Write) -> bool {
        match self.entries.get(&write.path) {
            Some(existing) if existing.zxid >= write.zxid => false,
            _ => {
                self.entries.insert(write.path.clone(), write);
                true
            }
        }
    }

    /// Number of cached configs.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The cached version for `path`, or zero.
    pub fn version(&self, path: &str) -> Zxid {
        self.entries.get(path).map(|w| w.zxid).unwrap_or(Zxid::ZERO)
    }

    /// Iterates over all cached writes (for invariant checking).
    pub fn entries(&self) -> impl Iterator<Item = &Write> {
        self.entries.values()
    }

    /// Fault-seeding hook: flips the cached bytes for `path` while keeping
    /// the zxid. This is the drift class the subscription protocol can
    /// never repair on its own — anti-entropy re-subscribes with the cached
    /// version, the observer sees nothing newer, and the corruption sits
    /// there forever. Only the audit's byte-level fingerprint catches it.
    /// Returns whether an entry existed to corrupt.
    pub fn seed_corruption(&mut self, path: &str, data: Bytes) -> bool {
        match self.entries.get_mut(path) {
            Some(w) => {
                w.data = data;
                true
            }
            None => false,
        }
    }

    /// Fault-seeding hook: drops the entry for `path` entirely (a lost or
    /// truncated cache file). Returns whether an entry existed.
    pub fn seed_missing(&mut self, path: &str) -> bool {
        self.entries.remove(path).is_some()
    }

    /// Fault-seeding hook: force-installs `write` even if older than the
    /// cached entry, bypassing the newest-wins rule of [`DiskCache::put`]
    /// (models a cache rolled back to stale bytes by a bad restore).
    pub fn seed_stale(&mut self, write: Write) {
        self.entries.insert(write.path.clone(), write);
    }
}

/// Local commands posted to a proxy by the application/driver layer.
#[derive(Debug, Clone)]
pub enum ProxyCmd {
    /// Subscribe to a config path on behalf of a local application.
    Subscribe {
        /// The config path.
        path: String,
    },
    /// Discard the cached entry for `path` and re-fetch from scratch.
    ///
    /// The repair verb of the drift audit: a corrupted entry still carries
    /// the *current* zxid, so the regular anti-entropy re-subscribe
    /// (`Subscribe { have: cached }`) gets no reply — the observer only
    /// answers with newer versions. Resync drops the poisoned entry and
    /// subscribes with `have = 0`, forcing a full re-send of canonical
    /// bytes.
    Resync {
        /// The config path to re-fetch.
        path: String,
    },
}

/// The per-server proxy actor.
pub struct ProxyActor {
    cluster_observers: Vec<NodeId>,
    current: Option<NodeId>,
    cache: DiskCache,
    // Ordered so `resubscribe` sends in a stable order — hash-order
    // iteration would break deterministic seeded replay.
    subscriptions: BTreeSet<String>,
    pong_seen: bool,
    /// Base healthcheck period (the interval while the connection is
    /// healthy, and the starting point for backoff).
    healthcheck: SimDuration,
    /// Current healthcheck delay: grows by decorrelated jitter on every
    /// failed check up to `max_backoff`, resets to `healthcheck` on a
    /// successful pong.
    backoff: SimDuration,
    max_backoff: SimDuration,
    timer_gen: u64,
    /// Healthy checks since the last anti-entropy re-subscribe.
    checks_since_resub: u32,
    /// Name under which propagation latency samples are recorded.
    latency_metric: &'static str,
}

impl ProxyActor {
    /// Creates a proxy that will pick among `cluster_observers` and
    /// immediately subscribe to `subscriptions`.
    pub fn new(cluster_observers: Vec<NodeId>, subscriptions: Vec<String>) -> ProxyActor {
        ProxyActor {
            cluster_observers,
            current: None,
            cache: DiskCache::default(),
            subscriptions: subscriptions.into_iter().collect(),
            pong_seen: true,
            healthcheck: SimDuration::from_millis(500),
            backoff: SimDuration::from_millis(500),
            max_backoff: SimDuration::from_secs(8),
            timer_gen: 0,
            checks_since_resub: 0,
            latency_metric: PROPAGATION_S,
        }
    }

    /// Overrides the metric name used for propagation latency samples.
    pub fn with_latency_metric(mut self, name: &'static str) -> ProxyActor {
        self.latency_metric = name;
        self
    }

    /// The on-disk cache — readable even while the proxy is crashed, which
    /// is exactly the paper's availability fallback.
    pub fn disk_cache(&self) -> &DiskCache {
        &self.cache
    }

    /// Mutable cache access for fault seeding (audit experiments corrupt,
    /// drop, or roll back entries through the `seed_*` hooks).
    pub fn disk_cache_mut(&mut self) -> &mut DiskCache {
        &mut self.cache
    }

    /// Reads a config as the application client library would: through the
    /// proxy's cache.
    pub fn read(&self, path: &str) -> Option<&Write> {
        self.cache.get(path)
    }

    /// The observer this proxy is currently connected to.
    pub fn connected_observer(&self) -> Option<NodeId> {
        self.current
    }

    /// The paths this proxy subscribes to (the audit only fingerprints
    /// entries the proxy is supposed to hold).
    pub fn subscriptions(&self) -> impl Iterator<Item = &str> {
        self.subscriptions.iter().map(String::as_str)
    }

    /// The delay before the next healthcheck (grows under repeated
    /// failures). Exposed for tests.
    pub fn current_backoff(&self) -> SimDuration {
        self.backoff
    }

    fn pick_observer(&mut self, ctx: &mut Ctx<'_>) {
        let previous = self.current;
        let choices: Vec<NodeId> = self
            .cluster_observers
            .iter()
            .copied()
            .filter(|o| Some(*o) != previous)
            .collect();
        match choices.choose(ctx.rng()).copied() {
            Some(obs) => self.current = Some(obs),
            None => {
                // No alternative observer exists. Keep (re)trying the only
                // one we have — the backoff timer keeps the retry rate
                // bounded — but make the exhaustion observable instead of
                // silently pretending we failed over.
                ctx.metrics().incr(PROXY_FAILOVER_EXHAUSTED, 1);
                self.current = previous.or_else(|| self.cluster_observers.first().copied());
            }
        }
        self.resubscribe(ctx);
    }

    /// (Re)sends every subscription with the cached versions. The observer
    /// replies only where it has something newer, so this doubles as
    /// proxy-tier anti-entropy: a `Notify` lost to a drop window is
    /// repaired by the next re-subscribe.
    fn resubscribe(&mut self, ctx: &mut Ctx<'_>) {
        let Some(obs) = self.current else { return };
        for path in self.subscriptions.clone() {
            let have = self.cache.version(&path);
            ctx.send_value(
                obs,
                (path.len() + 64) as u64,
                ZeusMsg::Subscribe { path, have },
            );
        }
        self.checks_since_resub = 0;
    }

    /// Lands one notified write in the on-disk cache: latency sample, final
    /// trace hop. Shared by `Notify` and `NotifyBatch` deliveries.
    fn apply_notify(&mut self, ctx: &mut Ctx<'_>, write: Write) {
        let origin = write.origin;
        let trace = write.trace;
        let zxid = write.zxid;
        if self.cache.put(write) {
            let latency = (ctx.now() - origin).as_secs_f64();
            ctx.metrics().sample(self.latency_metric, latency);
            ctx.metrics().incr(PROXY_UPDATES, 1);
            ctx.ods_sample(ods::tiers::PROXY, ods::series::PROPAGATION_S, latency);
            // The final hop: the config is now visible to the application
            // through the on-disk cache. Guarded by `put` (and the
            // per-node dedup), so duplicate notifies never double-count
            // client applies.
            if let Some(t) = trace {
                ctx.trace_hop(
                    t,
                    hops::PROXY_APPLY,
                    vec![
                        ("zxid", zxid.to_string()),
                        ("latency_s", format!("{latency:.6}")),
                    ],
                );
            }
        }
    }
}

impl Actor for ProxyActor {
    fn kind(&self) -> &'static str {
        "zeus.proxy"
    }

    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        self.pick_observer(ctx);
        ctx.set_timer(self.backoff, self.timer_gen);
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_>, _from: NodeId, msg: Message) {
        let msg = match msg.downcast::<ProxyCmd>() {
            Ok(cmd) => {
                match *cmd {
                    ProxyCmd::Subscribe { path } => {
                        self.subscriptions.insert(path.clone());
                        if let Some(obs) = self.current {
                            let have = self.cache.version(&path);
                            ctx.send_value(
                                obs,
                                (path.len() + 64) as u64,
                                ZeusMsg::Subscribe { path, have },
                            );
                        }
                    }
                    ProxyCmd::Resync { path } => {
                        self.cache.seed_missing(&path);
                        self.subscriptions.insert(path.clone());
                        ctx.metrics().incr(crate::metrics::PROXY_RESYNCS, 1);
                        if let Some(obs) = self.current {
                            ctx.send_value(
                                obs,
                                (path.len() + 64) as u64,
                                ZeusMsg::Subscribe {
                                    path,
                                    have: Zxid::ZERO,
                                },
                            );
                        }
                    }
                }
                return;
            }
            Err(original) => original,
        };
        if let Ok(msg) = msg.downcast::<ZeusMsg>() {
            match *msg {
                ZeusMsg::Notify { write } => {
                    self.apply_notify(ctx, write);
                }
                ZeusMsg::NotifyBatch { writes } => {
                    // One coalesced frame per observer apply; each carried
                    // write lands in the cache (and samples latency)
                    // individually.
                    for write in writes {
                        self.apply_notify(ctx, write);
                    }
                }
                ZeusMsg::ProxyPong => {
                    self.pong_seen = true;
                }
                _ => {}
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, tag: u64) {
        if tag != self.timer_gen {
            return;
        }
        if !self.pong_seen {
            // Observer is unresponsive: reconnect to another one and
            // re-subscribe with the cached versions. Back off with
            // decorrelated jitter — `sleep = min(cap, uniform(base, 3 *
            // prev))` — so a cluster-wide observer outage does not turn
            // every proxy into a synchronized retry storm against whatever
            // recovers first: plain doubling keeps the fleet phase-locked,
            // while the jittered draw spreads reconnects across the window.
            ctx.metrics().incr(PROXY_FAILOVERS, 1);
            ctx.ods_counter(ods::tiers::PROXY, ods::series::RECONNECTS, 1.0);
            self.pick_observer(ctx);
            let base = self.healthcheck.as_micros();
            let hi = self
                .backoff
                .as_micros()
                .saturating_mul(3)
                .min(self.max_backoff.as_micros())
                .max(base);
            self.backoff = SimDuration::from_micros(ctx.rng().gen_range(base..=hi));
        } else {
            self.backoff = self.healthcheck;
            self.checks_since_resub += 1;
            // Every healthy check: a `Subscribe { path, have }` is a tiny
            // ask the observer answers only when it holds something newer,
            // so this is the cheapest repair path for a dropped notify —
            // the notify fan-out has no loss-detection signal of its own,
            // and waiting several checks put a multi-second floor under
            // the propagation tail on lossy networks.
            if self.checks_since_resub >= 1 {
                self.resubscribe(ctx);
            }
        }
        self.pong_seen = false;
        if let Some(obs) = self.current {
            ctx.send_value(obs, 16, ZeusMsg::ProxyPing);
        }
        ctx.set_timer(self.backoff, self.timer_gen);
    }

    fn on_recover(&mut self, ctx: &mut Ctx<'_>) {
        // The disk cache survived the crash; reconnect and resync deltas.
        // A timer armed before the crash could still be in flight, so start
        // a new timer generation and let the old chain die.
        self.timer_gen += 1;
        self.backoff = self.healthcheck;
        self.pong_seen = true;
        self.pick_observer(ctx);
        ctx.set_timer(self.backoff, self.timer_gen);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use simnet::SimTime;

    fn w(counter: u64, path: &str, data: &str) -> Write {
        Write {
            zxid: Zxid { epoch: 1, counter },
            path: path.into(),
            data: Bytes::copy_from_slice(data.as_bytes()),
            origin: SimTime::ZERO,
            trace: None,
        }
    }

    #[test]
    fn disk_cache_keeps_newest() {
        let mut c = DiskCache::default();
        assert!(c.put(w(2, "a", "v2")));
        assert!(!c.put(w(1, "a", "v1")), "stale write ignored");
        assert_eq!(&c.get("a").unwrap().data[..], b"v2");
        assert_eq!(
            c.version("a"),
            Zxid {
                epoch: 1,
                counter: 2
            }
        );
        assert_eq!(c.version("missing"), Zxid::ZERO);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn duplicate_put_is_idempotent() {
        let mut c = DiskCache::default();
        assert!(c.put(w(1, "a", "v")));
        assert!(!c.put(w(1, "a", "v")));
    }
}
