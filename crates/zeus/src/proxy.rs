//! The Configerator proxy: the leaf tier of the distribution tree.
//!
//! "Each server runs a Configerator Proxy process, which randomly picks an
//! observer in the same cluster to connect to. If the observer fails, the
//! proxy connects to another observer. ... It only fetches and caches the
//! configs needed by the applications running on the server. ... The proxy
//! stores the config in an on-disk cache for later reuse. If the proxy
//! fails, the application falls back to read from the on-disk cache
//! directly" (§3.4).
//!
//! The on-disk cache is modeled by [`DiskCache`], which survives proxy
//! crashes in the simulation (a crash stops message processing but does not
//! clear state), so the availability property is directly testable.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

use bytes::Bytes;
use rand::seq::SliceRandom;
use rand::Rng;
use simnet::ods;
use simnet::{Actor, Ctx, Message, NodeId, SimDuration};

use crate::metrics::PROXY_UPDATES;
use crate::metrics::{
    hops, LEASE_FALLS_BACK, PROPAGATION_S, PROXY_FAILOVERS, PROXY_FAILOVER_EXHAUSTED,
};
use crate::types::{control_wire, NotifyFrame, Write, ZeusMsg, Zxid};

// Healthcheck timers are tagged with a generation counter so a stale timer
// chain from before a crash cannot race the one armed by `on_recover`.

/// The proxy's persistent on-disk cache: `path → last seen write`.
#[derive(Debug, Clone, Default)]
pub struct DiskCache {
    entries: BTreeMap<String, Write>,
}

impl DiskCache {
    /// Reads a cached config.
    pub fn get(&self, path: &str) -> Option<&Write> {
        self.entries.get(path)
    }

    /// Stores a config if newer than what is cached. Returns whether the
    /// cache changed.
    pub fn put(&mut self, write: Write) -> bool {
        // Steady state is an in-place overwrite of a known path: one map
        // traversal and no key clone (this runs once per notify landing,
        // fleet-wide).
        match self.entries.get_mut(&write.path) {
            Some(existing) if existing.zxid >= write.zxid => false,
            Some(existing) => {
                *existing = write;
                true
            }
            None => {
                self.entries.insert(write.path.clone(), write);
                true
            }
        }
    }

    /// Number of cached configs.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The cached version for `path`, or zero.
    pub fn version(&self, path: &str) -> Zxid {
        self.entries.get(path).map(|w| w.zxid).unwrap_or(Zxid::ZERO)
    }

    /// Iterates over all cached writes (for invariant checking).
    pub fn entries(&self) -> impl Iterator<Item = &Write> {
        self.entries.values()
    }

    /// Fault-seeding hook: flips the cached bytes for `path` while keeping
    /// the zxid. This is the drift class the subscription protocol can
    /// never repair on its own — anti-entropy re-subscribes with the cached
    /// version, the observer sees nothing newer, and the corruption sits
    /// there forever. Only the audit's byte-level fingerprint catches it.
    /// Returns whether an entry existed to corrupt.
    pub fn seed_corruption(&mut self, path: &str, data: Bytes) -> bool {
        match self.entries.get_mut(path) {
            Some(w) => {
                w.data = data;
                true
            }
            None => false,
        }
    }

    /// Fault-seeding hook: drops the entry for `path` entirely (a lost or
    /// truncated cache file). Returns whether an entry existed.
    pub fn seed_missing(&mut self, path: &str) -> bool {
        self.entries.remove(path).is_some()
    }

    /// Fault-seeding hook: force-installs `write` even if older than the
    /// cached entry, bypassing the newest-wins rule of [`DiskCache::put`]
    /// (models a cache rolled back to stale bytes by a bad restore).
    pub fn seed_stale(&mut self, write: Write) {
        self.entries.insert(write.path.clone(), write);
    }
}

/// Local commands posted to a proxy by the application/driver layer.
#[derive(Debug, Clone)]
pub enum ProxyCmd {
    /// Subscribe to a config path on behalf of a local application.
    Subscribe {
        /// The config path.
        path: String,
    },
    /// Discard the cached entry for `path` and re-fetch from scratch.
    ///
    /// The repair verb of the drift audit: a corrupted entry still carries
    /// the *current* zxid, so the regular anti-entropy re-subscribe
    /// (`Subscribe { have: cached }`) gets no reply — the observer only
    /// answers with newer versions. Resync drops the poisoned entry and
    /// subscribes with `have = 0`, forcing a full re-send of canonical
    /// bytes.
    Resync {
        /// The config path to re-fetch.
        path: String,
    },
}

/// The per-server proxy actor.
pub struct ProxyActor {
    cluster_observers: Vec<NodeId>,
    current: Option<NodeId>,
    cache: DiskCache,
    // Ordered so `resubscribe` sends in a stable order — hash-order
    // iteration would break deterministic seeded replay.
    subscriptions: BTreeSet<String>,
    pong_seen: bool,
    /// Base healthcheck period (the interval while the connection is
    /// healthy, and the starting point for backoff).
    healthcheck: SimDuration,
    /// Current healthcheck delay: grows by decorrelated jitter on every
    /// failed check up to `max_backoff`, resets to `healthcheck` on a
    /// successful pong.
    backoff: SimDuration,
    max_backoff: SimDuration,
    timer_gen: u64,
    /// Healthy checks since the last anti-entropy re-subscribe (legacy
    /// mode only; the lease protocol renews instead).
    checks_since_resub: u32,
    /// Name under which propagation latency samples are recorded.
    latency_metric: &'static str,
    /// Pre-resolved `(latency series, proxy-updates counter)` symbols,
    /// cached on first apply so the per-landing hot path skips the metric
    /// name hashes.
    hot_syms: Option<(simnet::intern::Sym, simnet::intern::Sym)>,
    /// Whether to run the watch-lease protocol (default). The legacy
    /// baseline re-sends every `Subscribe { path, have }` on every healthy
    /// healthcheck instead.
    use_leases: bool,
    /// The lease epoch granted by the current observer's `LeaseAck`
    /// (0 = establishment in flight or not started).
    lease_epoch: u64,
    /// Notify frames received from the current observer under this lease.
    /// Compared against the observer's send counter at every ping — the
    /// loss detector that replaces the per-check re-subscribe.
    frames_received: u64,
    /// Healthy checks since the last lease renewal.
    checks_since_renew: u32,
    /// Renew the lease every this many healthy checks (the TTL the
    /// observer grants spans several missed renewals).
    renew_every: u32,
    /// The fresh epoch of an in-flight repair (0 = none): `RepairBatch`
    /// chunks arrive before the `LeaseAck` that activates their epoch, so
    /// they are counted here until the ack adopts the count.
    repair_epoch: u64,
    /// Repair chunks received under `repair_epoch`.
    repair_frames: u64,
}

impl ProxyActor {
    /// Creates a proxy that will pick among `cluster_observers` and
    /// immediately subscribe to `subscriptions`.
    pub fn new(cluster_observers: Vec<NodeId>, subscriptions: Vec<String>) -> ProxyActor {
        ProxyActor {
            cluster_observers,
            current: None,
            cache: DiskCache::default(),
            subscriptions: subscriptions.into_iter().collect(),
            pong_seen: true,
            healthcheck: SimDuration::from_millis(500),
            backoff: SimDuration::from_millis(500),
            max_backoff: SimDuration::from_secs(8),
            timer_gen: 0,
            checks_since_resub: 0,
            latency_metric: PROPAGATION_S,
            hot_syms: None,
            use_leases: true,
            lease_epoch: 0,
            frames_received: 0,
            checks_since_renew: 0,
            renew_every: 4,
            repair_epoch: 0,
            repair_frames: 0,
        }
    }

    /// Overrides the metric name used for propagation latency samples.
    pub fn with_latency_metric(mut self, name: &'static str) -> ProxyActor {
        self.latency_metric = name;
        self
    }

    /// Switches to the pre-lease baseline (see
    /// [`crate::ensemble::EnsembleConfig::legacy_rebroadcast`]): every
    /// subscription re-sent on every healthy healthcheck, 16-byte pings
    /// without lease counters.
    pub fn with_legacy(mut self, legacy: bool) -> ProxyActor {
        self.use_leases = !legacy;
        self
    }

    /// The current lease epoch (0 = none). Exposed for tests.
    pub fn lease_epoch(&self) -> u64 {
        self.lease_epoch
    }

    /// The on-disk cache — readable even while the proxy is crashed, which
    /// is exactly the paper's availability fallback.
    pub fn disk_cache(&self) -> &DiskCache {
        &self.cache
    }

    /// Mutable cache access for fault seeding (audit experiments corrupt,
    /// drop, or roll back entries through the `seed_*` hooks).
    pub fn disk_cache_mut(&mut self) -> &mut DiskCache {
        &mut self.cache
    }

    /// Reads a config as the application client library would: through the
    /// proxy's cache.
    pub fn read(&self, path: &str) -> Option<&Write> {
        self.cache.get(path)
    }

    /// The observer this proxy is currently connected to.
    pub fn connected_observer(&self) -> Option<NodeId> {
        self.current
    }

    /// The paths this proxy subscribes to (the audit only fingerprints
    /// entries the proxy is supposed to hold).
    pub fn subscriptions(&self) -> impl Iterator<Item = &str> {
        self.subscriptions.iter().map(String::as_str)
    }

    /// The delay before the next healthcheck (grows under repeated
    /// failures). Exposed for tests.
    pub fn current_backoff(&self) -> SimDuration {
        self.backoff
    }

    fn pick_observer(&mut self, ctx: &mut Ctx<'_>) {
        let previous = self.current;
        let choices: Vec<NodeId> = self
            .cluster_observers
            .iter()
            .copied()
            .filter(|o| Some(*o) != previous)
            .collect();
        match choices.choose(ctx.rng()).copied() {
            Some(obs) => self.current = Some(obs),
            None => {
                // No alternative observer exists. Keep (re)trying the only
                // one we have — the backoff timer keeps the retry rate
                // bounded — but make the exhaustion observable instead of
                // silently pretending we failed over.
                ctx.metrics().incr(PROXY_FAILOVER_EXHAUSTED, 1);
                self.current = previous.or_else(|| self.cluster_observers.first().copied());
            }
        }
        if self.use_leases {
            self.establish_lease(ctx);
        } else {
            self.resubscribe(ctx);
        }
    }

    /// (Re)establishes the watch lease with the current observer: one
    /// `LeaseRenew { epoch: 0 }` followed by the full `Subscribe` set on
    /// the same link. In-order delivery makes the observer create the
    /// fresh lease (counters zeroed on both ends) *before* registering the
    /// watches, so every notify reply is counted by both sides — the
    /// counter pair starts exactly synchronized, no handshake round trip
    /// needed.
    fn establish_lease(&mut self, ctx: &mut Ctx<'_>) {
        let Some(obs) = self.current else { return };
        self.lease_epoch = 0;
        self.frames_received = 0;
        self.checks_since_renew = 0;
        self.repair_epoch = 0;
        self.repair_frames = 0;
        ctx.send_value(
            obs,
            control_wire::RENEW,
            ZeusMsg::LeaseRenew {
                epoch: 0,
                frames_received: 0,
            },
        );
        self.resubscribe(ctx);
    }

    /// Counts one received notify frame under the lease. Frames arriving
    /// before the lease is acked, or from an observer other than the
    /// current one (in flight across a failover), are applied but not
    /// counted — the sender did not count them against this lease either.
    fn note_frame(&mut self, from: NodeId) {
        if self.use_leases && self.lease_epoch != 0 && Some(from) == self.current {
            self.frames_received += 1;
        }
    }

    /// (Re)sends every subscription with the cached versions. The observer
    /// replies only where it has something newer, so this doubles as
    /// proxy-tier anti-entropy: a `Notify` lost to a drop window is
    /// repaired by the next re-subscribe.
    fn resubscribe(&mut self, ctx: &mut Ctx<'_>) {
        let Some(obs) = self.current else { return };
        for path in self.subscriptions.clone() {
            let have = self.cache.version(&path);
            ctx.send_value(
                obs,
                (path.len() + 64) as u64,
                ZeusMsg::Subscribe { path, have },
            );
        }
        self.checks_since_resub = 0;
    }

    /// Lands one notified write in the on-disk cache: latency sample, final
    /// trace hop. Shared by `Notify` and `NotifyBatch` deliveries.
    fn apply_notify(&mut self, ctx: &mut Ctx<'_>, write: Write) {
        let origin = write.origin;
        let trace = write.trace;
        let zxid = write.zxid;
        if self.cache.put(write) {
            let latency = (ctx.now() - origin).as_secs_f64();
            let (lat_sym, upd_sym) = match self.hot_syms {
                Some(syms) => syms,
                None => {
                    let m = ctx.metrics();
                    let syms = (
                        m.series_sym(self.latency_metric),
                        m.counter_sym(PROXY_UPDATES),
                    );
                    self.hot_syms = Some(syms);
                    syms
                }
            };
            ctx.metrics().sample_sym(lat_sym, latency);
            ctx.metrics().incr_sym(upd_sym, 1);
            ctx.ods_sample(ods::tiers::PROXY, ods::series::PROPAGATION_S, latency);
            // The final hop: the config is now visible to the application
            // through the on-disk cache. Guarded by `put` (and the
            // per-node dedup), so duplicate notifies never double-count
            // client applies.
            if let Some(t) = trace {
                ctx.trace_hop(
                    t,
                    hops::PROXY_APPLY,
                    vec![
                        ("zxid", zxid.to_string()),
                        ("latency_s", format!("{latency:.6}")),
                    ],
                );
            }
        }
    }
}

impl Actor for ProxyActor {
    fn kind(&self) -> &'static str {
        "zeus.proxy"
    }

    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        self.pick_observer(ctx);
        ctx.set_timer(self.backoff, self.timer_gen);
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_>, from: NodeId, msg: Message) {
        let msg = match msg.downcast::<ProxyCmd>() {
            Ok(cmd) => {
                match *cmd {
                    ProxyCmd::Subscribe { path } => {
                        self.subscriptions.insert(path.clone());
                        if let Some(obs) = self.current {
                            let have = self.cache.version(&path);
                            ctx.send_value(
                                obs,
                                (path.len() + 64) as u64,
                                ZeusMsg::Subscribe { path, have },
                            );
                        }
                    }
                    ProxyCmd::Resync { path } => {
                        self.cache.seed_missing(&path);
                        self.subscriptions.insert(path.clone());
                        ctx.metrics().incr(crate::metrics::PROXY_RESYNCS, 1);
                        if let Some(obs) = self.current {
                            ctx.send_value(
                                obs,
                                (path.len() + 64) as u64,
                                ZeusMsg::Subscribe {
                                    path,
                                    have: Zxid::ZERO,
                                },
                            );
                        }
                    }
                }
                return;
            }
            Err(original) => original,
        };
        // Shared multicast frame: the payload is one Arc-shared allocation
        // across every receiver of the fan-out; writes are cloned only
        // here, at the moment they land in this proxy's own cache.
        let msg = match msg.downcast::<Arc<NotifyFrame>>() {
            Ok(frame) => {
                self.note_frame(from);
                for write in &frame.writes {
                    self.apply_notify(ctx, write.clone());
                }
                return;
            }
            Err(original) => original,
        };
        if let Ok(msg) = msg.downcast::<ZeusMsg>() {
            match *msg {
                ZeusMsg::Notify { write } => {
                    self.note_frame(from);
                    self.apply_notify(ctx, write);
                }
                ZeusMsg::NotifyBatch { writes } => {
                    // One coalesced frame per observer apply; each carried
                    // write lands in the cache (and samples latency)
                    // individually.
                    self.note_frame(from);
                    for write in writes {
                        self.apply_notify(ctx, write);
                    }
                }
                ZeusMsg::ProxyPong { lease_ok } => {
                    // Replies from an observer we already failed away from
                    // prove nothing about the current connection.
                    if Some(from) != self.current {
                        return;
                    }
                    self.pong_seen = true;
                    if self.use_leases && !lease_ok && self.lease_epoch != 0 {
                        // Fenced (observer restarted) or unknown: fall back
                        // to the full anti-entropy re-subscribe.
                        ctx.metrics().incr(LEASE_FALLS_BACK, 1);
                        self.establish_lease(ctx);
                    }
                }
                ZeusMsg::RepairBatch { epoch, writes } => {
                    // Loss-repair chunk under a freshly granted epoch (its
                    // activating ack follows on the link). Counted per
                    // epoch so the ack can adopt exactly what arrived.
                    if self.use_leases && Some(from) == self.current {
                        if self.repair_epoch != epoch {
                            self.repair_epoch = epoch;
                            self.repair_frames = 0;
                        }
                        self.repair_frames += 1;
                    }
                    for write in writes {
                        self.apply_notify(ctx, write);
                    }
                }
                ZeusMsg::LeaseAck {
                    epoch,
                    frames_sent: _,
                    repaired,
                    paths,
                } => {
                    if Some(from) != self.current || !self.use_leases {
                        return;
                    }
                    self.pong_seen = true;
                    if repaired {
                        // A repair granted a fresh lease. The counter
                        // restarts at our RECEIPT count of the repair
                        // chunks, not the observer's send count: a dropped
                        // chunk leaves us short, the next ping shows the
                        // shortfall, and the observer repairs again — loss
                        // cannot hide behind the ack.
                        self.lease_epoch = epoch;
                        self.frames_received = if self.repair_epoch == epoch {
                            self.repair_frames
                        } else {
                            0
                        };
                        self.repair_epoch = 0;
                        self.repair_frames = 0;
                    } else if self.lease_epoch == 0 {
                        // Establishment granted; counters are already
                        // zeroed on both ends. `paths` is 0 here (the
                        // Subscribes are still behind this ack) — the
                        // first renewal ack audits the watch set instead.
                        self.lease_epoch = epoch;
                        return;
                    }
                    if paths != self.subscriptions.len() as u64 {
                        // An establishment Subscribe was dropped: the
                        // observer watches fewer paths than we subscribe
                        // to, and no counter can ever show it (unwatched
                        // paths send no frames). Re-establish with the
                        // full set.
                        ctx.metrics().incr(LEASE_FALLS_BACK, 1);
                        self.establish_lease(ctx);
                    }
                }
                ZeusMsg::LeaseNack { .. } => {
                    if Some(from) != self.current || !self.use_leases {
                        return;
                    }
                    self.pong_seen = true;
                    ctx.metrics().incr(LEASE_FALLS_BACK, 1);
                    self.establish_lease(ctx);
                }
                _ => {}
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, tag: u64) {
        if tag != self.timer_gen {
            return;
        }
        if !self.pong_seen {
            // Observer is unresponsive: reconnect to another one and
            // re-subscribe with the cached versions. Back off with
            // decorrelated jitter — `sleep = min(cap, uniform(base, 3 *
            // prev))` — so a cluster-wide observer outage does not turn
            // every proxy into a synchronized retry storm against whatever
            // recovers first: plain doubling keeps the fleet phase-locked,
            // while the jittered draw spreads reconnects across the window.
            ctx.metrics().incr(PROXY_FAILOVERS, 1);
            ctx.ods_counter(ods::tiers::PROXY, ods::series::RECONNECTS, 1.0);
            self.pick_observer(ctx);
            let base = self.healthcheck.as_micros();
            let hi = self
                .backoff
                .as_micros()
                .saturating_mul(3)
                .min(self.max_backoff.as_micros())
                .max(base);
            self.backoff = SimDuration::from_micros(ctx.rng().gen_range(base..=hi));
        } else if self.use_leases {
            self.backoff = self.healthcheck;
            if self.lease_epoch == 0 {
                // Establishment ack lost (or still unanswered): retry at
                // healthcheck cadence. Until the lease is granted the
                // re-subscribe set rides along, so this degrades to exactly
                // the legacy per-check cost — never worse.
                self.establish_lease(ctx);
            } else {
                self.checks_since_renew += 1;
                if self.checks_since_renew >= self.renew_every {
                    self.checks_since_renew = 0;
                    // ONE 32-byte renewal covering every watched path,
                    // replacing one Subscribe per path per check. Loss
                    // detection does not wait for this: every ping carries
                    // the frame counters.
                    if let Some(obs) = self.current {
                        ctx.send_value(
                            obs,
                            control_wire::RENEW,
                            ZeusMsg::LeaseRenew {
                                epoch: self.lease_epoch,
                                frames_received: self.frames_received,
                            },
                        );
                    }
                }
            }
        } else {
            self.backoff = self.healthcheck;
            self.checks_since_resub += 1;
            // Legacy baseline: every healthy check re-sends a `Subscribe
            // { path, have }` per path — a tiny ask the observer answers
            // only when it holds something newer. This is the repair path
            // the lease counters replace.
            if self.checks_since_resub >= 1 {
                self.resubscribe(ctx);
            }
        }
        self.pong_seen = false;
        if let Some(obs) = self.current {
            if self.use_leases {
                // The ping doubles as the loss detector: the observer
                // compares `frames_received` against its settled send
                // counter and repairs any shortfall immediately.
                ctx.send_value(
                    obs,
                    control_wire::PING,
                    ZeusMsg::ProxyPing {
                        epoch: self.lease_epoch,
                        frames_received: self.frames_received,
                    },
                );
            } else {
                ctx.send_value(
                    obs,
                    16,
                    ZeusMsg::ProxyPing {
                        epoch: 0,
                        frames_received: 0,
                    },
                );
            }
        }
        ctx.set_timer(self.backoff, self.timer_gen);
    }

    fn on_recover(&mut self, ctx: &mut Ctx<'_>) {
        // The disk cache survived the crash; reconnect and resync deltas.
        // A timer armed before the crash could still be in flight, so start
        // a new timer generation and let the old chain die.
        self.timer_gen += 1;
        self.backoff = self.healthcheck;
        self.pong_seen = true;
        self.pick_observer(ctx);
        ctx.set_timer(self.backoff, self.timer_gen);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use simnet::SimTime;

    fn w(counter: u64, path: &str, data: &str) -> Write {
        Write {
            zxid: Zxid { epoch: 1, counter },
            path: path.into(),
            data: Bytes::copy_from_slice(data.as_bytes()),
            origin: SimTime::ZERO,
            trace: None,
        }
    }

    #[test]
    fn disk_cache_keeps_newest() {
        let mut c = DiskCache::default();
        assert!(c.put(w(2, "a", "v2")));
        assert!(!c.put(w(1, "a", "v1")), "stale write ignored");
        assert_eq!(&c.get("a").unwrap().data[..], b"v2");
        assert_eq!(
            c.version("a"),
            Zxid {
                epoch: 1,
                counter: 2
            }
        );
        assert_eq!(c.version("missing"), Zxid::ZERO);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn duplicate_put_is_idempotent() {
        let mut c = DiskCache::default();
        assert!(c.put(w(1, "a", "v")));
        assert!(!c.put(w(1, "a", "v")));
    }
}
