//! Centralised metric names for the Zeus tiers.
//!
//! Every `ctx.metrics().incr/sample` call site and every reporting site
//! references these constants, so a recording name and its reader cannot
//! silently typo apart (the failure mode: a counter recorded as
//! `zeus.proxy_failover` and read as `zeus.proxy_failovers` reports an
//! eternal zero instead of an error).

/// End-to-end commit → client-apply latency, sampled at the proxy when a
/// notify actually changes the on-disk cache (Fig. 13's quantity).
pub const PROPAGATION_S: &str = "zeus.propagation_s";
/// Writes committed by the leader after quorum ack.
pub const COMMITS: &str = "zeus.commits";
/// Leader elections completed.
pub const LEADER_ELECTIONS: &str = "zeus.leader_elections";
/// Leaders that stepped down on seeing a higher epoch.
pub const LEADER_STEPDOWNS: &str = "zeus.leader_stepdowns";
/// Proposals dropped because the receiver was not a leader.
pub const DROPPED_PROPOSALS: &str = "zeus.dropped_proposals";
/// Proposals redirected between ensemble members during sync.
pub const SYNC_REDIRECTS: &str = "zeus.sync_redirects";
/// Uncommitted log suffixes truncated on epoch change.
pub const TRUNCATED_UNCOMMITTED: &str = "zeus.truncated_uncommitted";
/// Writes re-proposed by a new leader after election.
pub const REPROPOSED_ON_ELECTION: &str = "zeus.reproposed_on_election";
/// (follower, write) pairs actually retransmitted by the heartbeat pacer:
/// each unit is one pending write re-sent to one specific follower. The
/// ack-aware pacer only counts followers whose cumulative ack misses the
/// write; the legacy blanket re-broadcast counts every follower, so the two
/// modes are directly comparable in `repro losssweep`.
pub const APPEND_RETRANSMITS: &str = "zeus.append_retransmits";
/// Observer-applied committed writes.
pub const OBSERVER_APPLIED: &str = "zeus.observer_applied";
/// Observers that detected a gap and requested a resync.
pub const OBSERVER_GAP_RESYNCS: &str = "zeus.observer_gap_resyncs";
/// Proxy reconnects to a different observer after a failed healthcheck.
pub const PROXY_FAILOVERS: &str = "zeus.proxy_failovers";
/// Proxy failovers that found no alternative observer.
pub const PROXY_FAILOVER_EXHAUSTED: &str = "zeus.proxy_failover_exhausted";
/// Cache-changing notifies applied at proxies.
pub const PROXY_UPDATES: &str = "zeus.proxy_updates";
/// Driver writes that found no reachable leader.
pub const WRITES_UNROUTABLE: &str = "zeus.writes_unroutable";
/// Proxy cache entries dropped and re-fetched from scratch on a
/// [`crate::proxy::ProxyCmd::Resync`] (the audit's repair verb).
pub const PROXY_RESYNCS: &str = "zeus.proxy_resyncs";
/// Watch-lease establishments and renewals processed by observers: one
/// `LeaseRenew` per watcher per renewal interval replaces the old
/// per-path `Subscribe` sent on every healthy healthcheck.
pub const LEASE_RENEWALS: &str = "zeus.lease_renewals";
/// Watchers that fell back to a full anti-entropy re-subscribe after a
/// lease nack, a failed-lease pong, or an observer restart fenced their
/// lease epoch off.
pub const LEASE_FALLS_BACK: &str = "zeus.lease_falls_back";
/// Leases expired by the observer's anti-entropy sweep (the watcher
/// stopped renewing — partitioned, crashed, or failed over elsewhere);
/// the watches are dropped with the lease.
pub const LEASE_EXPIRIES: &str = "zeus.lease_expiries";
/// Frame-loss repairs: the lease counters disagreed at a ping/renewal,
/// so the observer re-pushed the full current state of the watcher's
/// paths (replacing the old per-check re-subscribe as the loss repair).
pub const LEASE_REPAIRS: &str = "zeus.lease_repairs";

/// Registers `# HELP` text for the lease counters so the Prometheus
/// export carries both `# HELP` and `# TYPE` lines for them. Called once
/// at deployment install.
pub fn register_help(m: &mut simnet::stats::Metrics) {
    m.set_help(
        LEASE_RENEWALS,
        "Watch-lease establishments and renewals processed by observers",
    );
    m.set_help(
        LEASE_FALLS_BACK,
        "Watchers that fell back to a full anti-entropy re-subscribe",
    );
    m.set_help(
        LEASE_EXPIRIES,
        "Leases expired by the observer anti-entropy sweep",
    );
    m.set_help(
        LEASE_REPAIRS,
        "Frame-loss repairs triggered by lease counter mismatches",
    );
}

/// Drift-audit sweep results (the `repro audit` fingerprint pass).
pub mod audit {
    /// Proxy cache entries missing a path they subscribe to.
    pub const DRIFT_MISSING: &str = "audit.drift_missing";
    /// Proxy cache entries behind the canonical zxid.
    pub const DRIFT_STALE: &str = "audit.drift_stale";
    /// Proxy cache entries at the canonical zxid with wrong bytes.
    pub const DRIFT_CORRUPT: &str = "audit.drift_corrupt";
    /// Targeted resyncs issued to repair detected drift.
    pub const REPAIRS: &str = "audit.repairs";
}

/// Pull-based distribution (the §4 push-vs-pull comparison).
pub mod pull {
    /// Poll requests issued by pull clients.
    pub const POLLS: &str = "pull.polls";
    /// Polls that returned no change.
    pub const EMPTY_POLLS: &str = "pull.empty_polls";
    /// Bytes sent in poll replies.
    pub const REPLY_BYTES: &str = "pull.reply_bytes";
    /// Bytes sent in poll requests.
    pub const POLL_BYTES: &str = "pull.poll_bytes";
    /// Staleness of configs at poll observation points.
    pub const STALENESS_S: &str = "pull.staleness_s";
}

/// Trace hop and annotation names for the Zeus leg of a commit's journey.
pub mod hops {
    /// Leader accepted a proposal and assigned a zxid.
    pub const LEADER_PROPOSE: &str = "zeus.leader_propose";
    /// Follower persisted an append.
    pub const FOLLOWER_APPEND: &str = "zeus.follower_append";
    /// Leader committed after quorum ack.
    pub const QUORUM_COMMIT: &str = "zeus.quorum_commit";
    /// Observer applied the committed write (push or sync path).
    pub const OBSERVER_APPLY: &str = "zeus.observer_apply";
    /// Proxy applied the write to the on-disk cache (client visibility).
    pub const PROXY_APPLY: &str = "zeus.proxy_apply";
    /// Annotation: heartbeat pacer retransmitted an append.
    pub const RETRANSMIT: &str = "zeus.retransmit";
    /// Annotation: write re-proposed by a newly elected leader.
    pub const REPROPOSE: &str = "zeus.repropose";
}
