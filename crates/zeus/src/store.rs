//! The replicated data store and watch registry (pure state machines).
//!
//! These are the protocol-independent cores: [`ConfigStore`] applies
//! committed writes in zxid order and answers reads; [`WatchTable`] tracks
//! which subscriber watches which path. Both are plain data structures so
//! they can be unit- and property-tested without a simulator, then embedded
//! in observer/proxy actors.

use std::collections::{BTreeMap, BTreeSet, HashMap, VecDeque};

use simnet::NodeId;

use crate::types::{Write, Zxid};

/// The materialized config state: `path → latest write`.
#[derive(Debug, Clone, Default)]
pub struct ConfigStore {
    data: HashMap<String, Write>,
    last_applied: Zxid,
    log: BTreeMap<Zxid, Write>,
    log_cap: usize,
    /// Zxids in the order `apply` accepted them, capped at `log_cap`.
    /// Chaos invariants assert this is strictly increasing at every
    /// replica — the store enforces it locally, but the trace makes an
    /// out-of-order application visible instead of silently swallowed.
    applied_trace: VecDeque<Zxid>,
}

impl ConfigStore {
    /// Creates an empty store retaining up to `log_cap` recent writes for
    /// catch-up responses.
    pub fn new(log_cap: usize) -> ConfigStore {
        ConfigStore {
            log_cap,
            ..ConfigStore::default()
        }
    }

    /// Applies a committed write. Returns `false` (and ignores the write)
    /// if it is not newer than the last applied zxid — replays are no-ops,
    /// which makes catch-up idempotent.
    pub fn apply(&mut self, write: Write) -> bool {
        if write.zxid <= self.last_applied && self.last_applied != Zxid::ZERO {
            return false;
        }
        self.last_applied = write.zxid;
        self.log.insert(write.zxid, write.clone());
        if self.log.len() > self.log_cap {
            let oldest = *self.log.keys().next().expect("nonempty");
            self.log.remove(&oldest);
        }
        self.applied_trace.push_back(write.zxid);
        if self.applied_trace.len() > self.log_cap {
            self.applied_trace.pop_front();
        }
        self.data.insert(write.path.clone(), write);
        true
    }

    /// Absorbs a write from a sync reply, which may sit *behind*
    /// `last_applied` (repairing a hole left by a dropped message). The
    /// per-path newest-wins rule keeps this idempotent and regression-free;
    /// `last_applied` and the application trace are untouched — callers
    /// follow a batch of absorbs with [`ConfigStore::fast_forward`].
    /// Returns whether the path's materialized value changed.
    pub fn absorb(&mut self, write: Write) -> bool {
        self.log.insert(write.zxid, write.clone());
        if self.log.len() > self.log_cap {
            let oldest = *self.log.keys().next().expect("nonempty");
            self.log.remove(&oldest);
        }
        match self.data.get(&write.path) {
            Some(existing) if existing.zxid >= write.zxid => false,
            _ => {
                self.data.insert(write.path.clone(), write);
                true
            }
        }
    }

    /// Advances `last_applied` to `upto` (never backwards) after a sync
    /// reply asserted completeness up to that point.
    pub fn fast_forward(&mut self, upto: Zxid) {
        self.last_applied = self.last_applied.max(upto);
    }

    /// The latest write for `path`, if any.
    pub fn get(&self, path: &str) -> Option<&Write> {
        self.data.get(path)
    }

    /// The last applied zxid.
    pub fn last_applied(&self) -> Zxid {
        self.last_applied
    }

    /// Number of distinct paths stored.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Returns whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Returns the retained writes after `from` in zxid order (for syncing
    /// an observer that reconnects with its last seen zxid, §3.4). Returns
    /// `None` if the tail has been truncated and a full snapshot is needed.
    pub fn writes_after(&self, from: Zxid) -> Option<Vec<Write>> {
        if from < self.log_floor() && from != self.last_applied {
            return None;
        }
        Some(
            self.log
                .range((std::ops::Bound::Excluded(from), std::ops::Bound::Unbounded))
                .map(|(_, w)| w.clone())
                .collect(),
        )
    }

    /// All current writes (full-snapshot sync), in zxid order.
    pub fn snapshot(&self) -> Vec<Write> {
        let mut all: Vec<Write> = self.data.values().cloned().collect();
        all.sort_by_key(|w| w.zxid);
        all
    }

    /// Iterates over the latest write of every path (no cloning).
    pub fn entries(&self) -> impl Iterator<Item = &Write> {
        self.data.values()
    }

    /// Iterates over the retained log in zxid order (no cloning).
    pub fn log_entries(&self) -> impl Iterator<Item = (&Zxid, &Write)> {
        self.log.iter()
    }

    /// The zxids `apply` accepted, in application order (capped).
    pub fn applied_trace(&self) -> impl Iterator<Item = Zxid> + '_ {
        self.applied_trace.iter().copied()
    }

    fn log_floor(&self) -> Zxid {
        self.log.keys().next().copied().unwrap_or(Zxid::ZERO)
    }
}

/// Which subscribers watch which paths.
///
/// Ordered collections, deliberately: watchers are iterated when fanning
/// out notifications, and hash-order iteration would make message order —
/// and therefore whole simulations — vary from process to process,
/// breaking seeded chaos-scenario replay.
#[derive(Debug, Clone, Default)]
pub struct WatchTable {
    by_path: BTreeMap<String, BTreeSet<NodeId>>,
    by_node: BTreeMap<NodeId, BTreeSet<String>>,
}

impl WatchTable {
    /// Creates an empty table.
    pub fn new() -> WatchTable {
        WatchTable::default()
    }

    /// Registers `node` as a watcher of `path`. Re-registering an existing
    /// watch — the common case, since proxies re-subscribe on every health
    /// check — is allocation-free: the key strings are only cloned when
    /// the (path, node) pair is actually new. (`watch` and `drop_node` are
    /// the only mutators and keep the two maps in lockstep, so presence in
    /// `by_path` implies presence in `by_node`.)
    pub fn watch(&mut self, node: NodeId, path: &str) {
        if let Some(set) = self.by_path.get_mut(path) {
            if !set.insert(node) {
                return;
            }
        } else {
            let mut set = BTreeSet::new();
            set.insert(node);
            self.by_path.insert(path.to_string(), set);
        }
        self.by_node
            .entry(node)
            .or_default()
            .insert(path.to_string());
    }

    /// Removes all watches held by `node` (e.g. when its connection dies).
    pub fn drop_node(&mut self, node: NodeId) {
        if let Some(paths) = self.by_node.remove(&node) {
            for p in paths {
                if let Some(set) = self.by_path.get_mut(&p) {
                    set.remove(&node);
                    if set.is_empty() {
                        self.by_path.remove(&p);
                    }
                }
            }
        }
    }

    /// The paths watched by `node` (for lease repair: re-pushing the full
    /// current state of one watcher's subscriptions).
    pub fn paths_of(&self, node: NodeId) -> impl Iterator<Item = &str> {
        self.by_node
            .get(&node)
            .into_iter()
            .flat_map(|s| s.iter().map(String::as_str))
    }

    /// The watchers of `path`.
    pub fn watchers(&self, path: &str) -> impl Iterator<Item = NodeId> + '_ {
        self.by_path
            .get(path)
            .into_iter()
            .flat_map(|s| s.iter().copied())
    }

    /// Number of (node, path) watch registrations.
    pub fn len(&self) -> usize {
        self.by_node.values().map(BTreeSet::len).sum()
    }

    /// Returns whether no watches are registered.
    pub fn is_empty(&self) -> bool {
        self.by_node.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use simnet::SimTime;

    fn w(epoch: u32, counter: u64, path: &str, data: &str) -> Write {
        Write {
            zxid: Zxid { epoch, counter },
            path: path.into(),
            data: Bytes::copy_from_slice(data.as_bytes()),
            origin: SimTime::ZERO,
            trace: None,
        }
    }

    #[test]
    fn apply_in_order_and_read_back() {
        let mut s = ConfigStore::new(100);
        assert!(s.apply(w(1, 1, "a", "1")));
        assert!(s.apply(w(1, 2, "b", "2")));
        assert!(s.apply(w(1, 3, "a", "3")));
        assert_eq!(&s.get("a").unwrap().data[..], b"3");
        assert_eq!(&s.get("b").unwrap().data[..], b"2");
        assert_eq!(
            s.last_applied(),
            Zxid {
                epoch: 1,
                counter: 3
            }
        );
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn stale_replays_ignored() {
        let mut s = ConfigStore::new(100);
        s.apply(w(1, 5, "a", "new"));
        assert!(!s.apply(w(1, 3, "a", "old")));
        assert_eq!(&s.get("a").unwrap().data[..], b"new");
    }

    #[test]
    fn absorb_repairs_hole_behind_last_applied() {
        let mut s = ConfigStore::new(100);
        s.apply(w(1, 1, "a", "1"));
        // A dropped message left a hole at (1,2); apply moved past it.
        s.apply(w(1, 3, "c", "3"));
        assert!(s.get("b").is_none());
        // apply() refuses the old zxid, absorb() repairs it.
        assert!(!s.apply(w(1, 2, "b", "2")));
        assert!(s.absorb(w(1, 2, "b", "2")));
        assert_eq!(&s.get("b").unwrap().data[..], b"2");
        // Newest-wins: absorbing an older write for a fresher path is a
        // no-op on the materialized value.
        assert!(!s.absorb(w(1, 2, "c", "stale")));
        assert_eq!(&s.get("c").unwrap().data[..], b"3");
        // absorb never moved last_applied; fast_forward never regresses it.
        assert_eq!(
            s.last_applied(),
            Zxid {
                epoch: 1,
                counter: 3
            }
        );
        s.fast_forward(Zxid {
            epoch: 1,
            counter: 4,
        });
        assert_eq!(
            s.last_applied(),
            Zxid {
                epoch: 1,
                counter: 4
            }
        );
        s.fast_forward(Zxid {
            epoch: 1,
            counter: 2,
        });
        assert_eq!(
            s.last_applied(),
            Zxid {
                epoch: 1,
                counter: 4
            }
        );
    }

    #[test]
    fn writes_after_returns_tail() {
        let mut s = ConfigStore::new(100);
        for i in 1..=5 {
            s.apply(w(1, i, &format!("p{i}"), "x"));
        }
        let tail = s
            .writes_after(Zxid {
                epoch: 1,
                counter: 3,
            })
            .unwrap();
        assert_eq!(tail.len(), 2);
        assert_eq!(tail[0].zxid.counter, 4);
        assert_eq!(tail[1].zxid.counter, 5);
        // Fully caught up → empty tail.
        assert!(s
            .writes_after(Zxid {
                epoch: 1,
                counter: 5
            })
            .unwrap()
            .is_empty());
    }

    #[test]
    fn truncated_tail_forces_snapshot() {
        let mut s = ConfigStore::new(3);
        for i in 1..=10 {
            s.apply(w(1, i, &format!("p{i}"), "x"));
        }
        // Asking for history older than the retained log fails over to a
        // snapshot.
        assert!(s
            .writes_after(Zxid {
                epoch: 1,
                counter: 2
            })
            .is_none());
        let snap = s.snapshot();
        assert_eq!(snap.len(), 10);
        assert!(snap.windows(2).all(|p| p[0].zxid < p[1].zxid));
    }

    #[test]
    fn watch_table_round_trip() {
        let mut t = WatchTable::new();
        t.watch(NodeId(1), "a");
        t.watch(NodeId(2), "a");
        t.watch(NodeId(1), "b");
        let mut watchers: Vec<u32> = t.watchers("a").map(|n| n.0).collect();
        watchers.sort();
        assert_eq!(watchers, vec![1, 2]);
        assert_eq!(t.len(), 3);
        t.drop_node(NodeId(1));
        assert_eq!(t.watchers("b").count(), 0);
        assert_eq!(t.watchers("a").count(), 1);
    }

    #[test]
    fn duplicate_watch_is_idempotent() {
        let mut t = WatchTable::new();
        t.watch(NodeId(1), "a");
        t.watch(NodeId(1), "a");
        assert_eq!(t.len(), 1);
    }
}
