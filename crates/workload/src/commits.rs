//! The commit process (Figs 11–13).
//!
//! Two generators live here:
//!
//! * [`CommitProcess`] — an hourly-rate model of commit traffic with the
//!   paper's weekly/diurnal patterns, automation floor, and 10-month
//!   growth (Figs 11 and 12), including the www/fbcode comparison series.
//! * [`CommitReplay`] — a synthetic git-commit stream that "follow\[s\] the statistical
//!   statistical distribution of past real git commits" (§6.3), used to
//!   grow a gitstore repository to a target size for the Fig 13
//!   commit-throughput measurement.

use bytes::Bytes;
use gitstore::repo::Change;
use rand::rngs::SmallRng;
use rand::Rng;
use rand::SeedableRng;

use crate::paper;

/// Which repository's traffic shape to model (Fig 11 compares three).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RepoKind {
    /// Configerator (high automation floor: weekend ≈ 33% of weekday).
    Configerator,
    /// The frontend code repository (weekend ≈ 10%).
    Www,
    /// The backend code repository (weekend ≈ 7%).
    Fbcode,
}

impl RepoKind {
    /// The §6.3 weekend-to-weekday ratio.
    pub fn weekend_ratio(self) -> f64 {
        match self {
            RepoKind::Configerator => paper::WEEKEND_RATIO_CONFIGERATOR,
            RepoKind::Www => paper::WEEKEND_RATIO_WWW,
            RepoKind::Fbcode => paper::WEEKEND_RATIO_FBCODE,
        }
    }
}

/// Parameters of the commit-rate model.
#[derive(Debug, Clone)]
pub struct CommitProcess {
    /// Peak weekday commits/hour at day 0.
    pub base_hourly_peak: f64,
    /// Multiplicative growth over `days` (1.8 = the paper's +180% per 10
    /// months... precisely, ×1.8 at day 300).
    pub growth_over_300d: f64,
    /// Fraction of commits from automation (flat through nights/weekends).
    pub automation_fraction: f64,
    /// Which repository's weekly shape to use.
    pub repo: RepoKind,
}

impl Default for CommitProcess {
    fn default() -> CommitProcess {
        CommitProcess {
            base_hourly_peak: 120.0,
            growth_over_300d: paper::TEN_MONTH_GROWTH,
            automation_fraction: paper::AUTOMATED_COMMIT_FRACTION,
            repo: RepoKind::Configerator,
        }
    }
}

impl CommitProcess {
    /// Expected commits during hour `h` of day `d` (d0 = a Monday).
    ///
    /// Human traffic follows a diurnal bell (peak 10:00–18:00) and drops on
    /// weekends; automation contributes a flat floor. The floor `A` and the
    /// residual weekend human mass `h_w` are solved in closed form from the
    /// two §6.3 constraints — automation share `a` of weekly commits and
    /// weekend/weekday daily ratio `r`:
    ///
    /// ```text
    /// 7·A·(1-a) = a·(5·H + 2·h_w)        (automation share)
    /// h_w + A   = r·(H + A)              (weekend ratio)
    /// ⇒ A = a·H·(5+2r) / (7(1-a) + 2a(1-r)),  h_w = r·H − (1−r)·A
    /// ```
    pub fn rate(&self, day: u32, hour: u32) -> f64 {
        let growth = self.growth_over_300d.powf(day as f64 / 300.0);
        let weekend = matches!(day % 7, 5 | 6);
        let s: f64 = (0..24).map(diurnal_shape).sum();
        let peak = self.base_hourly_peak * growth;
        let h_daily = peak * s;
        let a = self.automation_fraction_for_repo();
        let r = self.repo.weekend_ratio();
        let auto_daily = a * h_daily * (5.0 + 2.0 * r) / (7.0 * (1.0 - a) + 2.0 * a * (1.0 - r));
        let weekend_frac = (r - (1.0 - r) * auto_daily / h_daily).max(0.0);
        let human = if weekend {
            weekend_frac * peak * diurnal_shape(hour)
        } else {
            peak * diurnal_shape(hour)
        };
        human + auto_daily / 24.0
    }

    fn automation_fraction_for_repo(&self) -> f64 {
        match self.repo {
            RepoKind::Configerator => self.automation_fraction,
            // Code repos have little automated committing.
            RepoKind::Www => 0.05,
            RepoKind::Fbcode => 0.03,
        }
    }

    /// A sampled hourly commit-count series of `days` days (Fig 12 uses 7).
    pub fn hourly_series(&self, days: u32, seed: u64) -> Vec<u64> {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut out = Vec::with_capacity((days * 24) as usize);
        for d in 0..days {
            for h in 0..24 {
                out.push(poisson(&mut rng, self.rate(d, h)));
            }
        }
        out
    }

    /// A daily commit-count series of `days` days (Fig 11 uses ~300).
    pub fn daily_series(&self, days: u32, seed: u64) -> Vec<u64> {
        let hourly = self.hourly_series(days, seed);
        hourly.chunks(24).map(|day| day.iter().sum()).collect()
    }

    /// The day-0 diurnal shape as 24 hourly factors normalized to mean 1.
    /// Aggregated client populations scale their mean poll rate by these
    /// so mobile poll traffic follows the same curve as commit traffic
    /// (devices and committers share a daylight cycle), without sampling
    /// the Poisson commit process itself.
    pub fn diurnal_factors(&self) -> [f64; 24] {
        let mut f = [0.0f64; 24];
        for (h, slot) in f.iter_mut().enumerate() {
            *slot = self.rate(0, h as u32);
        }
        let mean = f.iter().sum::<f64>() / 24.0;
        if mean > 0.0 {
            for slot in &mut f {
                *slot /= mean;
            }
        }
        f
    }
}

fn diurnal_shape(hour: u32) -> f64 {
    // Bell centred at 14:00 with most mass in 10:00–18:00.
    let x = (hour as f64 - 14.0) / 4.0;
    (-0.5 * x * x).exp()
}

/// Poisson sampler (Knuth for small λ, normal approximation for large).
pub fn poisson(rng: &mut SmallRng, lambda: f64) -> u64 {
    if lambda <= 0.0 {
        return 0;
    }
    if lambda > 50.0 {
        let g: f64 = {
            // Box-Muller.
            let u1: f64 = rng.gen::<f64>().max(1e-12);
            let u2: f64 = rng.gen();
            (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
        };
        return (lambda + lambda.sqrt() * g).round().max(0.0) as u64;
    }
    let l = (-lambda).exp();
    let mut k = 0u64;
    let mut p = 1.0;
    loop {
        p *= rng.gen::<f64>();
        if p <= l {
            return k;
        }
        k += 1;
    }
}

/// A synthetic git-commit stream for growing a repository (Fig 13's
/// replay).
pub struct CommitReplay {
    rng: SmallRng,
    next_file: u64,
    existing: Vec<String>,
    /// Probability a commit creates a new file (the repository grows).
    pub create_fraction: f64,
    /// Files touched per commit: 1 + geometric tail.
    pub extra_file_prob: f64,
}

impl CommitReplay {
    /// Creates a replay stream.
    pub fn new(seed: u64) -> CommitReplay {
        CommitReplay {
            rng: SmallRng::seed_from_u64(seed),
            next_file: 0,
            existing: Vec::new(),
            create_fraction: 0.5,
            extra_file_prob: 0.3,
        }
    }

    /// Number of distinct files created so far.
    pub fn files_created(&self) -> usize {
        self.existing.len()
    }

    /// Produces the change set of the next commit. Paths mimic the
    /// partitioned namespace (`team/subsystem/config_N`).
    pub fn next_commit(&mut self) -> Vec<Change> {
        let mut changes = Vec::new();
        let mut files = 1;
        while self.rng.gen::<f64>() < self.extra_file_prob && files < 8 {
            files += 1;
        }
        for _ in 0..files {
            let create = self.existing.is_empty() || self.rng.gen::<f64>() < self.create_fraction;
            let path = if create {
                let team = self.next_file % 40;
                let subsystem = (self.next_file / 40) % 25;
                let path = format!("team{team}/sub{subsystem}/config_{}.json", self.next_file);
                self.next_file += 1;
                self.existing.push(path.clone());
                path
            } else {
                let idx = self.rng.gen_range(0..self.existing.len());
                self.existing[idx].clone()
            };
            // Typical compiled-config payload around 1 KB (the paper's
            // P50), varied content so blobs do not dedupe.
            let salt: u64 = self.rng.gen();
            let body = format!(
                "{{\"cfg\":\"{path}\",\"salt\":{salt},\"pad\":\"{}\"}}",
                "x".repeat(900)
            );
            changes.push(Change::put(path, Bytes::from(body)));
        }
        changes
    }

    /// Grows `repo` until it tracks `target_files` files. Returns the
    /// number of commits made.
    pub fn grow_repo(&mut self, repo: &mut gitstore::repo::Repository, target_files: usize) -> u64 {
        // Bulk-create in large commits for speed, preserving path shape.
        let mut commits = 0;
        while repo.file_count() < target_files {
            let batch = (target_files - repo.file_count()).min(2000);
            let mut changes = Vec::with_capacity(batch);
            for _ in 0..batch {
                let team = self.next_file % 40;
                let subsystem = (self.next_file / 40) % 25;
                let path = format!("team{team}/sub{subsystem}/config_{}.json", self.next_file);
                self.next_file += 1;
                self.existing.push(path.clone());
                changes.push(Change::put(path, Bytes::from(vec![b'x'; 64])));
            }
            repo.commit("replay", "grow", commits, changes)
                .expect("grow commit");
            commits += 1;
        }
        commits
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weekend_ratios_order_as_in_fig11() {
        let series = |repo| {
            CommitProcess {
                repo,
                ..CommitProcess::default()
            }
            .daily_series(28, 1)
        };
        let ratio = |s: &[u64]| {
            // d0 is a Monday; days 5,6 of each week are the weekend.
            let weekend: u64 = s
                .iter()
                .enumerate()
                .filter(|(i, _)| matches!(i % 7, 5 | 6))
                .map(|(_, v)| v)
                .sum();
            let weekday: u64 = s
                .iter()
                .enumerate()
                .filter(|(i, _)| !matches!(i % 7, 5 | 6))
                .map(|(_, v)| v)
                .sum();
            (weekend as f64 / 2.0) / (weekday as f64 / 5.0)
        };
        let cfg = ratio(&series(RepoKind::Configerator));
        let www = ratio(&series(RepoKind::Www));
        let fb = ratio(&series(RepoKind::Fbcode));
        assert!((cfg - 0.33).abs() < 0.08, "configerator ratio {cfg:.2}");
        assert!(www < cfg, "www {www:.2} below configerator {cfg:.2}");
        assert!(fb <= www + 0.02, "fbcode {fb:.2} at or below www {www:.2}");
    }

    #[test]
    fn traffic_grows_180_percent_over_300_days() {
        let p = CommitProcess::default();
        // Compare the same weekday (day 0 and day 294 are both Mondays).
        let early = p.rate(0, 14);
        let late = p.rate(294, 14);
        let expected = 1.8f64.powf(294.0 / 300.0);
        assert!((late / early - expected).abs() < 0.01, "{}", late / early);
    }

    #[test]
    fn diurnal_peak_in_working_hours() {
        let p = CommitProcess::default();
        assert!(p.rate(0, 14) > p.rate(0, 4) * 3.0, "working hours peak");
        // Nights never drop below the automation floor (a steady fraction
        // of the daily peak, not zero as in a purely human process).
        assert!(p.rate(0, 4) > p.rate(0, 14) * 0.12, "automation floor");
    }

    #[test]
    fn poisson_mean_is_close() {
        let mut rng = SmallRng::seed_from_u64(1);
        for lambda in [0.5, 5.0, 80.0] {
            let n = 3000;
            let mean: f64 = (0..n)
                .map(|_| poisson(&mut rng, lambda) as f64)
                .sum::<f64>()
                / n as f64;
            assert!(
                (mean - lambda).abs() < lambda.max(1.0) * 0.12,
                "λ={lambda} mean={mean}"
            );
        }
        assert_eq!(poisson(&mut rng, 0.0), 0);
    }

    #[test]
    fn replay_commits_mix_creates_and_edits() {
        let mut r = CommitReplay::new(3);
        let mut edits = 0;
        let mut creates = 0;
        let mut seen = std::collections::HashSet::new();
        for _ in 0..500 {
            for c in r.next_commit() {
                if seen.insert(c.path().to_string()) {
                    creates += 1;
                } else {
                    edits += 1;
                }
            }
        }
        assert!(
            creates > 100 && edits > 100,
            "creates={creates} edits={edits}"
        );
    }

    #[test]
    fn grow_repo_reaches_target() {
        let mut repo = gitstore::repo::Repository::new();
        let mut r = CommitReplay::new(4);
        r.grow_repo(&mut repo, 5000);
        assert!(repo.file_count() >= 5000);
    }
}
