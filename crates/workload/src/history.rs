//! Generative model of the config repository's history.
//!
//! Produces a synthetic population of configs (creation day, kind, size,
//! update events, authorship) whose marginal distributions are calibrated
//! to §6.1–§6.2 of the paper. The analysis module then *measures* the
//! generated history with the same bucketing the paper uses, closing the
//! loop: generator → measurements → paper-vs-measured tables.

use rand::rngs::SmallRng;
use rand::Rng;
use rand::SeedableRng;

use crate::paper;

/// Which population a config belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConfigKind {
    /// Compiled JSON produced by the Configerator compiler.
    Compiled,
    /// Raw config checked in directly (mostly automation-owned).
    Raw,
    /// Config source code (`.cconf`/`.cinc`), for the Table 2/3 source
    /// columns.
    Source,
}

/// One update event.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UpdateRecord {
    /// Day of the update (fractional).
    pub day: f64,
    /// Line changes in the paper's diff convention.
    pub line_changes: u32,
    /// Whether an automation tool made the update.
    pub automated: bool,
}

/// One config's lifetime record.
#[derive(Debug, Clone)]
pub struct ConfigRecord {
    /// Population.
    pub kind: ConfigKind,
    /// Creation day (fractional, 0 = repository creation).
    pub created_day: f64,
    /// Current size in bytes.
    pub size_bytes: u64,
    /// Updates after creation, in day order.
    pub updates: Vec<UpdateRecord>,
    /// Distinct co-authors over the lifetime.
    pub coauthors: u32,
}

impl ConfigRecord {
    /// Total writes including the creating one (Table 1's convention).
    pub fn write_count(&self) -> u64 {
        1 + self.updates.len() as u64
    }

    /// Day of the last modification (creation if never updated).
    pub fn last_modified_day(&self) -> f64 {
        self.updates
            .last()
            .map(|u| u.day)
            .unwrap_or(self.created_day)
    }
}

/// Generator parameters.
#[derive(Debug, Clone)]
pub struct HistoryParams {
    /// Total configs to generate (compiled + raw; sources are derived).
    pub total_configs: usize,
    /// Repository age in days (Fig 7 spans ~1400).
    pub horizon_days: f64,
    /// RNG seed.
    pub seed: u64,
    /// Fraction of stored configs that are compiled (paper: 0.75).
    pub compiled_fraction: f64,
    /// Day the Gatekeeper migration lands (a visible step in Fig 7).
    pub gatekeeper_migration_day: f64,
    /// Fraction of configs arriving in the migration batch.
    pub migration_batch_fraction: f64,
}

impl Default for HistoryParams {
    fn default() -> HistoryParams {
        HistoryParams {
            total_configs: 50_000,
            horizon_days: 1400.0,
            seed: 2015,
            compiled_fraction: paper::COMPILED_FRACTION,
            gatekeeper_migration_day: 560.0,
            migration_batch_fraction: 0.08,
        }
    }
}

/// A generated repository history.
#[derive(Debug, Clone)]
pub struct History {
    /// All config records.
    pub configs: Vec<ConfigRecord>,
    /// The observation horizon (today), in days.
    pub horizon: f64,
}

impl History {
    /// Configs of one kind.
    pub fn of_kind(&self, kind: ConfigKind) -> impl Iterator<Item = &ConfigRecord> {
        self.configs.iter().filter(move |c| c.kind == kind)
    }
}

/// Generates a history according to `params`.
pub fn generate(params: &HistoryParams) -> History {
    let mut rng = SmallRng::seed_from_u64(params.seed);
    let mut configs = Vec::with_capacity(params.total_configs * 5 / 4);
    let n_migration = (params.total_configs as f64 * params.migration_batch_fraction) as usize;
    let n_organic = params.total_configs - n_migration;
    for i in 0..params.total_configs {
        let kind = if rng.gen::<f64>() < params.compiled_fraction {
            ConfigKind::Compiled
        } else {
            ConfigKind::Raw
        };
        let created_day = if i < n_organic {
            sample_creation_day(&mut rng, params.horizon_days)
        } else {
            // The Gatekeeper-migration batch lands in a burst.
            params.gatekeeper_migration_day + rng.gen::<f64>() * 30.0
        };
        let record = generate_config(&mut rng, kind, created_day, params.horizon_days);
        // Long-dormant configs tend to be cleaned up; without this pruning
        // the untouched->forever tail is far heavier than Fig 9's (the
        // paper's CDF reaches 95% by 700 days).
        let idle = params.horizon_days - record.last_modified_day();
        if idle > 650.0 && rng.gen::<f64>() < 0.75 {
            continue;
        }
        configs.push(record);
    }
    // Source files: roughly one per 1.6 compiled configs (compiled configs
    // change 60% more often than sources because one source can emit
    // several configs, §6.1).
    let n_compiled = configs
        .iter()
        .filter(|c| c.kind == ConfigKind::Compiled)
        .count();
    let n_sources = (n_compiled as f64 / 1.6) as usize;
    for _ in 0..n_sources {
        let created_day = sample_creation_day(&mut rng, params.horizon_days);
        configs.push(generate_config(
            &mut rng,
            ConfigKind::Source,
            created_day,
            params.horizon_days,
        ));
    }
    History {
        configs,
        horizon: params.horizon_days,
    }
}

/// Creation-time density grows with the repository (Fig 7's accelerating
/// growth): density ∝ exp(k · t/T) with k ≈ 1.6, sampled by inversion.
/// Growth exponent of config-creation activity (Fig 7's acceleration).
const GROWTH_K: f64 = 2.3;

fn sample_creation_day(rng: &mut SmallRng, horizon: f64) -> f64 {
    let k = GROWTH_K;
    let u: f64 = rng.gen();
    // CDF(t) = (e^{k t/T} - 1) / (e^k - 1)  →  t = T/k · ln(1 + u(e^k -1)).
    horizon / k * (1.0 + u * (k.exp() - 1.0)).ln()
}

fn generate_config(
    rng: &mut SmallRng,
    kind: ConfigKind,
    created_day: f64,
    horizon: f64,
) -> ConfigRecord {
    // Per-kind tail caps calibrate the bucket means to §6.3's averages
    // (raw 44 / compiled 16 / source 10 lifetime updates): the heavy tail
    // of raw configs is automation rewriting the same files continuously.
    let mut ranges = paper::COUNT_BUCKET_RANGES;
    ranges[7] = match kind {
        ConfigKind::Raw => (1001, 14_500),
        ConfigKind::Compiled => (1001, 5_000),
        ConfigKind::Source => (1001, 3_000),
    };
    // Dormancy pruning (see `generate`) removes lightly-updated old
    // configs preferentially; inverse-weight the light buckets so the
    // *surviving* population matches the paper's Table 1 marginals.
    let base = match kind {
        ConfigKind::Compiled => &paper::T1_COMPILED,
        ConfigKind::Raw => &paper::T1_RAW,
        // Sources update a bit less than compiled (§6.1); reuse the
        // compiled mixture, thinned.
        ConfigKind::Source => &paper::T1_COMPILED,
    };
    let mut weights = *base;
    weights[0] *= match kind {
        ConfigKind::Raw => 1.24,
        _ => 1.34,
    };
    for w in weights.iter_mut().take(4).skip(1) {
        *w *= 1.16;
    }
    weights[4] *= 1.06;
    let writes = sample_bucketed(rng, &weights, &ranges);
    let n_updates = writes.saturating_sub(1) as usize;
    let automated_frac = match kind {
        ConfigKind::Raw => paper::RAW_AUTOMATION_FRACTION,
        ConfigKind::Compiled => 0.25,
        ConfigKind::Source => 0.20,
    };
    let life = (horizon - created_day).max(0.0);
    // Lightly-updated configs receive their few updates mostly while the
    // feature is young (front-loaded); the heavily-updated minority —
    // overwhelmingly automation-owned — is touched continuously at every
    // age. This split reconciles Fig 9 (configs: a third dormant) with
    // Fig 10 (updates: spread across all ages, because update volume is
    // dominated by the continuously-rewritten top 1%).
    let front_loaded = n_updates <= 9;
    // Even heavily-updated configs do not all stay hot forever: some are
    // retired (the workload migrates elsewhere) and their update stream
    // stops at a cutoff, after which they age like any dormant config.
    let active_life = if !front_loaded && rng.gen::<f64>() < 0.45 {
        life * rng.gen::<f64>().sqrt()
    } else {
        life
    };
    let mut updates: Vec<UpdateRecord> = (0..n_updates)
        .map(|_| {
            let day = if front_loaded && rng.gen::<f64>() < 0.85 {
                created_day + rng.gen::<f64>() * life.min(120.0)
            } else {
                created_day + rng.gen::<f64>() * active_life
            };
            let line_changes = sample_bucketed(
                rng,
                match kind {
                    ConfigKind::Compiled => &paper::T2_COMPILED,
                    ConfigKind::Raw => &paper::T2_RAW,
                    ConfigKind::Source => &paper::T2_SOURCE,
                },
                &paper::T2_BUCKET_RANGES,
            ) as u32;
            UpdateRecord {
                day,
                line_changes,
                automated: rng.gen::<f64>() < automated_frac,
            }
        })
        .collect();
    updates.sort_by(|a, b| a.day.partial_cmp(&b.day).expect("no NaN days"));

    let coauthors = sample_coauthors(rng, kind, writes);

    let size_bytes = sample_size(
        rng,
        match kind {
            ConfigKind::Compiled => &paper::SIZE_QUANTILES_COMPILED,
            _ => &paper::SIZE_QUANTILES_RAW,
        },
    );
    ConfigRecord {
        kind,
        created_day,
        size_bytes,
        updates,
        coauthors,
    }
}

/// Samples a co-author count consistent with both the Table 3 marginal
/// and the hard constraint `coauthors ≤ writes`. In the real data, the
/// single-write configs are exactly the single-author ones, so we sample
/// conditionally: a one-write config has one author; otherwise the
/// single-author bucket's weight is reduced by the one-write mass already
/// accounted for, keeping the overall marginal close to the paper's.
fn sample_coauthors(rng: &mut SmallRng, kind: ConfigKind, writes: u64) -> u32 {
    if writes == 1 {
        return 1;
    }
    let (t3, p_write1) = match kind {
        ConfigKind::Compiled => (&paper::T3_COMPILED, paper::T1_COMPILED[0]),
        ConfigKind::Raw => (&paper::T3_RAW, paper::T1_RAW[0]),
        ConfigKind::Source => (&paper::T3_FBCODE, paper::T1_COMPILED[0]),
    };
    let mut adjusted = *t3;
    adjusted[0] = (adjusted[0] - p_write1).max(0.5);
    sample_bucketed(rng, &adjusted, &paper::T3_BUCKET_RANGES).min(writes) as u32
}

/// Samples from a bucketed percentage table: pick a bucket by weight, then
/// log-uniform within the bucket range.
pub fn sample_bucketed(rng: &mut SmallRng, weights: &[f64], ranges: &[(u64, u64)]) -> u64 {
    debug_assert_eq!(weights.len(), ranges.len());
    let total: f64 = weights.iter().sum();
    let mut x = rng.gen::<f64>() * total;
    for (w, (lo, hi)) in weights.iter().zip(ranges) {
        if x < *w {
            if lo == hi {
                return *lo;
            }
            // Log-uniform keeps heavy-tailed buckets realistic.
            let (lo, hi) = (*lo as f64, *hi as f64 + 1.0);
            let v = (lo.ln() + rng.gen::<f64>() * (hi.ln() - lo.ln())).exp();
            return (v as u64).clamp(lo as u64, hi as u64 - 1);
        }
        x -= w;
    }
    ranges.last().map(|(lo, _)| *lo).unwrap_or(1)
}

/// Samples a size in bytes from piecewise log-linear quantile control
/// points (Fig 8's shape).
pub fn sample_size(rng: &mut SmallRng, quantiles: &[(f64, f64)]) -> u64 {
    let u: f64 = rng.gen();
    for w in quantiles.windows(2) {
        let (q0, v0) = w[0];
        let (q1, v1) = w[1];
        if u <= q1 {
            let t = if q1 > q0 { (u - q0) / (q1 - q0) } else { 0.0 };
            let lv = v0.ln() + t * (v1.ln() - v0.ln());
            return lv.exp().round().max(1.0) as u64;
        }
    }
    quantiles.last().map(|(_, v)| *v as u64).unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_history() -> History {
        generate(&HistoryParams {
            total_configs: 20_000,
            ..HistoryParams::default()
        })
    }

    #[test]
    fn population_shares_match() {
        let h = small_history();
        let compiled = h.of_kind(ConfigKind::Compiled).count() as f64;
        let raw = h.of_kind(ConfigKind::Raw).count() as f64;
        let frac = compiled / (compiled + raw);
        assert!((frac - 0.75).abs() < 0.02, "compiled fraction {frac}");
        assert!(h.of_kind(ConfigKind::Source).count() > 0);
    }

    #[test]
    fn update_times_within_lifetime_and_sorted() {
        let h = small_history();
        for c in &h.configs {
            for u in &c.updates {
                assert!(u.day >= c.created_day - 1e-9);
                assert!(u.day <= h.horizon + 1e-9);
            }
            assert!(c.updates.windows(2).all(|w| w[0].day <= w[1].day));
            assert!(c.coauthors as u64 <= c.write_count());
            assert!(c.coauthors >= 1);
        }
    }

    #[test]
    fn raw_updates_dominated_by_automation() {
        let h = small_history();
        let (auto, total) = h
            .of_kind(ConfigKind::Raw)
            .flat_map(|c| c.updates.iter())
            .fold((0u64, 0u64), |(a, t), u| (a + u.automated as u64, t + 1));
        let frac = auto as f64 / total as f64;
        assert!((frac - 0.89).abs() < 0.02, "automation fraction {frac}");
    }

    #[test]
    fn mean_update_counts_ordering_matches_paper() {
        // Raw ≫ compiled (44 vs 16 in the paper). Exact means depend on
        // within-bucket sampling; the ordering and rough magnitude must
        // hold.
        let h = small_history();
        let mean = |k: ConfigKind| {
            let (s, n) = h
                .of_kind(k)
                .fold((0u64, 0u64), |(s, n), c| (s + c.write_count(), n + 1));
            s as f64 / n as f64
        };
        let raw = mean(ConfigKind::Raw);
        let compiled = mean(ConfigKind::Compiled);
        assert!(
            raw > compiled * 1.8,
            "raw {raw:.1} vs compiled {compiled:.1}"
        );
        assert!(raw > 15.0 && raw < 90.0, "raw mean {raw:.1}");
        assert!(
            compiled > 5.0 && compiled < 35.0,
            "compiled mean {compiled:.1}"
        );
    }

    #[test]
    fn sizes_span_the_paper_range() {
        let h = small_history();
        let sizes: Vec<u64> = h
            .of_kind(ConfigKind::Compiled)
            .map(|c| c.size_bytes)
            .collect();
        let min = *sizes.iter().min().unwrap();
        let max = *sizes.iter().max().unwrap();
        assert!(min >= 1);
        assert!(max > 100_000, "tail should reach large configs: {max}");
        // Median near 1 KB.
        let mut s = sizes.clone();
        s.sort_unstable();
        let med = s[s.len() / 2];
        assert!((500..2_000).contains(&med), "median {med}");
    }

    #[test]
    fn deterministic_per_seed() {
        let a = generate(&HistoryParams::default());
        let b = generate(&HistoryParams::default());
        assert_eq!(a.configs.len(), b.configs.len());
        assert_eq!(a.configs[0].size_bytes, b.configs[0].size_bytes);
        let c = generate(&HistoryParams {
            seed: 7,
            ..HistoryParams::default()
        });
        assert_ne!(a.configs[0].size_bytes, c.configs[0].size_bytes);
    }

    #[test]
    fn creation_density_accelerates() {
        let h = small_history();
        let early = h
            .configs
            .iter()
            .filter(|c| c.created_day < h.horizon / 2.0)
            .count();
        let late = h.configs.len() - early;
        assert!(late > early, "growth should accelerate: {early} vs {late}");
    }
}
