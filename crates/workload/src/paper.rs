//! The paper's published statistics, transcribed as calibration targets.
//!
//! Every constant here is copied from §6 of *Holistic Configuration
//! Management at Facebook* (SOSP 2015). The generators sample from these
//! distributions; the analysis code then re-measures the generated history
//! and the `repro` harness prints paper-vs-measured side by side.

/// Bucket labels shared by Tables 1–3.
pub const COUNT_BUCKETS: [&str; 8] = [
    "1",
    "2",
    "3",
    "4",
    "[5,10]",
    "[11,100]",
    "[101,1000]",
    "[1001,inf)",
];

/// Bucket boundaries (inclusive lows) matching [`COUNT_BUCKETS`].
pub const COUNT_BUCKET_RANGES: [(u64, u64); 8] = [
    (1, 1),
    (2, 2),
    (3, 3),
    (4, 4),
    (5, 10),
    (11, 100),
    (101, 1000),
    (1001, 100_000),
];

/// Table 1: "Number of times that a config gets updated" (percent per
/// bucket), compiled configs.
pub const T1_COMPILED: [f64; 8] = [25.0, 24.9, 14.1, 7.5, 15.9, 11.6, 0.8, 0.2];
/// Table 1, raw configs.
pub const T1_RAW: [f64; 8] = [56.9, 23.7, 5.2, 3.2, 6.6, 3.0, 0.7, 0.7];

/// Bucket labels for Table 2 (line changes per update).
pub const T2_BUCKETS: [&str; 8] = [
    "1",
    "2",
    "[3,4]",
    "[5,6]",
    "[7,10]",
    "[11,50]",
    "[51,100]",
    "[101,inf)",
];

/// Bucket boundaries for Table 2.
pub const T2_BUCKET_RANGES: [(u64, u64); 8] = [
    (1, 1),
    (2, 2),
    (3, 4),
    (5, 6),
    (7, 10),
    (11, 50),
    (51, 100),
    (101, 5_000),
];

/// Table 2: compiled configs.
pub const T2_COMPILED: [f64; 8] = [2.5, 49.5, 9.9, 3.9, 7.4, 15.3, 2.8, 8.7];
/// Table 2: config source code.
pub const T2_SOURCE: [f64; 8] = [2.7, 44.3, 13.5, 4.6, 6.1, 19.3, 2.3, 7.3];
/// Table 2: raw configs.
pub const T2_RAW: [f64; 8] = [2.3, 48.6, 32.5, 4.2, 3.6, 5.7, 1.1, 2.0];

/// Bucket labels for Table 3 (number of co-authors).
pub const T3_BUCKETS: [&str; 8] = [
    "1",
    "2",
    "3",
    "4",
    "[5,10]",
    "[11,50]",
    "[51,100]",
    "[101,inf)",
];

/// Bucket boundaries for Table 3.
pub const T3_BUCKET_RANGES: [(u64, u64); 8] = [
    (1, 1),
    (2, 2),
    (3, 3),
    (4, 4),
    (5, 10),
    (11, 50),
    (51, 100),
    (101, 800),
];

/// Table 3: compiled configs.
pub const T3_COMPILED: [f64; 8] = [49.5, 30.1, 9.2, 3.9, 5.7, 1.3, 0.2, 0.04];
/// Table 3: raw configs.
pub const T3_RAW: [f64; 8] = [70.0, 21.5, 5.1, 1.4, 1.2, 0.6, 0.1, 0.002];
/// Table 3: fbcode (backend source code), for the comparison column.
pub const T3_FBCODE: [f64; 8] = [44.0, 37.7, 7.6, 3.6, 5.6, 1.4, 0.02, 0.007];

/// Figure 8 size quantiles for raw configs: (quantile, bytes).
/// P50 = 400 B, P95 = 25 KB, max = 8.4 MB (§6.1).
pub const SIZE_QUANTILES_RAW: [(f64, f64); 5] = [
    (0.0, 16.0),
    (0.50, 400.0),
    (0.95, 25_000.0),
    (0.999, 1_000_000.0),
    (1.0, 8_400_000.0),
];

/// Figure 8 size quantiles for compiled configs: P50 = 1 KB, P95 = 45 KB,
/// max = 14.8 MB.
pub const SIZE_QUANTILES_COMPILED: [(f64, f64); 5] = [
    (0.0, 32.0),
    (0.50, 1_000.0),
    (0.95, 45_000.0),
    (0.999, 2_000_000.0),
    (1.0, 14_800_000.0),
];

/// Figure 9: CDF of days since a config was last modified.
/// (day, cumulative percent).
pub const FIG9_FRESHNESS: [(f64, f64); 15] = [
    (1.0, 0.5),
    (5.0, 2.0),
    (10.0, 4.0),
    (20.0, 6.0),
    (30.0, 9.0),
    (60.0, 17.0),
    (90.0, 28.0),
    (120.0, 39.0),
    (150.0, 44.0),
    (200.0, 52.0),
    (300.0, 65.0),
    (400.0, 71.0),
    (500.0, 78.0),
    (600.0, 83.0),
    (700.0, 95.0),
];

/// Figure 10: CDF of a config's age at the time of an update.
pub const FIG10_AGE_AT_UPDATE: [(f64, f64); 15] = [
    (1.0, 4.0),
    (5.0, 6.0),
    (10.0, 8.0),
    (20.0, 13.0),
    (30.0, 17.0),
    (60.0, 29.0),
    (90.0, 38.0),
    (120.0, 45.0),
    (150.0, 52.0),
    (200.0, 60.0),
    (300.0, 71.0),
    (400.0, 80.0),
    (500.0, 87.0),
    (600.0, 93.0),
    (700.0, 96.0),
];

/// §6.1: fraction of stored configs that are compiled (vs raw).
pub const COMPILED_FRACTION: f64 = 0.75;
/// §6.1: fraction of raw-config updates performed by automation tools.
pub const RAW_AUTOMATION_FRACTION: f64 = 0.89;
/// §6.3: fraction of all commits that are automated.
pub const AUTOMATED_COMMIT_FRACTION: f64 = 0.39;
/// §6.3: Configerator weekend-to-weekday commit ratio.
pub const WEEKEND_RATIO_CONFIGERATOR: f64 = 0.33;
/// §6.3: www weekend ratio.
pub const WEEKEND_RATIO_WWW: f64 = 0.10;
/// §6.3: fbcode weekend ratio.
pub const WEEKEND_RATIO_FBCODE: f64 = 0.07;
/// §6.3: peak daily commit throughput growth over 10 months.
pub const TEN_MONTH_GROWTH: f64 = 1.8;

/// §6.4: incident breakdown.
pub const INCIDENT_TYPE_I: f64 = 0.42;
/// §6.4: subtle config errors.
pub const INCIDENT_TYPE_II: f64 = 0.36;
/// §6.4: valid config changes exposing code bugs.
pub const INCIDENT_TYPE_III: f64 = 0.22;
/// §6.4: fraction of high-impact incidents related to configuration.
pub const INCIDENTS_CONFIG_RELATED: f64 = 0.16;

/// §6.3: mean lifetime updates per config kind (raw / compiled / source).
pub const MEAN_UPDATES_RAW: f64 = 44.0;
/// Mean lifetime updates, compiled configs.
pub const MEAN_UPDATES_COMPILED: f64 = 16.0;
/// Mean lifetime updates, config source files.
pub const MEAN_UPDATES_SOURCE: f64 = 10.0;

/// Figure 14: baseline end-to-end commit→fleet latency in seconds
/// (~5 s git commit + ~5 s tailer + ~4.5 s tree propagation).
pub const FIG14_BASELINE_S: f64 = 14.5;
/// Figure 14 component: git commit seconds.
pub const FIG14_COMMIT_S: f64 = 5.0;
/// Figure 14 component: tailer seconds.
pub const FIG14_TAILER_S: f64 = 5.0;
/// Figure 14 component: tree propagation seconds.
pub const FIG14_TREE_S: f64 = 4.5;

/// §3.5: PackageVessel delivers large configs in under four minutes.
pub const PV_DELIVERY_BOUND_S: f64 = 240.0;

/// A generic table row: label, paper value, measured value.
#[derive(Debug, Clone, PartialEq)]
pub struct Row {
    /// Bucket label.
    pub label: String,
    /// The paper's published percentage.
    pub paper: f64,
    /// The value measured from the generated/simulated data.
    pub measured: f64,
}

impl Row {
    /// Absolute difference between paper and measured.
    pub fn abs_err(&self) -> f64 {
        (self.paper - self.measured).abs()
    }
}

/// Renders rows as an aligned text table.
pub fn render_rows(title: &str, rows: &[Row]) -> String {
    let mut out = format!(
        "{title}\n{:<14} {:>9} {:>9} {:>7}\n",
        "bucket", "paper%", "measured%", "|err|"
    );
    for r in rows {
        out.push_str(&format!(
            "{:<14} {:>9.2} {:>9.2} {:>7.2}\n",
            r.label,
            r.paper,
            r.measured,
            r.abs_err()
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_percentages_sum_to_about_100() {
        for t in [
            T1_COMPILED,
            T1_RAW,
            T2_COMPILED,
            T2_SOURCE,
            T2_RAW,
            T3_COMPILED,
            T3_RAW,
            T3_FBCODE,
        ] {
            let sum: f64 = t.iter().sum();
            assert!((sum - 100.0).abs() < 1.0, "sums to {sum}");
        }
    }

    #[test]
    fn quantiles_are_monotone() {
        for q in [SIZE_QUANTILES_RAW, SIZE_QUANTILES_COMPILED] {
            assert!(q.windows(2).all(|w| w[0].0 < w[1].0 && w[0].1 < w[1].1));
        }
        assert!(FIG9_FRESHNESS.windows(2).all(|w| w[0].1 <= w[1].1));
        assert!(FIG10_AGE_AT_UPDATE.windows(2).all(|w| w[0].1 <= w[1].1));
    }

    #[test]
    fn incident_fractions_partition() {
        let sum = INCIDENT_TYPE_I + INCIDENT_TYPE_II + INCIDENT_TYPE_III;
        assert!((sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn row_rendering() {
        let rows = vec![Row {
            label: "1".into(),
            paper: 25.0,
            measured: 24.8,
        }];
        let s = render_rows("Table 1", &rows);
        assert!(s.contains("Table 1"));
        assert!(s.contains("25.00"));
        assert!(s.contains("0.20"));
    }
}
