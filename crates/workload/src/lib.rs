//! # workload — calibrated generators for the paper's usage statistics
//!
//! The evaluation of *Holistic Configuration Management at Facebook*
//! (SOSP 2015, §6) reports ten months of production usage. That data is
//! not available, so this crate implements the substitution described in
//! `DESIGN.md`: a generative model whose marginal distributions are set
//! from every number the paper publishes ([`paper`]), plus the analysis
//! code that measures a generated history with the paper's own bucketing
//! ([`analysis`]) so the `repro` harness can print paper-vs-measured rows
//! for Figures 7–12 and Tables 1–3.
//!
//! [`commits`] additionally models the commit *process* (diurnal/weekly
//! shape, automation floor, growth) and provides the synthetic git-history
//! replay used to drive the real `gitstore` for the Figure 13 throughput
//! measurement — there the numbers come from executing actual commits, not
//! from sampling.

pub mod analysis;
pub mod commits;
pub mod history;
pub mod paper;

pub use analysis::{
    fig10_age_at_update, fig7_growth, fig8_size_cdf, fig9_freshness, table1, table2, table3,
};
pub use commits::{CommitProcess, CommitReplay, RepoKind};
pub use history::{generate, ConfigKind, ConfigRecord, History, HistoryParams, UpdateRecord};
pub use paper::{render_rows, Row};
