//! Measurement of a generated history with the paper's bucketing.
//!
//! Each function reproduces one table or figure from §6: it takes a
//! [`History`], measures the same statistic the paper reports, and returns
//! paper-vs-measured [`Row`]s ready for the `repro` harness to print.

use crate::history::{ConfigKind, History};
use crate::paper::{self, Row};

/// Buckets `values` by `ranges` and returns percentages.
pub fn bucket_percentages(values: impl Iterator<Item = u64>, ranges: &[(u64, u64)]) -> Vec<f64> {
    let mut counts = vec![0u64; ranges.len()];
    let mut total = 0u64;
    for v in values {
        total += 1;
        for (i, (lo, hi)) in ranges.iter().enumerate() {
            if v >= *lo && v <= *hi {
                counts[i] += 1;
                break;
            }
        }
    }
    counts
        .iter()
        .map(|c| {
            if total == 0 {
                0.0
            } else {
                100.0 * *c as f64 / total as f64
            }
        })
        .collect()
}

fn rows(labels: &[&str], paper_vals: &[f64], measured: &[f64]) -> Vec<Row> {
    labels
        .iter()
        .zip(paper_vals.iter().zip(measured))
        .map(|(l, (p, m))| Row {
            label: l.to_string(),
            paper: *p,
            measured: *m,
        })
        .collect()
}

/// Table 1: lifetime write counts per config, for `kind`.
pub fn table1(history: &History, kind: ConfigKind) -> Vec<Row> {
    let measured = bucket_percentages(
        history.of_kind(kind).map(|c| c.write_count()),
        &paper::COUNT_BUCKET_RANGES,
    );
    let paper_vals = match kind {
        ConfigKind::Compiled | ConfigKind::Source => &paper::T1_COMPILED,
        ConfigKind::Raw => &paper::T1_RAW,
    };
    rows(&paper::COUNT_BUCKETS, paper_vals, &measured)
}

/// Table 2: line changes per update, for `kind`.
pub fn table2(history: &History, kind: ConfigKind) -> Vec<Row> {
    let measured = bucket_percentages(
        history
            .of_kind(kind)
            .flat_map(|c| c.updates.iter().map(|u| u.line_changes as u64)),
        &paper::T2_BUCKET_RANGES,
    );
    let paper_vals = match kind {
        ConfigKind::Compiled => &paper::T2_COMPILED,
        ConfigKind::Raw => &paper::T2_RAW,
        ConfigKind::Source => &paper::T2_SOURCE,
    };
    rows(&paper::T2_BUCKETS, paper_vals, &measured)
}

/// Table 3: co-authors per config, for `kind`.
pub fn table3(history: &History, kind: ConfigKind) -> Vec<Row> {
    let measured = bucket_percentages(
        history.of_kind(kind).map(|c| c.coauthors as u64),
        &paper::T3_BUCKET_RANGES,
    );
    let paper_vals = match kind {
        ConfigKind::Compiled => &paper::T3_COMPILED,
        ConfigKind::Raw => &paper::T3_RAW,
        ConfigKind::Source => &paper::T3_FBCODE,
    };
    rows(&paper::T3_BUCKETS, paper_vals, &measured)
}

/// Figure 9: CDF of days since last modification (paper-vs-measured at the
/// figure's day buckets).
pub fn fig9_freshness(history: &History) -> Vec<Row> {
    let ages: Vec<f64> = history
        .configs
        .iter()
        .filter(|c| c.kind != ConfigKind::Source)
        .map(|c| history.horizon - c.last_modified_day())
        .collect();
    cdf_rows(&ages, &paper::FIG9_FRESHNESS)
}

/// Figure 10: CDF of config age at the time of an update.
pub fn fig10_age_at_update(history: &History) -> Vec<Row> {
    let ages: Vec<f64> = history
        .configs
        .iter()
        .filter(|c| c.kind != ConfigKind::Source)
        .flat_map(|c| c.updates.iter().map(move |u| u.day - c.created_day))
        .collect();
    cdf_rows(&ages, &paper::FIG10_AGE_AT_UPDATE)
}

fn cdf_rows(values: &[f64], targets: &[(f64, f64)]) -> Vec<Row> {
    let n = values.len().max(1) as f64;
    targets
        .iter()
        .map(|(day, pct)| {
            let measured = values.iter().filter(|v| **v <= *day).count() as f64 / n * 100.0;
            Row {
                label: format!("≤{day:.0}d"),
                paper: *pct,
                measured,
            }
        })
        .collect()
}

/// Figure 7: number of configs existing at each sampled day, split by
/// kind. Returns `(day, compiled, raw)` points.
pub fn fig7_growth(history: &History, samples: usize) -> Vec<(f64, usize, usize)> {
    let mut out = Vec::with_capacity(samples);
    for i in 1..=samples {
        let day = history.horizon * i as f64 / samples as f64;
        let compiled = history
            .of_kind(ConfigKind::Compiled)
            .filter(|c| c.created_day <= day)
            .count();
        let raw = history
            .of_kind(ConfigKind::Raw)
            .filter(|c| c.created_day <= day)
            .count();
        out.push((day, compiled, raw));
    }
    out
}

/// Figure 8: the measured size CDF at round byte boundaries, per kind.
/// Returns `(bytes, cumulative percent)`.
pub fn fig8_size_cdf(history: &History, kind: ConfigKind) -> Vec<(u64, f64)> {
    let mut sizes: Vec<u64> = history.of_kind(kind).map(|c| c.size_bytes).collect();
    sizes.sort_unstable();
    let n = sizes.len().max(1) as f64;
    let bounds = [
        100u64,
        200,
        300,
        400,
        600,
        800,
        1_000,
        2_000,
        5_000,
        10_000,
        50_000,
        100_000,
        500_000,
        1_000_000,
        10_000_000,
        100_000_000,
    ];
    bounds
        .iter()
        .map(|b| {
            let cnt = sizes.partition_point(|s| s <= b);
            (*b, cnt as f64 / n * 100.0)
        })
        .collect()
}

/// Summary quantiles of sizes for a kind: (p50, p95, max).
pub fn size_quantiles(history: &History, kind: ConfigKind) -> (u64, u64, u64) {
    let mut sizes: Vec<u64> = history.of_kind(kind).map(|c| c.size_bytes).collect();
    sizes.sort_unstable();
    let q = |p: f64| sizes[((sizes.len() - 1) as f64 * p) as usize];
    (q(0.5), q(0.95), *sizes.last().unwrap_or(&0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::history::{generate, HistoryParams};

    fn history() -> History {
        generate(&HistoryParams {
            total_configs: 30_000,
            ..HistoryParams::default()
        })
    }

    #[test]
    fn table1_round_trips_within_one_percent() {
        let h = history();
        for kind in [ConfigKind::Compiled, ConfigKind::Raw] {
            for row in table1(&h, kind) {
                assert!(
                    row.abs_err() < 1.5,
                    "{kind:?} bucket {} off by {:.2}",
                    row.label,
                    row.abs_err()
                );
            }
        }
    }

    #[test]
    fn table2_round_trips() {
        let h = history();
        for kind in [ConfigKind::Compiled, ConfigKind::Raw, ConfigKind::Source] {
            for row in table2(&h, kind) {
                assert!(
                    row.abs_err() < 1.5,
                    "{kind:?} {}: {:.2}",
                    row.label,
                    row.abs_err()
                );
            }
        }
    }

    #[test]
    fn table3_round_trips_modulo_write_cap() {
        let h = history();
        for kind in [ConfigKind::Compiled, ConfigKind::Raw] {
            for row in table3(&h, kind) {
                // Coauthors are capped by write count, which shifts a few
                // percent into bucket 1; allow a wider margin there.
                let margin = if row.label == "1" || row.label == "2" {
                    8.0
                } else {
                    4.0
                };
                assert!(
                    row.abs_err() < margin,
                    "{kind:?} {}: {:.2}",
                    row.label,
                    row.abs_err()
                );
            }
        }
    }

    #[test]
    fn freshness_and_age_shapes_are_sane() {
        let h = history();
        let f9 = fig9_freshness(&h);
        // CDF is monotone and spans a wide range, with both fresh and
        // dormant mass (the paper's headline: 28% touched in 90 days, 35%
        // untouched in 300).
        assert!(f9.windows(2).all(|w| w[0].measured <= w[1].measured + 1e-9));
        let at90 = f9.iter().find(|r| r.label == "≤90d").unwrap().measured;
        let at300 = f9.iter().find(|r| r.label == "≤300d").unwrap().measured;
        assert!(at90 > 10.0 && at90 < 55.0, "fresh mass at 90d: {at90:.1}");
        assert!(
            100.0 - at300 > 15.0,
            "dormant mass beyond 300d: {:.1}",
            100.0 - at300
        );
        let f10 = fig10_age_at_update(&h);
        let young = f10.iter().find(|r| r.label == "≤60d").unwrap().measured;
        let old = 100.0 - f10.iter().find(|r| r.label == "≤300d").unwrap().measured;
        assert!(young > 15.0, "updates on young configs: {young:.1}");
        assert!(old > 10.0, "updates on old configs: {old:.1}");
    }

    #[test]
    fn growth_series_is_monotone_and_mostly_compiled() {
        let h = history();
        let g = fig7_growth(&h, 14);
        assert!(g.windows(2).all(|w| w[0].1 <= w[1].1 && w[0].2 <= w[1].2));
        let (_, compiled, raw) = g.last().unwrap();
        assert!(compiled > raw, "compiled dominates at the end");
    }

    #[test]
    fn size_quantiles_close_to_paper() {
        let h = history();
        let (p50, p95, max) = size_quantiles(&h, ConfigKind::Compiled);
        assert!((500..2000).contains(&p50), "compiled P50 {p50}");
        assert!((20_000..90_000).contains(&p95), "compiled P95 {p95}");
        assert!(max > 1_000_000, "compiled max {max}");
        let (p50r, p95r, _) = size_quantiles(&h, ConfigKind::Raw);
        assert!((200..800).contains(&p50r), "raw P50 {p50r}");
        assert!((10_000..50_000).contains(&p95r), "raw P95 {p95r}");
    }

    #[test]
    fn top_one_percent_raw_configs_dominate_updates() {
        // §6.2: the top 1% of raw configs account for 92.8% of updates.
        let h = history();
        let mut counts: Vec<u64> = h
            .of_kind(ConfigKind::Raw)
            .map(|c| c.write_count())
            .collect();
        counts.sort_unstable_by(|a, b| b.cmp(a));
        let top = counts.len() / 100;
        let top_sum: u64 = counts[..top].iter().sum();
        let total: u64 = counts.iter().sum();
        let share = top_sum as f64 / total as f64;
        assert!(share > 0.5, "top-1% share should be dominant: {share:.2}");
    }

    #[test]
    fn empty_bucket_percentages() {
        let p = bucket_percentages(std::iter::empty(), &paper::COUNT_BUCKET_RANGES);
        assert!(p.iter().all(|v| *v == 0.0));
    }
}
