//! `repro storm`: reconnection storm after a mass observer restart.
//!
//! The paper calls out correlated restarts as the scariest load pattern for
//! the distribution tier: when every observer in the fleet bounces at once
//! (a bad push, a kernel upgrade wave), every proxy loses its feed
//! simultaneously and the reconnect herd can overwhelm the observers that
//! come back first. The proxies' decorrelated-jitter backoff
//! (`uniform(base, 3×prev)`, capped) is what spreads that herd out.
//!
//! This experiment warms a full Zeus tree, crashes *every* observer at a
//! fixed instant, restarts them shortly after, and reads the reconnect
//! attempts off the ODS plane (`proxy/reconnects` raw points) to report the
//! rate-over-time shape: per-bucket attempt counts, the peak bucket, and
//! how long after the restart the storm takes to settle. All numbers are
//! virtual-time only, so the report is byte-deterministic per seed and
//! golden-gated.

use std::fmt::Write as _;

use bytes::Bytes;
use simnet::ods::{series, tiers};
use simnet::prelude::*;
use zeus::deploy::{DeployConfig, ZeusDeployment};

/// Paths the warm-up workload cycles through.
const PATHS: usize = 3;
/// Histogram bucket width for the reconnect-rate shape.
const BUCKET_US: u64 = 500_000;
/// When every observer crashes.
const CRASH_US: u64 = 6_000_000;
/// When they all come back (the mass restart completes).
const RESTART_US: u64 = 7_500_000;
/// End of the observation window — long enough for capped backoff
/// (8s max) to drain fully.
const HORIZON_US: u64 = 32_000_000;

fn bar(n: u64) -> String {
    "#".repeat(n.min(60) as usize)
}

fn run_seed(seed: u64, out: &mut String) {
    let topo = Topology::symmetric(3, 2, 8);
    let mut sim = Sim::new(topo, NetConfig::datacenter(), seed);
    // The plane only collects; we never scrape, so raw points are retained
    // for the whole run and bucketed below.
    sim.enable_ods(SimDuration::from_secs(5), SimDuration::from_secs(60));

    let zeus = ZeusDeployment::install(
        &mut sim,
        &DeployConfig {
            subscriptions: (0..PATHS).map(|i| format!("storm/{i}")).collect(),
            ..DeployConfig::default()
        },
    );
    let observers = zeus.observers.clone();
    let proxies = zeus.proxies.len();

    // Warm-up + steady-state writes so proxies hold live subscriptions
    // through the storm.
    let mut at = 1_000_000u64;
    let mut seq = 0u64;
    while at < HORIZON_US - 2_000_000 {
        let path = format!("storm/{}", seq as usize % PATHS);
        zeus.write_current(&mut sim, SimTime(at), &path, Bytes::from(format!("v{seq}")));
        at += 400_000;
        seq += 1;
    }

    // The mass restart: every observer down at once, all back together.
    for &o in &observers {
        sim.schedule(SimTime(CRASH_US), move |s| s.crash(o));
        sim.schedule(SimTime(RESTART_US), move |s| s.recover(o));
    }

    sim.run_until(SimTime(HORIZON_US));

    let points = sim.ods().points(tiers::PROXY, series::RECONNECTS);
    let storm: Vec<&(SimTime, f64)> = points
        .iter()
        .filter(|(t, _)| t.as_micros() >= CRASH_US)
        .collect();
    let total: u64 = storm.iter().map(|(_, v)| *v as u64).sum();
    let buckets = ((HORIZON_US - CRASH_US) / BUCKET_US) as usize;
    let mut hist = vec![0u64; buckets];
    for (t, v) in &storm {
        let b = ((t.as_micros() - CRASH_US) / BUCKET_US) as usize;
        if b < buckets {
            hist[b] += *v as u64;
        }
    }
    let peak = hist.iter().copied().max().unwrap_or(0);
    let peak_at = hist.iter().position(|&v| v == peak).unwrap_or(0);
    let settle_us = storm
        .last()
        .map(|(t, _)| t.as_micros().saturating_sub(RESTART_US))
        .unwrap_or(0);

    let _ = writeln!(
        out,
        "seed {seed}: {} observers restarted at {:.1}s (down from {:.1}s), {} proxies reconnecting",
        observers.len(),
        RESTART_US as f64 / 1e6,
        CRASH_US as f64 / 1e6,
        proxies
    );
    let _ = writeln!(
        out,
        "  reconnect attempts after crash: {total} | peak bucket: {peak} attempts at t+{:.1}s | settled {:.1}s after restart",
        (peak_at as u64 * BUCKET_US) as f64 / 1e6,
        settle_us as f64 / 1e6
    );
    let _ = writeln!(
        out,
        "  rate over time ({:.1}s buckets from crash):",
        BUCKET_US as f64 / 1e6
    );
    for (i, &n) in hist.iter().enumerate() {
        // Compress the long settled tail: stop after the last active bucket.
        if hist[i..].iter().all(|&v| v == 0) {
            let _ = writeln!(
                out,
                "    (quiet through {:.1}s)",
                (HORIZON_US - CRASH_US) as f64 / 1e6
            );
            break;
        }
        let _ = writeln!(
            out,
            "    t+{:>4.1}s {:>4}{}{}",
            (i as u64 * BUCKET_US) as f64 / 1e6,
            n,
            if n > 0 { " " } else { "" },
            bar(n)
        );
    }
}

/// Runs the storm under two seeds so the golden shows the jitter spreading
/// the herd differently while the envelope (peak, settle) stays tame.
pub fn report(seed: u64) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "observer mass-restart reconnect storm — decorrelated-jitter backoff\n\
         (uniform(base, 3x prev) capped at 8s; shape read off proxy/reconnects\n\
         ODS points, bucketed)\n"
    );
    for s in [seed, seed + 1] {
        run_seed(s, &mut out);
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn storm_report_is_deterministic_and_settles() {
        let a = report(1);
        let b = report(1);
        assert_eq!(a, b, "storm report must be byte-identical per seed");
        assert!(a.contains("reconnect attempts after crash:"));
        assert!(
            a.contains("settled"),
            "storm should settle within the horizon:\n{a}"
        );
    }
}
