//! `repro health`: the ODS-style fleet health plane under chaos.
//!
//! The paper's evaluation reads fleet health off ODS: per-tier time series
//! of propagation latency, staleness, and commit/error rates, with SLO
//! dashboards on top. This experiment deploys every tier onto one simulated
//! fleet — Zeus consensus + observers + proxies, a Laser stream-serving
//! group fed from an observer, a MobileConfig-style pull leg, and the
//! Configerator commit pipeline bridged in from the driver — turns the
//! `simnet::ods` plane on, runs a seeded chaos plan through it, and reports
//! what the scrapes saw: the per-tier series index, windowed rollups, and
//! multi-window propagation-SLO burn rates (fast 5s / slow 60s of simulated
//! time; a policy pages when *both* windows burn at or above its page
//! level).
//!
//! Every number here derives from virtual time and seeded randomness, so
//! the report is byte-deterministic per seed and golden-gated by
//! `scripts/check.sh` (two chaos seeds are included in the golden).

use std::collections::BTreeMap;
use std::fmt::Write as _;

use bytes::Bytes;
use configerator::service::ConfigeratorService;
use laser::deploy::{LaserDeployConfig, LaserDeployment};
use laser::feed;
use simnet::chaos::{ChaosConfig, ChaosPlan};
use simnet::ods::{series, tiers, SeriesKind, SloPolicy};
use simnet::prelude::*;
use zeus::deploy::{DeployConfig, ZeusDeployment};
use zeus::pull::{PullClientActor, PullMsg, PullServerActor};

/// Config paths the workload writes and every proxy subscribes to.
const PATHS: usize = 4;
/// Write cadence while the plan is active.
const WRITE_PERIOD_US: u64 = 400_000;
/// Scrape cadence of the aggregation tier.
const SCRAPE_PERIOD_US: u64 = 2_500_000;

fn kind_label(k: SeriesKind) -> &'static str {
    match k {
        SeriesKind::Counter => "counter",
        SeriesKind::Gauge => "gauge",
        SeriesKind::Sample => "sample",
    }
}

/// The SLO policies the health plane evaluates, shared by report and
/// rendering so the golden shows exactly what was registered.
fn policies() -> Vec<SloPolicy> {
    vec![
        SloPolicy {
            tier: tiers::PROXY.into(),
            series: series::PROPAGATION_S.into(),
            threshold: 0.15,
            objective: 0.9,
            page_burn: 1.5,
        },
        SloPolicy {
            tier: tiers::LASER.into(),
            series: series::INGEST_LAG_S.into(),
            threshold: 0.3,
            objective: 0.9,
            page_burn: 1.5,
        },
        SloPolicy {
            tier: tiers::MOBILE.into(),
            series: series::STALENESS_S.into(),
            threshold: 3.0,
            objective: 0.9,
            page_burn: 1.5,
        },
    ]
}

fn run_seed(seed: u64, out: &mut String) {
    let topo = Topology::symmetric(3, 2, 8);
    let mut sim = Sim::new(topo, NetConfig::datacenter(), seed);
    sim.enable_ods(SimDuration::from_secs(5), SimDuration::from_secs(60));
    for p in policies() {
        sim.ods_mut().register_slo(p);
    }

    let zeus = ZeusDeployment::install(
        &mut sim,
        &DeployConfig {
            subscriptions: (0..PATHS).map(|i| format!("health/{i}")).collect(),
            ..DeployConfig::default()
        },
    );

    // Carve the serving-side roles out of the proxy pool: a pull server
    // with four polling clients (the MobileConfig leg), and a Laser stream
    // group ingesting from the observers.
    let pool = zeus.proxies.clone();
    let pull_server = pool[0];
    sim.add_actor(pull_server, Box::new(PullServerActor::new()));
    let pull_paths: Vec<String> = (0..PATHS).map(|i| format!("health/{i}")).collect();
    for &c in &pool[1..5] {
        sim.add_actor(
            c,
            Box::new(PullClientActor::new(
                pull_server,
                SimDuration::from_secs(2),
                pull_paths.clone(),
            )),
        );
    }
    let laser = LaserDeployment::install(
        &mut sim,
        &LaserDeployConfig {
            shards: 2,
            replicas: 2,
            candidates: pool[5..].to_vec(),
            observers: zeus.observers.clone(),
            stream_datasets: vec!["gk".into()],
            bulk_datasets: Vec::new(),
            memory_cap: 4096,
            pv_window: 4,
        },
    );

    // Chaos plan over every tier, same candidate shape as `repro chaos`.
    let plan = ChaosPlan::generate(
        seed,
        &ChaosConfig {
            crash_candidates: vec![
                ("leader".into(), zeus.ensemble[0]),
                ("follower".into(), zeus.ensemble[1]),
                ("observer".into(), zeus.observers[0]),
                ("observer".into(), zeus.observers[zeus.observers.len() / 2]),
                ("laser".into(), laser.servers[0]),
                ("proxy".into(), pool[5]),
            ],
            regions: 3,
            ..ChaosConfig::default()
        },
    );
    plan.apply(&mut sim);
    let horizon = plan.horizon + SimDuration::from_secs(5);

    // Write workload: config writes cycling the subscribed paths (mirrored
    // into the pull server), plus a Laser stream feed through Zeus.
    let first = 1_000_000u64;
    let last = horizon.as_micros().saturating_sub(2_000_000);
    let mut at = first;
    let mut seq = 0u64;
    while at < last {
        let path = format!("health/{}", seq as usize % PATHS);
        let data = Bytes::from(format!("v{seq}-s{seed}"));
        zeus.write_current(&mut sim, SimTime(at), &path, data.clone());
        sim.post(
            SimTime(at),
            pull_server,
            pull_server,
            Box::new(PullMsg::Set {
                path,
                data,
                origin: SimTime(at),
            }),
        );
        if seq.is_multiple_of(2) {
            let entries: Vec<(String, f64)> = (0..4)
                .map(|k| (format!("key{k}"), (seq + k) as f64))
                .collect();
            zeus.write_current(
                &mut sim,
                SimTime(at),
                &feed::stream_path("gk"),
                feed::encode_entries(&entries),
            );
        }
        at += WRITE_PERIOD_US;
        seq += 1;
    }

    // The Configerator pipeline runs outside the actor plane; land its
    // commits up front and bridge the reports into the plane at a steady
    // cadence, the way a real service's stats publisher would.
    let mut svc = ConfigeratorService::new();
    let mut commit_at = 2_000_000u64;
    let mut idx = 0u64;
    while commit_at < last {
        let mut ch: BTreeMap<String, Option<String>> = BTreeMap::new();
        ch.insert(
            "health.cconf".into(),
            Some(format!("export_if_last({{\"gen\": {idx}}})")),
        );
        let mut report = svc
            .commit_source("health", "tick", ch)
            .expect("trivial config compiles");
        // The report carries measured wall-clock compile time, but this
        // experiment's output is compared byte-for-byte per seed; bridge a
        // deterministic per-commit duration into the plane instead (the
        // health rollups exercise the series shape, not the measurement).
        report.stats.compile_us = 1_500 + 350 * (idx % 4);
        let node = zeus.ensemble[0];
        sim.schedule(SimTime(commit_at), move |s| {
            let now = s.now();
            configerator::metrics::publish_commit_ods(&report, s.ods_mut(), node, now);
        });
        // Every third tick also lands a broken entry, so the error series
        // carries real compile rejections.
        if idx % 3 == 2 {
            let mut bad: BTreeMap<String, Option<String>> = BTreeMap::new();
            bad.insert("broken.cconf".into(), Some("export_if_last(".into()));
            assert!(svc.commit_source("health", "bad", bad).is_err());
            sim.schedule(SimTime(commit_at + 1), move |s| {
                let now = s.now();
                configerator::metrics::publish_commit_error_ods(s.ods_mut(), node, now, 1);
            });
        }
        commit_at += 5_000_000;
        idx += 1;
    }

    // The MobileConfig server also runs off-sim; poll a small device
    // population between publish intervals and bridge the cumulative
    // ServerStats in as deltas (`ServerStats::publish_ods`), one snapshot
    // per interval.
    let schema = mobileconfig::MobileSchema::new(
        "HealthApp",
        &[
            ("feature_x", mobileconfig::FieldType::Bool),
            ("feed_batch", mobileconfig::FieldType::Int),
        ],
    );
    let mut tl = mobileconfig::TranslationLayer::new();
    tl.bind(
        "HealthApp",
        "feature_x",
        mobileconfig::Binding::Gatekeeper {
            project: "X".into(),
        },
    );
    tl.bind(
        "HealthApp",
        "feed_batch",
        mobileconfig::Binding::Constant(gatekeeper::experiment::ParamValue::Int(20)),
    );
    let mut gk = gatekeeper::runtime::Runtime::new(laser::Laser::new(16));
    gk.update_project(gatekeeper::project::Project::fraction_launch("X", 0.0));
    let mut mc_server = mobileconfig::MobileConfigServer::new(tl, gk);
    mc_server.register_schema(schema.clone());
    let mut devices: Vec<mobileconfig::MobileConfigClient> = (0..6)
        .map(|i| {
            mobileconfig::MobileConfigClient::new(
                gatekeeper::context::UserContext::with_id(i),
                schema.clone(),
            )
        })
        .collect();
    let mut prev = mobileconfig::ServerStats::default();
    let mut publish_at = 3_000_000u64;
    let mut round = 0u64;
    while publish_at < horizon.as_micros() {
        if round == 3 {
            // A rollout widens mid-run, invalidating cached hashes.
            mc_server
                .gatekeeper_mut()
                .update_project(gatekeeper::project::Project::fraction_launch("X", 0.5));
        }
        for d in &mut devices {
            d.poll(&mut mc_server);
        }
        let snap = mc_server.stats();
        let at = SimTime(publish_at);
        let node = pull_server;
        sim.schedule(at, move |s| {
            snap.publish_ods(&prev, s.ods_mut(), node, at);
        });
        prev = snap;
        publish_at += 3_000_000;
        round += 1;
    }

    // The aggregation tier: periodic scrapes from the driver plane.
    let mut t = SCRAPE_PERIOD_US;
    while t <= horizon.as_micros() {
        sim.schedule(SimTime(t), |s| {
            let now = s.now();
            s.ods_mut().scrape(now);
        });
        t += SCRAPE_PERIOD_US;
    }

    sim.run_until(horizon);

    // ---- Report ----
    let ods = sim.ods();
    let faults = plan.describe();
    let _ = writeln!(
        out,
        "seed {seed}: horizon={:.1}s scrapes={} faults: {}",
        horizon.as_secs_f64(),
        ods.scrapes().len(),
        if faults.is_empty() {
            "none drawn".to_string()
        } else {
            faults.join("; ")
        }
    );
    let _ = writeln!(out, "  series index (tier/series kind nodes points):");
    for (tier, name, kind, nodes) in ods.series_index() {
        let (count, _) = ods.totals(&tier, &name);
        let _ = writeln!(
            out,
            "    {:<32} {:<8} {:>3} {:>6}",
            format!("{tier}/{name}"),
            kind_label(kind),
            nodes,
            count
        );
    }
    let last_scrape = ods.scrapes().last().expect("at least one scrape");
    let _ = writeln!(
        out,
        "  final scrape at {:.1}s (fast 5s / slow 60s):",
        last_scrape.at.as_secs_f64()
    );
    for r in &last_scrape.rows {
        let _ = writeln!(
            out,
            "    {:<32} fast(n={} rate={:.2}/s p99={:.3}) slow(n={} rate={:.2}/s p99={:.3})",
            format!("{}/{}", r.tier, r.name),
            r.fast.count,
            r.fast.rate_per_s,
            r.fast.p99,
            r.slow.count,
            r.slow.rate_per_s,
            r.slow.p99
        );
    }
    let _ = writeln!(
        out,
        "  propagation SLO burn rates (per policy, final scrape):"
    );
    for p in policies() {
        let row = last_scrape
            .rows
            .iter()
            .find(|r| r.tier == p.tier && r.name == p.series);
        match row {
            Some(r) => {
                let paging = r.fast.burn_rate >= p.page_burn && r.slow.burn_rate >= p.page_burn;
                let _ = writeln!(
                    out,
                    "    {:<32} obj={:.0}% thr={:.2}s fast_burn={:.2} slow_burn={:.2} breach={:.1}% {}",
                    format!("{}/{}", p.tier, p.series),
                    p.objective * 100.0,
                    p.threshold,
                    r.fast.burn_rate,
                    r.slow.burn_rate,
                    r.slow.breach_fraction * 100.0,
                    if paging { "PAGE" } else { "ok" }
                );
            }
            None => {
                let _ = writeln!(
                    out,
                    "    {:<32} (no samples)",
                    format!("{}/{}", p.tier, p.series)
                );
            }
        }
    }
    let alerts = ods.slo_alerts();
    let _ = writeln!(out, "  pages fired across the run: {}", alerts.len());
    for a in &alerts {
        let _ = writeln!(
            out,
            "    {:.1}s {}/{} fast_burn={:.2} slow_burn={:.2}",
            a.at.as_secs_f64(),
            a.tier,
            a.series,
            a.fast_burn,
            a.slow_burn
        );
    }
    let shape: Vec<String> = ods
        .fleet_series(tiers::PROXY, series::PROPAGATION_S)
        .iter()
        .map(|(_, w)| w.count.to_string())
        .collect();
    let _ = writeln!(
        out,
        "  proxy propagation fast-window sample counts per scrape: [{}]",
        shape.join(" ")
    );
}

/// Runs the health plane under two chaos seeds and renders the combined
/// report (the golden covers both).
pub fn report(seed: u64) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "ODS fleet health plane — per-tier rollups + multi-window SLO burn\n\
         (zeus/observer/proxy/laser/mobile/configerator emitters; scrape\n\
         every {:.1}s; a policy pages when fast AND slow burn >= page level)\n",
        SCRAPE_PERIOD_US as f64 / 1e6
    );
    for s in [seed, seed + 1] {
        run_seed(s, &mut out);
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn health_report_is_deterministic_and_covers_tiers() {
        let a = report(1);
        let b = report(1);
        assert_eq!(a, b, "health report must be byte-identical per seed");
        for needle in [
            "zeus/commits",
            "proxy/propagation_s",
            "laser/ingest_lag_s",
            "mobile/staleness_s",
            "mobile/not_modified_fraction",
            "configerator/landed",
        ] {
            assert!(a.contains(needle), "missing {needle} in report:\n{a}");
        }
    }
}
