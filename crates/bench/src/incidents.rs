//! §6.4: the configuration-error study, reproduced as a fault-injection
//! campaign against the real pipeline.
//!
//! The paper classifies config-related incidents as Type I (common errors:
//! typos, out-of-bound values, wrong references — 42%), Type II (subtle
//! errors: load-coupled, failure-induced — 36%), and Type III (valid
//! changes exposing latent code bugs — 22%). We inject synthetic changes
//! of each class through the full defense stack — compiler + validators,
//! Sandcastle, 20-server canary, cluster canary — and report which layer
//! catches what, including the two configurations the paper contrasts
//! (canary with and without the cluster phase).

use configerator::metrics::health;
use std::collections::BTreeMap;

use configerator::canary::{CanaryService, CanarySpec, SyntheticFleet};
use configerator::review::Sandcastle;
use configerator::service::ConfigeratorService;
use rand::rngs::SmallRng;
use rand::Rng;
use rand::SeedableRng;
use workload::paper;

/// The §6.4 incident classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum IncidentType {
    /// Common config errors (typos, out-of-bound, wrong cluster).
    TypeI,
    /// Subtle errors (load-related, failure-induced).
    TypeII,
    /// Valid configs exposing code bugs.
    TypeIII,
}

/// Which defense layer stopped the change (or none).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum CaughtBy {
    /// Compiler schema/type check or validator.
    Validator,
    /// Sandcastle integration tests.
    Sandcastle,
    /// Canary phase 1 (20 servers).
    CanarySmall,
    /// Canary phase 2 (full cluster).
    CanaryCluster,
    /// Escaped to production.
    Escaped,
}

/// Runs the campaign: `n` injected bad changes per the paper's mix.
pub fn run(n: usize, with_cluster_phase: bool) -> BTreeMap<(IncidentType, CaughtBy), usize> {
    let mut rng = SmallRng::seed_from_u64(64);
    let mut svc = ConfigeratorService::new();
    // The guarded config type: a cache job with a validated schema.
    let mut seed = BTreeMap::new();
    seed.insert(
        "schemas/job.schema".to_string(),
        Some(
            "struct Job { 1: string cluster 2: i64 memory_mb = 1024 3: optional string mode }"
                .to_string(),
        ),
    );
    seed.insert(
        "schemas/job.cvalidator".to_string(),
        Some(
            "def validate(cfg):\n    require(cfg.memory_mb >= 64, \"memory too small\")\n    require(cfg.memory_mb <= 262144, \"memory out of bounds\")\n    require(len(cfg.cluster) > 0, \"cluster must be set\")\n"
                .to_string(),
        ),
    );
    seed.insert(
        "cache.cconf".to_string(),
        Some("schema \"schemas/job.schema\"\nexport_if_last(Job { cluster: \"c1\" })".to_string()),
    );
    svc.commit_source("seed", "seed", seed)
        .expect("seed commit");

    let mut sandcastle = Sandcastle::new();
    sandcastle.register_check("known_cluster", |cfg| {
        if cfg.json.contains("\"cluster\": \"ghost\"") {
            Err("references a nonexistent cluster".into())
        } else {
            Ok(())
        }
    });

    let spec = if with_cluster_phase {
        CanarySpec::standard(2000)
    } else {
        CanarySpec {
            phases: vec![CanarySpec::standard(2000).phases[0].clone()],
        }
    };
    let canary = CanaryService;

    let mut outcomes: BTreeMap<(IncidentType, CaughtBy), usize> = BTreeMap::new();
    for i in 0..n {
        let r: f64 = rng.gen();
        let itype = if r < paper::INCIDENT_TYPE_I {
            IncidentType::TypeI
        } else if r < paper::INCIDENT_TYPE_I + paper::INCIDENT_TYPE_II {
            IncidentType::TypeII
        } else {
            IncidentType::TypeIII
        };
        // Build the bad change for this incident.
        type Effect = Box<dyn Fn(&str, &str, f64) -> f64>;
        let (src, effect): (String, Effect) = match itype {
            IncidentType::TypeI => {
                // Common errors: out-of-bound value, missing field, or a
                // wrong-cluster reference. Most are validator-catchable;
                // the wrong-cluster case needs Sandcastle's integration
                // knowledge.
                match i % 3 {
                    0 => (
                        "schema \"schemas/job.schema\"\nexport_if_last(Job { cluster: \"c1\", memory_mb: 4 })".into(),
                        Box::new(|_, _, _| 0.0),
                    ),
                    1 => (
                        "schema \"schemas/job.schema\"\nexport_if_last(Job { cluster: \"\" })".into(),
                        Box::new(|_, _, _| 0.0),
                    ),
                    _ => (
                        "schema \"schemas/job.schema\"\nexport_if_last(Job { cluster: \"ghost\" })".into(),
                        Box::new(|_, _, _| 0.0),
                    ),
                }
            }
            IncidentType::TypeII => {
                // Subtle: validates fine, but overloads a backend once a
                // large fraction of the fleet runs it (the §6.4 rare-code-
                // path incident).
                (
                    "schema \"schemas/job.schema\"\nexport_if_last(Job { cluster: \"c1\", mode: \"rare_path\" })".into(),
                    Box::new(|cfg: &str, metric: &str, frac: f64| {
                        if metric == health::LATENCY_MS && cfg.contains("rare_path") && frac > 0.05 {
                            900.0 * frac
                        } else {
                            0.0
                        }
                    }),
                )
            }
            IncidentType::TypeIII => {
                // Valid config; a latent code bug crashes some instances as
                // soon as the new code path runs anywhere (the §6.4
                // race-condition incident) — visible even at 20 servers.
                (
                    "schema \"schemas/job.schema\"\nexport_if_last(Job { cluster: \"c1\", mode: \"new_path\" })".into(),
                    Box::new(|cfg: &str, metric: &str, _| {
                        if metric == health::ERROR_RATE && cfg.contains("new_path") {
                            0.02
                        } else {
                            0.0
                        }
                    }),
                )
            }
        };

        let mut changes = BTreeMap::new();
        changes.insert("cache.cconf".to_string(), Some(src));
        let caught = match svc.check_changes(&changes) {
            Err(_) => CaughtBy::Validator,
            Ok(compiled) => {
                let diff =
                    configerator::landing::SourceDiff::against(&svc, "eng", "m", changes.clone());
                let report = sandcastle.run(&svc, &diff);
                if !report.passed {
                    CaughtBy::Sandcastle
                } else {
                    let mut fleet = SyntheticFleet::new(5000, 64 + i as u64);
                    fleet.add_effect(effect);
                    let outcome = canary.run(&spec, &compiled[0].json, &mut fleet);
                    if outcome.passed {
                        CaughtBy::Escaped
                    } else if outcome.phases.len() == 1 {
                        CaughtBy::CanarySmall
                    } else {
                        CaughtBy::CanaryCluster
                    }
                }
            }
        };
        *outcomes.entry((itype, caught)).or_insert(0) += 1;
    }
    outcomes
}

/// Renders the campaign as the §6.4 table plus the detection matrix.
pub fn report(n: usize) -> String {
    let mut out = format!(
        "§6.4: configuration-error study ({n} injected bad changes)\n\
         paper mix: Type I 42%, Type II 36%, Type III 22%\n\n"
    );
    for (label, with_cluster) in [
        (
            "canary = 20 servers only (the paper's original spec)",
            false,
        ),
        ("canary = 20 servers + full cluster (the paper's fix)", true),
    ] {
        let outcomes = run(n, with_cluster);
        out.push_str(&format!("--- {label} ---\n"));
        out.push_str("type     validator sandcastle canary20 canaryCluster ESCAPED\n");
        for itype in [
            IncidentType::TypeI,
            IncidentType::TypeII,
            IncidentType::TypeIII,
        ] {
            let get = |c: CaughtBy| outcomes.get(&(itype, c)).copied().unwrap_or(0);
            out.push_str(&format!(
                "{:<8} {:>9} {:>10} {:>8} {:>13} {:>7}\n",
                format!("{itype:?}"),
                get(CaughtBy::Validator),
                get(CaughtBy::Sandcastle),
                get(CaughtBy::CanarySmall),
                get(CaughtBy::CanaryCluster),
                get(CaughtBy::Escaped),
            ));
        }
        let escaped: usize = outcomes
            .iter()
            .filter(|((_, c), _)| *c == CaughtBy::Escaped)
            .map(|(_, n)| n)
            .sum();
        out.push_str(&format!("escaped to production: {escaped}/{n}\n\n"));
    }
    out.push_str(
        "shape: validators stop most Type I; the cluster canary phase is\n\
         what catches Type II load issues (without it they escape — the\n\
         paper's incident); Type III code bugs are caught by canary, not by\n\
         config-side validation, matching the paper's surprise that 22% of\n\
         incidents were code bugs exposed by valid configs.\n",
    );
    out
}
