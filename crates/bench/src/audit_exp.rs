//! `repro audit`: the drift auditor — seed cache faults across the fleet,
//! detect them by fingerprinting against the canonical gitstore state,
//! classify, and repair by targeted resync.
//!
//! The subscription protocol keeps a *healthy* fleet converged, but it is
//! version-keyed end to end: a proxy whose on-disk cache rots underneath it
//! (bit flips, truncated writeback) still advertises the current version,
//! so anti-entropy never re-fetches the bytes; a Laser server whose
//! activated generation is silently rolled back still holds a current feed
//! cursor, so the observer never replays the flip. Both classes are
//! invisible to the protocol and permanent without an auditor.
//!
//! The audit closes the loop: snapshot the leader's canonical `path →
//! (version, bytes)` set, fingerprint every proxy's cache against it,
//! classify each divergence ([`DriftKind::Missing`] / [`DriftKind::Stale`]
//! / [`DriftKind::Corrupt`]), and repair with a targeted
//! [`zeus::proxy::ProxyCmd::Resync`]; Laser activation drift is detected
//! by comparing activated generations across the tier and repaired with
//! [`LaserCtl::Resync`]. The experiment seeds every fault class, requires
//! detection to match the seeded set *exactly* (no false positives on a
//! converged fleet, no misses), and requires a clean final sweep.

use std::collections::BTreeSet;

use bytes::Bytes;
use laser::deploy::{LaserDeployConfig, LaserDeployment};
use laser::server::{LaserCtl, LaserShardServer};
use laser::{feed, metrics as lm};
use packagevessel::deploy::PvDeployment;
use packagevessel::storage::{PeerPolicy, StorageActor};
use simnet::prelude::*;
use zeus::audit::{audit_proxies, repair, CanonicalSet, DriftKind};
use zeus::deploy::{DeployConfig, ZeusDeployment};
use zeus::proxy::ProxyActor;
use zeus::types::{Write, Zxid};

/// Config paths under audit.
const PATHS: usize = 4;
/// When faults are seeded (fleet fully converged well before this).
/// Deliberately off the 500 ms anti-entropy grid: a seed landing exactly
/// on a resubscribe tick lets the protocol heal the missing/stale classes
/// in the same instant, before the audit can observe them.
const SEED_AT_US: u64 = 4_100_000;
/// Detection sweep: 1 ms after seeding, long before the next 500 ms
/// anti-entropy tick could mask the (self-healing) missing/stale classes.
const DETECT_AT_US: u64 = 4_101_000;
/// Final verification sweep.
const VERIFY_AT_US: u64 = 7_000_000;
const HORIZON_US: u64 = 7_200_000;

fn fleet_path(i: usize) -> String {
    format!("fleet/{i}")
}

fn v2_bytes(i: usize) -> Bytes {
    Bytes::from(format!("v2-{i}"))
}

/// One seeded or detected drift instance, in canonical string form so the
/// seeded and detected sets compare exactly.
fn key(node: NodeId, path: &str, kind: DriftKind) -> String {
    format!("{node} {path} {kind}")
}

/// Everything one run produces.
pub struct AuditOutcome {
    /// Seeded proxy-cache faults, canonical form.
    pub seeded: BTreeSet<String>,
    /// Faults the detection sweep found, canonical form.
    pub detected: BTreeSet<String>,
    /// Laser servers whose activation was rolled back / detected stale.
    pub laser_seeded: usize,
    pub laser_detected: usize,
    /// Findings left at the final sweep (proxy caches).
    pub remaining: usize,
    /// Laser servers still below the tier's newest generation at the end.
    pub laser_remaining: usize,
    /// Counters worth reporting.
    pub counters: Vec<(&'static str, u64)>,
}

impl AuditOutcome {
    /// Detection exact, repair complete.
    pub fn ok(&self) -> bool {
        !self.seeded.is_empty()
            && self.seeded == self.detected
            && self.laser_seeded > 0
            && self.laser_detected == self.laser_seeded
            && self.remaining == 0
            && self.laser_remaining == 0
    }
}

pub fn run(seed: u64) -> AuditOutcome {
    let topo = Topology::symmetric(2, 2, 8);
    let mut sim = Sim::new(topo, NetConfig::datacenter(), seed);
    let zeus = ZeusDeployment::install(
        &mut sim,
        &DeployConfig {
            ensemble_size: 3,
            observers_per_cluster: 1,
            subscriptions: (0..PATHS).map(fleet_path).collect(),
            ..DeployConfig::default()
        },
    );
    // Carve the Laser tier and a PV storage node out of the proxy pool;
    // what remains are the cache proxies under audit.
    let mut pool = zeus.proxies.clone();
    let storage = pool.remove(0);
    let candidates: Vec<NodeId> = (0..4).map(|_| pool.remove(0)).collect();
    let proxies = pool;
    sim.add_actor(
        storage,
        Box::new(StorageActor::new(PeerPolicy::LocalityAware)),
    );
    let laser = LaserDeployment::install(
        &mut sim,
        &LaserDeployConfig {
            shards: 2,
            replicas: 2,
            candidates,
            observers: zeus.observers.clone(),
            stream_datasets: Vec::new(),
            bulk_datasets: vec!["ranker".into()],
            memory_cap: 4096,
            pv_window: 4,
        },
    );

    // Two generations of fleet config: the stale class needs real history
    // (a stale cache holds v1 bytes under v1's version — a *consistent*
    // past state, which only comparison against the canonical set reveals).
    for i in 0..PATHS {
        let p = fleet_path(i);
        zeus.write_current(&mut sim, SimTime(300_000), &p, format!("v1-{i}"));
        zeus.write_current(&mut sim, SimTime(1_200_000), &p, v2_bytes(i));
    }
    // One bulk generation for the Laser tier, re-announced until it lands.
    let bulk_cfg = feed::bulk_path("ranker");
    let entries: Vec<(String, f64)> = (0..32).map(|i| (format!("item-{i}"), 1.0)).collect();
    let meta = PvDeployment::publish_bytes(
        &mut sim,
        storage,
        &bulk_cfg,
        1,
        Bytes::from(feed::encode_entries(&entries)),
        256,
        SimTime(500_000),
    );
    for at in [600_000u64, 1_100_000, 1_600_000, 2_100_000] {
        zeus.write_current(
            &mut sim,
            SimTime(at),
            &bulk_cfg,
            feed::encode_bulk_meta(&meta),
        );
    }

    // Seed every drift class on a converged fleet.
    let seeded_cell = std::rc::Rc::new(std::cell::RefCell::new(BTreeSet::new()));
    let laser_seeded_cell = std::rc::Rc::new(std::cell::RefCell::new(0usize));
    {
        let targets = proxies[..6].to_vec();
        let servers = laser.servers.clone();
        let seeded = std::rc::Rc::clone(&seeded_cell);
        let laser_seeded = std::rc::Rc::clone(&laser_seeded_cell);
        sim.schedule(SimTime(SEED_AT_US), move |s| {
            let mut sd = seeded.borrow_mut();
            for (slot, i) in [(0usize, 0usize), (1, 1)] {
                let p = targets[slot];
                if let Some(a) = s.actor_mut::<ProxyActor>(p) {
                    if a.disk_cache_mut()
                        .seed_corruption(&fleet_path(i), Bytes::from_static(b"bitrot"))
                    {
                        sd.insert(key(p, &fleet_path(i), DriftKind::Corrupt));
                    }
                }
            }
            for (slot, i) in [(2usize, 2usize), (3, 3)] {
                let p = targets[slot];
                if let Some(a) = s.actor_mut::<ProxyActor>(p) {
                    if a.disk_cache_mut().seed_missing(&fleet_path(i)) {
                        sd.insert(key(p, &fleet_path(i), DriftKind::Missing));
                    }
                }
            }
            for (slot, i) in [(4usize, 0usize), (5, 1)] {
                let p = targets[slot];
                if let Some(a) = s.actor_mut::<ProxyActor>(p) {
                    a.disk_cache_mut().seed_stale(Write {
                        zxid: Zxid {
                            epoch: 1,
                            counter: 1,
                        },
                        path: fleet_path(i),
                        data: Bytes::from(format!("v1-{i}")),
                        origin: SimTime::ZERO,
                        trace: None,
                    });
                    sd.insert(key(p, &fleet_path(i), DriftKind::Stale));
                }
            }
            let mut ls = laser_seeded.borrow_mut();
            for &n in &servers[..2] {
                if let Some(srv) = s.actor_mut::<LaserShardServer>(n) {
                    if srv.seed_stale_activation("ranker") {
                        *ls += 1;
                    }
                }
            }
        });
    }

    // Detection sweep: fingerprint, classify, repair.
    let detected_cell = std::rc::Rc::new(std::cell::RefCell::new(BTreeSet::new()));
    let laser_detected_cell = std::rc::Rc::new(std::cell::RefCell::new(0usize));
    {
        let ensemble = zeus.ensemble.clone();
        let proxies = proxies.clone();
        let servers = laser.servers.clone();
        let detected = std::rc::Rc::clone(&detected_cell);
        let laser_detected = std::rc::Rc::clone(&laser_detected_cell);
        sim.schedule(SimTime(DETECT_AT_US), move |s| {
            let canon =
                CanonicalSet::from_leader(s, &ensemble, "fleet/").expect("leader up (no chaos)");
            let findings = audit_proxies(s, &proxies, &canon);
            let mut d = detected.borrow_mut();
            for f in &findings {
                d.insert(key(f.node, &f.path, f.kind));
            }
            repair(s, &findings);
            // Laser tier: a server below the tier's newest activated
            // generation with a current feed cursor is activation drift.
            let newest = servers
                .iter()
                .filter_map(|&n| s.actor::<LaserShardServer>(n))
                .map(|srv| srv.activated_version("ranker"))
                .max()
                .unwrap_or(0);
            let mut ld = laser_detected.borrow_mut();
            let now = s.now();
            for &n in &servers {
                let stale = s
                    .actor::<LaserShardServer>(n)
                    .is_some_and(|srv| srv.activated_version("ranker") < newest);
                if stale {
                    *ld += 1;
                    s.post(
                        now,
                        n,
                        n,
                        Box::new(LaserCtl::Resync {
                            path: bulk_cfg.clone(),
                        }),
                    );
                }
            }
        });
    }

    // Final verification sweep.
    let remaining_cell = std::rc::Rc::new(std::cell::RefCell::new((0usize, 0usize)));
    {
        let ensemble = zeus.ensemble.clone();
        let proxies = proxies.clone();
        let servers = laser.servers.clone();
        let remaining = std::rc::Rc::clone(&remaining_cell);
        sim.schedule(SimTime(VERIFY_AT_US), move |s| {
            let canon =
                CanonicalSet::from_leader(s, &ensemble, "fleet/").expect("leader up (no chaos)");
            let findings = audit_proxies(s, &proxies, &canon);
            let newest = servers
                .iter()
                .filter_map(|&n| s.actor::<LaserShardServer>(n))
                .map(|srv| srv.activated_version("ranker"))
                .max()
                .unwrap_or(0);
            let laser_behind = servers
                .iter()
                .filter(|&&n| {
                    s.actor::<LaserShardServer>(n)
                        .is_some_and(|srv| srv.activated_version("ranker") < newest)
                })
                .count();
            *remaining.borrow_mut() = (findings.len(), laser_behind);
        });
    }

    sim.run_until(SimTime(HORIZON_US));

    let (remaining, laser_remaining) = *remaining_cell.borrow();
    let counters = [
        zeus::metrics::audit::DRIFT_MISSING,
        zeus::metrics::audit::DRIFT_STALE,
        zeus::metrics::audit::DRIFT_CORRUPT,
        zeus::metrics::audit::REPAIRS,
        zeus::metrics::PROXY_RESYNCS,
        lm::RESYNCS,
    ]
    .iter()
    .map(|&n| (n, sim.metrics().counter(n)))
    .collect();
    let outcome = AuditOutcome {
        seeded: seeded_cell.borrow().clone(),
        detected: detected_cell.borrow().clone(),
        laser_seeded: *laser_seeded_cell.borrow(),
        laser_detected: *laser_detected_cell.borrow(),
        remaining,
        laser_remaining,
        counters,
    };
    outcome
}

/// `repro audit`: one seeded run, reported deterministically
/// (golden-gated by `scripts/check.sh`).
pub fn report(seed: u64) -> String {
    let o = run(seed);
    let mut out = format!(
        "drift audit — seed {seed}\n\
         fleet: 2 regions × 2 clusters × 8 servers; 3-node ensemble, 1 observer/cluster\n\
         laser: 2 shards × 2 replicas, 1 bulk dataset; {PATHS} audited config paths\n\
         seeded at {:.1}s on a converged fleet; detected at +1ms; verified at {:.1}s\n\n",
        SEED_AT_US as f64 / 1e6,
        VERIFY_AT_US as f64 / 1e6,
    );
    out.push_str("seeded proxy-cache drift:\n");
    for s in &o.seeded {
        out.push_str(&format!("  {s}\n"));
    }
    out.push_str(&format!(
        "seeded laser activation drift: {} servers\n\ndetected:\n",
        o.laser_seeded
    ));
    for d in &o.detected {
        let mark = if o.seeded.contains(d) {
            ""
        } else {
            "  (FALSE POSITIVE)"
        };
        out.push_str(&format!("  {d}{mark}\n"));
    }
    for s in o.seeded.difference(&o.detected) {
        out.push_str(&format!("  MISSED: {s}\n"));
    }
    out.push_str(&format!(
        "detected laser activation drift: {} servers\n\ncounters:\n",
        o.laser_detected
    ));
    for (n, v) in &o.counters {
        out.push_str(&format!("  {n:<24} {v}\n"));
    }
    out.push_str(&format!(
        "\nfinal sweep: {} proxy findings, {} laser servers behind\n\
         detection: {} — {}/{} proxy faults, {}/{} laser faults, {} false positives\n\
         repair: {} — fleet {}\n\noverall: {}\n",
        o.remaining,
        o.laser_remaining,
        if o.detected == o.seeded && o.laser_detected == o.laser_seeded {
            "PASS"
        } else {
            "FAIL"
        },
        o.detected.intersection(&o.seeded).count(),
        o.seeded.len(),
        o.laser_detected,
        o.laser_seeded,
        o.detected.difference(&o.seeded).count(),
        if o.remaining == 0 && o.laser_remaining == 0 {
            "PASS"
        } else {
            "FAIL"
        },
        if o.remaining == 0 && o.laser_remaining == 0 {
            "clean"
        } else {
            "still drifted"
        },
        if o.ok() { "PASS" } else { "FAIL" },
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detects_and_repairs_every_seeded_fault() {
        let o = run(2);
        assert_eq!(o.seeded.len(), 6, "all six proxy faults seeded");
        assert_eq!(o.laser_seeded, 2, "both laser faults seeded");
        assert_eq!(
            o.detected, o.seeded,
            "detection must match the seeded set exactly (no misses, no false positives)"
        );
        assert_eq!(o.laser_detected, 2);
        assert_eq!(o.remaining, 0, "final proxy sweep clean");
        assert_eq!(o.laser_remaining, 0, "laser tier re-activated");
        assert!(o.ok());
    }

    #[test]
    fn audit_report_is_deterministic_per_seed() {
        assert_eq!(report(1), report(1));
    }
}
