//! `repro chaos`: a seeded fault-injection campaign over the Zeus
//! distribution pipeline.
//!
//! Each scenario deploys a full leader → observer → proxy tree on a
//! three-region fleet, generates a [`ChaosPlan`] from the scenario seed
//! (leader/follower/observer/proxy crash windows, symmetric and one-way
//! region partitions, and message drop/delay windows), keeps a write
//! workload flowing throughout, and checks four invariants at every
//! quiesce point:
//!
//! * **no-acked-write-lost** — a write committed at a leader survives every
//!   election (safety);
//! * **monotonic-applies** — replicas apply in zxid order and never diverge
//!   on a zxid's content (safety);
//! * **proxy-convergence** — after the final heal, every proxy converges to
//!   the leader's head values (liveness, with measured convergence time);
//! * **disk-cache-availability** — on-disk cached configs stay readable and
//!   never regress, even while their proxy is crashed (§3.4's fallback).
//!
//! Scenarios are deterministic per seed: a failing seed printed by the
//! campaign replays exactly with `repro chaos --seed <n>`.

use bytes::Bytes;
use simnet::chaos::{run_plan, ChaosConfig, ChaosPlan, Invariant, Verdict};
use simnet::prelude::*;
use zeus::deploy::{DeployConfig, ZeusDeployment};
use zeus::invariants::{
    DiskCacheAvailability, MonotonicApplies, NoAckedWriteLost, ProxyConvergence,
};

/// Config paths the workload writes and every proxy subscribes to.
const PATHS: usize = 4;
/// One write every this many microseconds while the plan is active.
const WRITE_PERIOD_US: u64 = 400_000;

/// The outcome of one seeded scenario.
pub struct ScenarioOutcome {
    /// The scenario seed (replayable).
    pub seed: u64,
    /// Human-readable injected faults.
    pub faults: Vec<String>,
    /// Per-invariant verdicts.
    pub verdicts: Vec<Verdict>,
    /// Quiesce points at which the safety invariants ran.
    pub checkpoints: usize,
    /// Counters worth reporting (commits, elections, failovers, ...).
    pub counters: Vec<(&'static str, u64)>,
    /// End-to-end propagation percentiles from the `zeus.propagation_s`
    /// histogram, preformatted; `None` when no proxy applied any write.
    pub propagation: Option<String>,
}

impl ScenarioOutcome {
    /// Whether every invariant held.
    pub fn ok(&self) -> bool {
        self.verdicts.iter().all(Verdict::ok)
    }
}

/// Runs one seeded scenario to completion.
pub fn run_scenario(seed: u64) -> ScenarioOutcome {
    run_scenario_impl(seed, false).0
}

/// Runs one seeded scenario and exports every counter and histogram in
/// Prometheus text exposition format. Byte-deterministic per seed — this
/// is the snapshot `scripts/check.sh` diffs against checked-in goldens.
pub fn export_metrics(seed: u64) -> String {
    let (_, sim) = run_scenario_impl(seed, false);
    sim.metrics().export_prometheus()
}

fn run_scenario_impl(seed: u64, verbose: bool) -> (ScenarioOutcome, Sim) {
    let topo = Topology::symmetric(3, 2, 8);
    let mut sim = Sim::new(topo, NetConfig::datacenter(), seed);
    let cfg = DeployConfig {
        ensemble_size: 5,
        observers_per_cluster: 2,
        subscriptions: (0..PATHS).map(|i| format!("chaos/{i}")).collect(),
        ..DeployConfig::default()
    };
    let zeus = ZeusDeployment::install(&mut sim, &cfg);

    // Fault candidates cover every tier of the pipeline.
    let chaos_cfg = ChaosConfig {
        crash_candidates: vec![
            ("leader".into(), zeus.ensemble[0]),
            ("follower".into(), zeus.ensemble[1]),
            ("follower".into(), zeus.ensemble[3]),
            ("observer".into(), zeus.observers[0]),
            ("observer".into(), zeus.observers[zeus.observers.len() / 2]),
            ("proxy".into(), zeus.proxies[0]),
            ("proxy".into(), zeus.proxies[1]),
        ],
        regions: 3,
        ..ChaosConfig::default()
    };
    let plan = ChaosPlan::generate(seed, &chaos_cfg);

    // Write workload: spans warmup, the fault windows, and the last stretch
    // before the horizon, cycling over the subscribed paths. Routed to
    // whichever ensemble member leads when each write fires.
    let first = 1_000_000u64; // 1s
    let last = plan.horizon.as_micros().saturating_sub(2_000_000);
    let mut at = first;
    let mut seq = 0u64;
    while at < last {
        zeus.write_current(
            &mut sim,
            SimTime(at),
            &format!("chaos/{}", seq as usize % PATHS),
            Bytes::from(format!("v{seq}-s{seed}")),
        );
        at += WRITE_PERIOD_US;
        seq += 1;
    }

    let replicas: Vec<NodeId> = zeus
        .ensemble
        .iter()
        .chain(zeus.observers.iter())
        .copied()
        .collect();
    let mut invariants: Vec<Box<dyn Invariant>> = vec![
        Box::new(NoAckedWriteLost::new(zeus.ensemble.clone(), "chaos/")),
        Box::new(MonotonicApplies::new(replicas)),
        Box::new(ProxyConvergence::new(
            zeus.ensemble.clone(),
            zeus.proxies.clone(),
            "chaos/",
            // Convergence lag is measured from the moment the last fault
            // actually heals (not the padded plan horizon).
            plan.faults
                .iter()
                .map(|f| f.until)
                .max()
                .unwrap_or(plan.horizon),
        )),
        Box::new(DiskCacheAvailability::new(zeus.proxies.clone(), "chaos/")),
    ];

    let report = run_plan(
        &mut sim,
        &plan,
        &mut invariants,
        SimDuration::from_millis(500),
        SimDuration::from_secs(10),
    );

    let counters = [
        zeus::metrics::COMMITS,
        zeus::metrics::LEADER_ELECTIONS,
        zeus::metrics::LEADER_STEPDOWNS,
        zeus::metrics::REPROPOSED_ON_ELECTION,
        zeus::metrics::TRUNCATED_UNCOMMITTED,
        zeus::metrics::APPEND_RETRANSMITS,
        zeus::metrics::OBSERVER_GAP_RESYNCS,
        zeus::metrics::SYNC_REDIRECTS,
        zeus::metrics::PROXY_FAILOVERS,
        zeus::metrics::PROXY_FAILOVER_EXHAUSTED,
        simnet::stats::names::DROPPED_CHAOS,
        simnet::stats::names::DELAYED_CHAOS,
        simnet::stats::names::CHAOS_CLOCK_SKEWS,
        simnet::stats::names::CHAOS_STALLS,
        simnet::stats::names::STALL_DEFERRED,
    ]
    .iter()
    .map(|&name| (name, sim.metrics().counter(name)))
    .filter(|(_, v)| *v > 0)
    .collect();

    if verbose {
        eprintln!("final ensemble state (seed {seed}):");
        for &n in &zeus.ensemble {
            if let Some(a) = sim.actor::<zeus::EnsembleActor>(n) {
                let heads: Vec<String> = (0..PATHS)
                    .map(|i| {
                        let p = format!("chaos/{i}");
                        match a.store().get(&p) {
                            Some(w) => format!("{}", w.zxid),
                            None => "-".into(),
                        }
                    })
                    .collect();
                eprintln!(
                    "  {n}: up={} leader={} epoch={} committed={} contig={} applied={} heads=[{}]",
                    sim.is_up(n),
                    a.is_leader(),
                    a.epoch(),
                    a.committed(),
                    a.contiguous(),
                    a.store().last_applied(),
                    heads.join(" ")
                );
            }
        }
    }

    let propagation = sim
        .metrics()
        .histogram(zeus::metrics::PROPAGATION_S)
        .map(|h| {
            format!(
                "propagation n={} p50={:.3}s p90={:.3}s p99={:.3}s p999={:.3}s",
                h.count(),
                h.quantile_secs(0.50),
                h.quantile_secs(0.90),
                h.quantile_secs(0.99),
                h.quantile_secs(0.999),
            )
        });

    let outcome = ScenarioOutcome {
        seed,
        faults: plan.describe(),
        verdicts: report.verdicts,
        checkpoints: report.checkpoints,
        counters,
        propagation,
    };
    (outcome, sim)
}

fn verdict_line(v: &Verdict) -> String {
    match (&v.failure, &v.note) {
        (Some(msg), _) => {
            let at = v
                .failed_at
                .map(|t| format!(" at {:.1}s", t.as_secs_f64()))
                .unwrap_or_default();
            format!("  FAIL {}{at}: {msg}", v.name)
        }
        (None, Some(note)) => format!("  ok   {} ({note})", v.name),
        (None, None) => format!("  ok   {}", v.name),
    }
}

/// Runs `scenarios` seeded scenarios and summarizes their verdicts. Failing
/// seeds are listed for replay.
pub fn campaign(scenarios: u64) -> String {
    let mut out = format!(
        "chaos campaign: {scenarios} seeded scenarios over a 3-region fleet\n\
         (5-node ensemble, 12 observers, 31 proxies; crashes at every tier,\n\
         symmetric and one-way region partitions, message drop/delay,\n\
         clock skew, process stalls; 4 invariants per scenario)\n\n"
    );
    let mut failing: Vec<u64> = Vec::new();
    for seed in 1..=scenarios {
        let o = run_scenario(seed);
        let faults = if o.faults.is_empty() {
            "no faults drawn".to_string()
        } else {
            o.faults.join("; ")
        };
        let convergence = o
            .verdicts
            .iter()
            .find(|v| v.name == "proxy-convergence")
            .and_then(|v| v.note.clone())
            .map(|n| format!(" — {n}"))
            .unwrap_or_default();
        let propagation = o
            .propagation
            .as_deref()
            .map(|p| format!("\n          {p}"))
            .unwrap_or_default();
        if o.ok() {
            out.push_str(&format!(
                "seed {seed:>3}: OK   {faults}{convergence}{propagation}\n"
            ));
        } else {
            failing.push(seed);
            out.push_str(&format!("seed {seed:>3}: FAIL {faults}\n"));
            for v in o.verdicts.iter().filter(|v| !v.ok()) {
                out.push_str(&verdict_line(v));
                out.push('\n');
            }
        }
    }
    out.push_str(&format!(
        "\n{}/{scenarios} scenarios passed all 4 invariants\n",
        scenarios - failing.len() as u64
    ));
    if !failing.is_empty() {
        let seeds: Vec<String> = failing.iter().map(u64::to_string).collect();
        out.push_str(&format!(
            "FAILING SEEDS: {} — replay with `repro chaos --seed <n>`\n",
            seeds.join(" ")
        ));
    }
    out
}

/// Replays a single seed verbosely (fault schedule, per-invariant verdicts,
/// and protocol counters).
pub fn replay(seed: u64) -> String {
    let (o, _) = run_scenario_impl(seed, true);
    let mut out = format!(
        "chaos scenario seed {seed} — {}\n\ninjected faults:\n",
        if o.ok() {
            "all invariants held"
        } else {
            "INVARIANT VIOLATION"
        }
    );
    if o.faults.is_empty() {
        out.push_str("  (none drawn for this seed)\n");
    }
    for f in &o.faults {
        out.push_str(&format!("  {f}\n"));
    }
    out.push_str(&format!("\ninvariants ({} checkpoints):\n", o.checkpoints));
    for v in &o.verdicts {
        out.push_str(&verdict_line(v));
        out.push('\n');
    }
    out.push_str("\ncounters:\n");
    for (name, v) in &o.counters {
        out.push_str(&format!("  {name:<32} {v}\n"));
    }
    if let Some(p) = &o.propagation {
        out.push_str(&format!("\n{p}\n"));
    }
    out
}
