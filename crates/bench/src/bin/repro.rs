//! `repro` — regenerates every table and figure from the paper.
//!
//! Usage:
//!
//! ```text
//! repro list                 # show available experiments
//! repro <name> [--full]      # run one experiment (e.g. `repro fig13`)
//! repro all [--full]         # run everything in order
//! repro chaos [--seed <n>]   # chaos campaign, or replay one seed verbosely
//! repro trace [--seed <n>] [--chaos]
//!                            # per-commit propagation waterfalls
//! repro metrics [--seed <n>] [--chaos]
//!                            # Prometheus-format metrics dump
//! repro losssweep [--seed <n>]
//!                            # bytes-on-wire under loss: batched vs baseline
//! repro laser [--seed <n>]   # Laser serving tier: hedged vs unhedged reads
//! repro canary [--seed <n>]  # fleet rollout pipeline under chaos: staged
//!                            # canary phases, auto-rollback, drift audit
//! repro audit [--seed <n>]   # drift auditor: seed cache faults, detect,
//!                            # classify, repair
//! repro compile [--full]     # parallel + incremental compile pipeline
//!                            # (deterministic report on stdout, timings on
//!                            # stderr)
//! repro verify [--check]     # static-verifier gate: seeded-bad commits
//!                            # replayed through plan()'s pre-commit verify
//!                            # pass; catch-rate table + repair-hint demo.
//!                            # --check omits the per-commit log
//!                            # (byte-deterministic, golden-gated)
//! repro perf [--check]       # simnet self-profiler benchmark: events/sec
//!                            # at three fleet sizes, hot-actor tables,
//!                            # folded stacks; writes BENCH_simnet.json.
//!                            # --check prints only virtual-time fields
//!                            # (byte-deterministic, golden-gated)
//! repro fleet [--check] [--mobile <clients>]
//!                            # paper-scale diurnal replay: 1k–100k-node
//!                            # propagation-delay tables; appends the
//!                            # fleet_runs section of BENCH_simnet.json.
//!                            # --check prints only virtual-time fields
//!                            # for the 1k/5k/100k sizes
//!                            # (byte-deterministic, golden-gated).
//!                            # --mobile models that many MobileConfig
//!                            # pull clients as per-cluster population
//!                            # cohorts over the 1k fleet and reports
//!                            # per-cohort staleness percentiles
//! repro health [--seed <n>]  # ODS fleet health plane: per-tier rollups +
//!                            # multi-window SLO burn rates under chaos
//! repro storm [--seed <n>]   # observer mass-restart reconnect storm under
//!                            # decorrelated-jitter backoff
//! ```
//!
//! `--full` uses the larger scale quoted in `EXPERIMENTS.md`; the default
//! small scale finishes each experiment in seconds to a couple of minutes.

use bench::{run_experiment, Scale, ALL};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let full = args.iter().any(|a| a == "--full");
    let seed: Option<u64> = match args.iter().position(|a| a == "--seed") {
        None => None,
        Some(i) => match args.get(i + 1).map(|v| v.parse::<u64>()) {
            Some(Ok(n)) => Some(n),
            // A typo'd seed must not silently fall back to the full
            // campaign — the flag exists to replay one failing scenario.
            _ => {
                eprintln!("error: --seed requires an integer value");
                std::process::exit(2);
            }
        },
    };
    let mut skip_next = false;
    let names: Vec<&str> = args
        .iter()
        .filter(|a| {
            if skip_next {
                skip_next = false;
                return false;
            }
            if *a == "--seed" {
                skip_next = true;
                return false;
            }
            !a.starts_with("--")
        })
        .map(String::as_str)
        .collect();
    let scale = if full { Scale::Full } else { Scale::Small };

    if names.first().copied() == Some("chaos") {
        if let Some(seed) = seed {
            banner("chaos");
            println!("{}", bench::chaos_exp::replay(seed));
            return;
        }
    }

    let chaos_flag = args.iter().any(|a| a == "--chaos");
    match names.first().copied() {
        Some("losssweep") => {
            banner("losssweep");
            println!("{}", bench::loss_exp::losssweep(seed.unwrap_or(1)));
            return;
        }
        Some("laser") => {
            banner("laser");
            println!("{}", bench::laser_exp::laser(seed.unwrap_or(1)));
            return;
        }
        Some("canary") => {
            banner("canary");
            println!("{}", bench::canary_exp::report(seed.unwrap_or(1)));
            return;
        }
        Some("audit") => {
            banner("audit");
            println!("{}", bench::audit_exp::report(seed.unwrap_or(1)));
            return;
        }
        Some("perf") => {
            let check = args.iter().any(|a| a == "--check");
            banner("perf");
            println!("{}", bench::perf_exp::perf(check));
            return;
        }
        Some("fleet") => {
            let check = args.iter().any(|a| a == "--check");
            let mobile: Option<u64> = match args.iter().position(|a| a == "--mobile") {
                None => None,
                Some(i) => match args.get(i + 1).map(|v| v.parse::<u64>()) {
                    Some(Ok(n)) => Some(n),
                    // A typo'd client count must not silently run the
                    // ordinary fleet sweep instead.
                    _ => {
                        eprintln!("error: --mobile requires an integer value");
                        std::process::exit(2);
                    }
                },
            };
            banner("fleet");
            match mobile {
                Some(clients) => println!("{}", bench::fleet_exp::fleet_mobile(clients)),
                None => println!("{}", bench::fleet_exp::fleet(check)),
            }
            return;
        }
        Some("verify") => {
            let check = args.iter().any(|a| a == "--check");
            banner("verify");
            println!("{}", bench::verify_exp::verify(check));
            return;
        }
        Some("health") => {
            banner("health");
            println!("{}", bench::health_exp::report(seed.unwrap_or(1)));
            return;
        }
        Some("storm") => {
            banner("storm");
            println!("{}", bench::storm_exp::report(seed.unwrap_or(1)));
            return;
        }
        Some("trace") => {
            banner("trace");
            println!("{}", bench::trace_exp::trace(seed.unwrap_or(1), chaos_flag));
            return;
        }
        Some("metrics") => {
            // No banner: the output is a machine-diffable metrics snapshot
            // (scripts/check.sh compares it byte-for-byte against goldens).
            let seed = seed.unwrap_or(1);
            if chaos_flag {
                print!("{}", bench::chaos_exp::export_metrics(seed));
            } else {
                print!("{}", bench::trace_exp::metrics(seed, false));
            }
            return;
        }
        _ => {}
    }

    match names.first().copied() {
        None | Some("list") => {
            eprintln!("experiments:");
            for n in ALL {
                eprintln!("  {n}");
            }
            eprintln!("\nusage: repro <name>|all [--full]");
        }
        Some("all") => {
            for n in ALL {
                banner(n);
                match run_experiment(n, scale) {
                    Some(report) => println!("{report}"),
                    None => eprintln!("unknown experiment: {n}"),
                }
            }
        }
        Some(name) => match run_experiment(name, scale) {
            Some(report) => {
                banner(name);
                println!("{report}");
            }
            None => {
                eprintln!("unknown experiment: {name} (try `repro list`)");
                std::process::exit(2);
            }
        },
    }
}

fn banner(name: &str) {
    println!("==============================================================");
    println!("== {name}");
    println!("==============================================================");
}
