//! `repro` — regenerates every table and figure from the paper.
//!
//! Usage:
//!
//! ```text
//! repro list                 # show available experiments
//! repro <name> [--full]      # run one experiment (e.g. `repro fig13`)
//! repro all [--full]         # run everything in order
//! ```
//!
//! `--full` uses the larger scale quoted in `EXPERIMENTS.md`; the default
//! small scale finishes each experiment in seconds to a couple of minutes.

use bench::{run_experiment, Scale, ALL};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let full = args.iter().any(|a| a == "--full");
    let names: Vec<&str> = args.iter().filter(|a| !a.starts_with("--")).map(String::as_str).collect();
    let scale = if full { Scale::Full } else { Scale::Small };

    match names.first().copied() {
        None | Some("list") => {
            eprintln!("experiments:");
            for n in ALL {
                eprintln!("  {n}");
            }
            eprintln!("\nusage: repro <name>|all [--full]");
        }
        Some("all") => {
            for n in ALL {
                banner(n);
                match run_experiment(n, scale) {
                    Some(report) => println!("{report}"),
                    None => eprintln!("unknown experiment: {n}"),
                }
            }
        }
        Some(name) => match run_experiment(name, scale) {
            Some(report) => {
                banner(name);
                println!("{report}");
            }
            None => {
                eprintln!("unknown experiment: {name} (try `repro list`)");
                std::process::exit(2);
            }
        },
    }
}

fn banner(name: &str) {
    println!("==============================================================");
    println!("== {name}");
    println!("==============================================================");
}
