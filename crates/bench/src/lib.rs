//! # bench — the experiment harness
//!
//! One module per experiment from the paper's evaluation (see the index in
//! `DESIGN.md` and the results log in `EXPERIMENTS.md`). The `repro`
//! binary dispatches to these; the Criterion benches reuse the same
//! implementations for the measured kernels.

pub mod audit_exp;
pub mod bench_json;
pub mod canary_exp;
pub mod chaos_exp;
pub mod compile_exp;
pub mod distribution;
pub mod fig13;
pub mod fleet_exp;
pub mod gatekeeper_exp;
pub mod health_exp;
pub mod incidents;
pub mod laser_exp;
pub mod loss_exp;
pub mod mobile;
pub mod perf_exp;
pub mod stats_figs;
pub mod storm_exp;
pub mod trace_exp;
pub mod verify_exp;

/// Scale presets for experiments.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Fast: minutes of wall time, smaller fleets and repositories.
    Small,
    /// Full: the sizes quoted in `EXPERIMENTS.md`.
    Full,
}

impl Scale {
    /// Config-population size for the statistics figures.
    pub fn configs(self) -> usize {
        match self {
            Scale::Small => 30_000,
            Scale::Full => 200_000,
        }
    }

    /// Servers per cluster for fleet simulations.
    pub fn servers_per_cluster(self) -> usize {
        match self {
            Scale::Small => 60,
            Scale::Full => 300,
        }
    }
}

/// Runs one named experiment and returns its report.
pub fn run_experiment(name: &str, scale: Scale) -> Option<String> {
    let s = scale;
    Some(match name {
        "fig7" => stats_figs::fig7(s.configs()),
        "fig8" => stats_figs::fig8(s.configs()),
        "fig9" => stats_figs::fig9(s.configs()),
        "fig10" => stats_figs::fig10(s.configs()),
        "fig11" => stats_figs::fig11(),
        "fig12" => stats_figs::fig12(),
        "fig13" => fig13::fig13(s == Scale::Full),
        "fig14" => distribution::fig14(s.servers_per_cluster()),
        "fig15" => gatekeeper_exp::fig15(),
        "table1" => stats_figs::table1(s.configs()),
        "table2" => stats_figs::table2(s.configs()),
        "table3" => stats_figs::table3(s.configs()),
        "headline" => stats_figs::headline(s.configs()),
        "incidents" => incidents::report(match s {
            Scale::Small => 60,
            Scale::Full => 200,
        }),
        "pushpull" => distribution::pushpull(s.servers_per_cluster()),
        "packagevessel" => distribution::packagevessel(
            s.servers_per_cluster(),
            match s {
                Scale::Small => 128,
                Scale::Full => 512,
            },
        ),
        "tree_vs_pv" => distribution::tree_vs_pv(s.servers_per_cluster().min(100)),
        "contention" => fig13::contention(16, 8),
        "partitioning" => fig13::partitioning(
            match s {
                Scale::Small => 40_000,
                Scale::Full => 150_000,
            },
            4,
            40,
        ),
        "gk_opt" => gatekeeper_exp::optimizer_ablation(),
        "rollout" => gatekeeper_exp::rollout(),
        "mobile" => mobile::bandwidth(200, 30, 10),
        "canary_timing" => mobile::canary_timing(),
        "canary" => canary_exp::report(1),
        "audit" => audit_exp::report(1),
        "chaos" => chaos_exp::campaign(match s {
            Scale::Small => 24,
            Scale::Full => 60,
        }),
        "losssweep" => loss_exp::losssweep(1),
        "laser" => laser_exp::laser(1),
        "compile" => compile_exp::compile(s),
        "verify" => verify_exp::verify(false),
        "perf" => perf_exp::perf(false),
        "fleet" => fleet_exp::fleet(false),
        "health" => health_exp::report(1),
        "storm" => storm_exp::report(1),
        _ => return None,
    })
}

/// All experiment names, in presentation order.
pub const ALL: &[&str] = &[
    "fig7",
    "fig8",
    "table1",
    "table2",
    "table3",
    "fig9",
    "fig10",
    "headline",
    "fig11",
    "fig12",
    "fig13",
    "contention",
    "partitioning",
    "fig14",
    "pushpull",
    "packagevessel",
    "tree_vs_pv",
    "fig15",
    "gk_opt",
    "rollout",
    "incidents",
    "mobile",
    "canary_timing",
    "canary",
    "audit",
    "chaos",
    "losssweep",
    "laser",
    "compile",
    "verify",
    "perf",
    "fleet",
    "health",
    "storm",
];
