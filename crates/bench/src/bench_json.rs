//! The single writer for `BENCH_simnet.json`.
//!
//! Two experiments feed the perf trajectory file: `repro perf` (the
//! three-size profiler benchmark, `"runs"`) and `repro fleet` (the
//! paper-scale diurnal replay, `"fleet_runs"`). Each regenerates only its
//! own section; this module re-renders the whole document so one run never
//! clobbers the other's rows. Rendering is deterministic (fixed field
//! order, fixed float precision), so round-tripping a section through
//! [`load`] and [`render`] is byte-stable.

use std::fmt::Write as _;

use serde_json::Value;

/// Where the trajectory file lives (repo root; `repro` runs from there).
pub const PATH: &str = "BENCH_simnet.json";

/// One `"runs"` row: a profiler benchmark fleet.
#[derive(Debug, Clone, PartialEq)]
pub struct PerfRow {
    /// Fleet label (`small` / `medium` / `large`).
    pub fleet: String,
    /// Node count.
    pub nodes: u64,
    /// Events processed (virtual; deterministic).
    pub events: u64,
    /// Wall-clock throughput (machine-dependent).
    pub events_per_sec: f64,
    /// Wall-clock run time in milliseconds (machine-dependent).
    pub wall_ms: f64,
    /// Peak event-queue depth (virtual; deterministic).
    pub peak_queue_depth: u64,
    /// Mean event-queue depth (virtual; deterministic).
    pub mean_queue_depth: f64,
    /// Per-subsystem handler wall-time shares, descending.
    pub subsystem_wall_shares: Vec<(String, f64)>,
}

/// One `"fleet_runs"` row: a paper-scale diurnal replay.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetRow {
    /// Fleet label (`1k` / `5k` / `20k` / `50k` / `100k`).
    pub fleet: String,
    /// Node count.
    pub nodes: u64,
    /// Events processed (virtual; deterministic).
    pub events: u64,
    /// Wall-clock run time in milliseconds (machine-dependent).
    pub wall_ms: f64,
    /// Wall-clock throughput (machine-dependent).
    pub events_per_sec: f64,
    /// Config writes committed during the replay.
    pub writes: u64,
    /// Proxy cache applications (notify deliveries that landed).
    pub proxy_updates: u64,
    /// Number of raw propagation samples behind the percentile table (one
    /// per (write, proxy) landing). Makes tables at different fleet sizes
    /// comparable: rank-interpolated percentiles from 131 samples and from
    /// 13 million are both honest once the count is printed next to them.
    pub samples: u64,
    /// Propagation-delay distribution in milliseconds of virtual time
    /// (deterministic): p50, p90, p99, p999, max — rank-interpolated from
    /// the raw sample series, not bucketed.
    pub propagation_ms: [f64; 5],
}

fn fmt_f(x: f64, prec: usize) -> String {
    format!("{x:.prec$}")
}

/// Renders the whole document. `runs` may be empty only while the perf
/// benchmark has never run; `fleet_runs` is omitted entirely when empty so
/// pre-fleet consumers see the original shape.
pub fn render(runs: &[PerfRow], fleet_runs: &[FleetRow]) -> String {
    let mut out = String::from("{\n  \"benchmark\": \"simnet_events_per_sec\",\n  \"runs\": [\n");
    for (i, r) in runs.iter().enumerate() {
        let shares: Vec<String> = r
            .subsystem_wall_shares
            .iter()
            .map(|(k, s)| format!("      \"{k}\": {}", fmt_f(*s, 4)))
            .collect();
        let _ = write!(
            out,
            "    {{\n      \"fleet\": \"{}\",\n      \"nodes\": {},\n      \"events\": {},\n      \"events_per_sec\": {},\n      \"wall_ms\": {},\n      \"peak_queue_depth\": {},\n      \"mean_queue_depth\": {},\n      \"subsystem_wall_shares\": {{\n{}\n      }}\n    }}",
            r.fleet,
            r.nodes,
            r.events,
            fmt_f(r.events_per_sec, 1),
            fmt_f(r.wall_ms, 2),
            r.peak_queue_depth,
            fmt_f(r.mean_queue_depth, 2),
            shares.join(",\n")
        );
        out.push_str(if i + 1 < runs.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]");
    if !fleet_runs.is_empty() {
        out.push_str(",\n  \"fleet_runs\": [\n");
        for (i, r) in fleet_runs.iter().enumerate() {
            let _ = write!(
                out,
                "    {{\n      \"fleet\": \"{}\",\n      \"nodes\": {},\n      \"events\": {},\n      \"events_per_sec\": {},\n      \"wall_ms\": {},\n      \"writes\": {},\n      \"proxy_updates\": {},\n      \"samples\": {},\n      \"propagation_ms\": {{\n        \"p50\": {},\n        \"p90\": {},\n        \"p99\": {},\n        \"p999\": {},\n        \"max\": {}\n      }}\n    }}",
                r.fleet,
                r.nodes,
                r.events,
                fmt_f(r.events_per_sec, 1),
                fmt_f(r.wall_ms, 2),
                r.writes,
                r.proxy_updates,
                r.samples,
                fmt_f(r.propagation_ms[0], 3),
                fmt_f(r.propagation_ms[1], 3),
                fmt_f(r.propagation_ms[2], 3),
                fmt_f(r.propagation_ms[3], 3),
                fmt_f(r.propagation_ms[4], 3),
            );
            out.push_str(if i + 1 < fleet_runs.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        out.push_str("  ]");
    }
    out.push_str("\n}\n");
    out
}

fn get_u64(run: &serde_json::Value, field: &str) -> Option<u64> {
    run.as_object()?.get(field)?.as_f64().map(|x| x as u64)
}

fn get_f64(run: &serde_json::Value, field: &str) -> Option<f64> {
    run.as_object()?.get(field)?.as_f64()
}

fn parse_perf_row(run: &Value) -> Option<PerfRow> {
    let obj = run.as_object()?;
    let mut shares: Vec<(String, f64)> = obj
        .get("subsystem_wall_shares")?
        .as_object()?
        .iter()
        .map(|(k, v)| (k.clone(), v.as_f64().unwrap_or(0.0)))
        .collect();
    // The renderer keeps shares descending; the parsed object is
    // key-sorted, so restore the descending-by-share order (name
    // tie-break) the original writer used.
    shares.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then(a.0.cmp(&b.0)));
    Some(PerfRow {
        fleet: obj.get("fleet")?.as_str()?.to_string(),
        nodes: get_u64(run, "nodes")?,
        events: get_u64(run, "events")?,
        events_per_sec: get_f64(run, "events_per_sec")?,
        wall_ms: get_f64(run, "wall_ms")?,
        peak_queue_depth: get_u64(run, "peak_queue_depth")?,
        mean_queue_depth: get_f64(run, "mean_queue_depth")?,
        subsystem_wall_shares: shares,
    })
}

fn parse_fleet_row(run: &Value) -> Option<FleetRow> {
    let obj = run.as_object()?;
    let p = obj.get("propagation_ms")?.as_object()?;
    let q = |k: &str| p.get(k).and_then(Value::as_f64);
    Some(FleetRow {
        fleet: obj.get("fleet")?.as_str()?.to_string(),
        nodes: get_u64(run, "nodes")?,
        events: get_u64(run, "events")?,
        wall_ms: get_f64(run, "wall_ms")?,
        events_per_sec: get_f64(run, "events_per_sec")?,
        writes: get_u64(run, "writes")?,
        proxy_updates: get_u64(run, "proxy_updates")?,
        samples: get_u64(run, "samples")?,
        propagation_ms: [q("p50")?, q("p90")?, q("p99")?, q("p999")?, q("max")?],
    })
}

/// Parses an existing trajectory file leniently: a missing file, parse
/// failure, or malformed section yields empty rows for that section (the
/// next write simply regenerates it).
pub fn load(path: &str) -> (Vec<PerfRow>, Vec<FleetRow>) {
    let Ok(text) = std::fs::read_to_string(path) else {
        return (Vec::new(), Vec::new());
    };
    let Ok(v) = serde_json::from_str::<Value>(&text) else {
        return (Vec::new(), Vec::new());
    };
    let rows = |key: &str| -> Vec<Value> {
        v.as_object()
            .and_then(|o| o.get(key))
            .and_then(Value::as_array)
            .cloned()
            .unwrap_or_default()
    };
    let perf: Option<Vec<PerfRow>> = rows("runs").iter().map(parse_perf_row).collect();
    let fleet: Option<Vec<FleetRow>> = rows("fleet_runs").iter().map(parse_fleet_row).collect();
    (perf.unwrap_or_default(), fleet.unwrap_or_default())
}

/// Rewrites the `"runs"` section, preserving any `"fleet_runs"` rows.
pub fn write_perf(path: &str, runs: &[PerfRow]) -> std::io::Result<()> {
    let (_, fleet) = load(path);
    std::fs::write(path, render(runs, &fleet))
}

/// Rewrites the `"fleet_runs"` section, preserving any `"runs"` rows.
pub fn write_fleet(path: &str, fleet_runs: &[FleetRow]) -> std::io::Result<()> {
    let (perf, _) = load(path);
    std::fs::write(path, render(&perf, fleet_runs))
}

/// Validates the document against the trajectory schema by parsing it
/// back: top-level `benchmark` + `runs` (>= 3 fleets with the required
/// numeric fields and a nonempty shares map), and — when present —
/// `fleet_runs` rows with the required numeric fields and the five
/// propagation quantiles. Returns an error string on the first violation.
pub fn validate(text: &str) -> Result<(), String> {
    let v: Value = serde_json::from_str(text).map_err(|e| format!("unparseable: {e:?}"))?;
    let obj = v.as_object().ok_or("top level is not an object")?;
    match obj.get("benchmark").and_then(|b| b.as_str()) {
        Some("simnet_events_per_sec") => {}
        _ => return Err("benchmark name missing or wrong".into()),
    }
    let runs = obj
        .get("runs")
        .and_then(|r| r.as_array())
        .ok_or("runs is not an array")?;
    if runs.len() < 3 {
        return Err(format!("need >= 3 fleet sizes, got {}", runs.len()));
    }
    for (i, run) in runs.iter().enumerate() {
        let ro = run.as_object().ok_or(format!("run {i} not an object"))?;
        ro.get("fleet")
            .and_then(|f| f.as_str())
            .ok_or(format!("run {i} missing fleet"))?;
        for field in [
            "nodes",
            "events",
            "events_per_sec",
            "wall_ms",
            "peak_queue_depth",
            "mean_queue_depth",
        ] {
            let x = get_f64(run, field).ok_or(format!("run {i} missing numeric {field}"))?;
            if !x.is_finite() || x < 0.0 {
                return Err(format!("run {i} field {field} not a finite non-negative"));
            }
        }
        let shares = ro
            .get("subsystem_wall_shares")
            .and_then(|s| s.as_object())
            .ok_or(format!("run {i} missing subsystem_wall_shares"))?;
        if shares.is_empty() {
            return Err(format!("run {i} has no subsystem shares"));
        }
    }
    if let Some(fr) = obj.get("fleet_runs") {
        let fleet_runs = fr.as_array().ok_or("fleet_runs is not an array")?;
        if fleet_runs.is_empty() {
            return Err("fleet_runs present but empty".into());
        }
        for (i, run) in fleet_runs.iter().enumerate() {
            if parse_fleet_row(run).is_none() {
                return Err(format!("fleet_run {i} missing required fields"));
            }
            for field in ["nodes", "events", "events_per_sec", "wall_ms"] {
                let x = get_f64(run, field).ok_or(format!("fleet_run {i} missing {field}"))?;
                if !x.is_finite() || x < 0.0 {
                    return Err(format!("fleet_run {i} field {field} invalid"));
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn perf_row(name: &str) -> PerfRow {
        PerfRow {
            fleet: name.to_string(),
            nodes: 32,
            events: 1000,
            events_per_sec: 123456.7,
            wall_ms: 8.1,
            peak_queue_depth: 40,
            mean_queue_depth: 19.25,
            subsystem_wall_shares: vec![("zeus.proxy".into(), 0.75), ("driver".into(), 0.25)],
        }
    }

    fn fleet_row(name: &str, nodes: u64) -> FleetRow {
        FleetRow {
            fleet: name.to_string(),
            nodes,
            events: 5000,
            wall_ms: 12.5,
            events_per_sec: 400000.0,
            writes: 296,
            proxy_updates: 1184,
            samples: 1184,
            propagation_ms: [3.125, 44.0, 81.5, 95.25, 120.0],
        }
    }

    #[test]
    fn sections_survive_each_other() {
        let dir = std::env::temp_dir().join("bench_json_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("BENCH_simnet.json");
        let path = path.to_str().unwrap();
        let perf: Vec<PerfRow> = ["small", "medium", "large"]
            .iter()
            .map(|n| perf_row(n))
            .collect();
        write_perf(path, &perf).unwrap();
        let fleet = vec![fleet_row("1k", 1008), fleet_row("5k", 5040)];
        write_fleet(path, &fleet).unwrap();
        // Re-writing perf must keep the fleet rows, and vice versa.
        write_perf(path, &perf).unwrap();
        let (p2, f2) = load(path);
        assert_eq!(p2, perf);
        assert_eq!(f2, fleet);
        let text = std::fs::read_to_string(path).unwrap();
        validate(&text).expect("schema-valid");
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn roundtrip_is_byte_stable() {
        let perf: Vec<PerfRow> = ["a", "b", "c"].iter().map(|n| perf_row(n)).collect();
        let fleet = vec![fleet_row("1k", 1008)];
        let once = render(&perf, &fleet);
        let dir = std::env::temp_dir().join("bench_json_roundtrip");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("BENCH_simnet.json");
        std::fs::write(&path, &once).unwrap();
        let (p, f) = load(path.to_str().unwrap());
        assert_eq!(render(&p, &f), once, "load→render must be byte-stable");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn validate_rejects_malformed() {
        assert!(validate("{}").is_err());
        assert!(validate("{\"benchmark\": \"simnet_events_per_sec\", \"runs\": []}").is_err());
        let perf: Vec<PerfRow> = ["a", "b", "c"].iter().map(|n| perf_row(n)).collect();
        assert!(validate(&render(&perf, &[])).is_ok());
    }
}
