//! §5 experiments: MobileConfig bandwidth accounting and the canary
//! timing note from §6.3.

use gatekeeper::context::UserContext;
use gatekeeper::experiment::ParamValue;
use gatekeeper::project::Project;
use gatekeeper::runtime::Runtime;
use mobileconfig::{
    Binding, FieldType, MobileConfigClient, MobileConfigServer, MobileSchema, TranslationLayer,
};

/// §5 ablation: hash-based delta sync vs resending values on every poll.
pub fn bandwidth(clients: usize, polls_per_client: usize, change_every: usize) -> String {
    let schema = MobileSchema::new(
        "MainApp",
        &[
            ("feature_x", FieldType::Bool),
            ("feed_batch", FieldType::Int),
            ("greeting", FieldType::Str),
            ("upload_quality", FieldType::Float),
        ],
    );
    let mut t = TranslationLayer::new();
    t.bind(
        "MainApp",
        "feature_x",
        Binding::Gatekeeper {
            project: "X".into(),
        },
    );
    t.bind(
        "MainApp",
        "feed_batch",
        Binding::Constant(ParamValue::Int(20)),
    );
    t.bind(
        "MainApp",
        "greeting",
        Binding::Constant(ParamValue::Str("hello there".into())),
    );
    t.bind(
        "MainApp",
        "upload_quality",
        Binding::Constant(ParamValue::Float(0.8)),
    );
    let mut gk = Runtime::new(laser::Laser::new(16));
    gk.update_project(Project::fraction_launch("X", 0.0));
    let mut server = MobileConfigServer::new(t, gk);
    server.register_schema(schema.clone());

    let mut devices: Vec<MobileConfigClient> = (0..clients)
        .map(|i| MobileConfigClient::new(UserContext::with_id(i as u64), schema.clone()))
        .collect();

    let mut with_hash = 0u64;
    let mut changed_polls = 0u64;
    let mut launched = 0.0;
    for round in 0..polls_per_client {
        if round > 0 && round % change_every == 0 {
            // A config change between polls (expanding a rollout).
            launched = (launched + 0.25f64).min(1.0);
            server
                .gatekeeper_mut()
                .update_project(Project::fraction_launch("X", launched));
        }
        for d in &mut devices {
            let o = d.poll(&mut server);
            with_hash += o.bytes;
            changed_polls += o.changed as u64;
        }
    }
    // Without hash suppression, every poll would pay the full-values reply:
    // compute that size once from a fresh client (its first poll is full).
    let mut probe = MobileConfigClient::new(UserContext::with_id(999_999), schema.clone());
    let full = probe.poll(&mut server).bytes;
    let naive = full * (clients * polls_per_client) as u64;
    let total_polls = (clients * polls_per_client) as u64;
    format!(
        "§5 ablation: hash-based delta sync vs full transfer\n\
         ({clients} devices × {polls_per_client} polls, config changes every {change_every} polls)\n\
         polls with changes     : {changed_polls}/{total_polls}\n\
         bytes with hash sync   : {with_hash}\n\
         bytes resending always : {naive}\n\
         savings                : ×{:.1}\n\
         paper: \"To minimize the bandwidth consumption, the client sends\n\
         ... the hash of the config schema and the hash of the config\n\
         values ... the server sends back only the configs that have\n\
         changed.\"\n",
        naive as f64 / with_hash.max(1) as f64
    )
}

/// §6.3 note: canary phases dominate end-to-end config change time.
pub fn canary_timing() -> String {
    use configerator::canary::{CanaryService, CanarySpec, SyntheticFleet};
    // The paper budgets ~10 minutes of canary observation. Our phases model
    // observation windows; we report the spec's implied wall time.
    let spec = CanarySpec::standard(2000);
    let mut fleet = SyntheticFleet::new(5000, 5);
    let start = std::time::Instant::now();
    let outcome = CanaryService.run(&spec, "{\"ok\":1}", &mut fleet);
    let sim_cost = start.elapsed().as_secs_f64();
    // Production observation windows (the paper's ~10 minutes total).
    let prod_minutes = [5.0, 5.0];
    format!(
        "§6.3: canary timing\n\
         phases: {} (all passed: {})\n\
         production observation windows: {:?} min ≈ 10 min total (paper)\n\
         harness compute cost: {sim_cost:.2}s — the 10 minutes is waiting\n\
         for trustworthy health data, not computation; this is why commit\n\
         latency (Fig 14) is \"less critical for Configerator\".\n",
        outcome.phases.len(),
        outcome.passed,
        prod_minutes,
    )
}
