//! `repro trace` / `repro metrics`: the end-to-end propagation timeline
//! explorer and the Prometheus-style metrics dump.
//!
//! One seeded run drives the *whole* pipeline from the paper's Figure 2:
//! an engineer's diff enters the landing strip, lands in the git
//! repository, is picked up by the git tailer, and is handed to Zeus for
//! distribution — leader propose, quorum commit, observer fan-out, proxy
//! apply. Every stage records a span into [`simnet::Tracer`], with the
//! trace context riding inside the Zeus protocol messages, so a commit's
//! journey stays causally linked across retransmissions, elections, and
//! observer failovers.
//!
//! `repro trace --seed <n>` renders one waterfall per commit: each hop
//! with its node and sim-time delta from the mutator's commit, fan-out
//! hops (follower appends, observer applies, proxy applies) aggregated
//! with first/last deltas, and every retry/drop annotation tallied.
//! `--chaos` overlays the same seeded fault plan used by `repro chaos`,
//! which is where the waterfalls get interesting: retransmit storms,
//! re-proposals after elections, and proxies that apply seconds late via
//! observer failover.
//!
//! Two delivery legs extend each waterfall past the proxy tier. A
//! MobileConfig device polls the translation layer once a second; the
//! poll that first observes a commit's payload appends a `mobile.pull`
//! span (with the delta-sync byte count) to that commit's trace. And a
//! PackageVessel bulk package published to the Laser tier gets its own
//! trace: `pv.publish` roots it, the `laser-bulk/<dataset>` metadata
//! announcements ride Zeus under it, and each shard server's atomic
//! generation flip appends a `laser.bulk_activate` span.
//!
//! `repro metrics --seed <n>` runs the same pipeline and dumps every
//! counter and HDR histogram in Prometheus text exposition format. The
//! output is byte-deterministic per seed — `scripts/check.sh` diffs it
//! against checked-in goldens.

use std::cell::RefCell;
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::rc::Rc;

use bytes::Bytes;
use configerator::landing::{LandingStrip, SourceDiff};
use configerator::service::ConfigeratorService;
use configerator::tailer::GitTailer;
use gatekeeper::context::UserContext;
use gatekeeper::experiment::ParamValue;
use gatekeeper::runtime::Runtime;
use laser::deploy::{LaserDeployConfig, LaserDeployment};
use laser::feed;
use mobileconfig::{
    Binding, FieldType, MobileConfigClient, MobileConfigServer, MobileSchema, TranslationLayer,
};
use packagevessel::deploy::PvDeployment;
use packagevessel::storage::{PeerPolicy, StorageActor};
use simnet::chaos::ChaosConfig;
use simnet::prelude::*;
use simnet::trace::RecordKind;
use zeus::deploy::{DeployConfig, ZeusDeployment};

/// Driver-side hop names (the configerator front-end runs in-process, off
/// the actor plane, so these spans carry no node).
const HOP_MUTATOR: &str = "mutator.commit";
const HOP_LANDING: &str = "landing.land";
const HOP_GITSTORE: &str = "gitstore.commit";
const HOP_TAILER: &str = "tailer.pickup";
/// A mobile client's delta-sync poll observes the commit on a device (§5).
const HOP_MOBILE_PULL: &str = "mobile.pull";
/// Bulk-package publication to the PackageVessel storage tier (§3.5).
const HOP_PV_PUBLISH: &str = "pv.publish";

/// Distinct config paths the commits cycle over.
const PATHS: usize = 2;
/// Number of commits pushed through the pipeline.
const COMMITS: usize = 6;
/// First commit time and inter-commit spacing.
const FIRST_COMMIT_US: u64 = 1_000_000;
const COMMIT_PERIOD_US: u64 = 3_000_000;
/// The landing strip processes its queue this long after submission
/// (review + continuous-integration latency, collapsed to a constant).
const LANDING_DELAY_US: u64 = 300_000;
/// Git tailer poll period.
const TAILER_PERIOD_US: u64 = 500_000;
/// Mobile device delta-sync poll period.
const MOBILE_POLL_US: u64 = 1_000_000;
/// When the bulk package is published to the storage tier.
const BULK_PUBLISH_US: u64 = 2_000_000;
/// Bulk metadata re-announcement period (a retrying publisher: a one-shot
/// proposal during an election window would silently vanish).
const BULK_ANNOUNCE_US: u64 = 1_000_000;
/// The Laser bulk dataset the package targets.
const BULK_DATASET: &str = "assets";
/// Keys in the published bulk generation.
const BULK_KEYS: usize = 24;

/// The in-process configerator front-end plus the bookkeeping that links
/// its commits to trace contexts. Shared across `Sim::schedule` closures.
struct Front {
    svc: ConfigeratorService,
    strip: LandingStrip,
    tailer: GitTailer,
    /// Root contexts for submitted-but-not-landed diffs, in strip order.
    queued_roots: VecDeque<TraceCtx>,
    /// Distribution name → context of the `gitstore.commit` span, consumed
    /// by the tailer tick that first sees the commit.
    landed: HashMap<String, TraceCtx>,
    /// Distribution name → (expected payload, tailer-pickup context) for
    /// commits handed to Zeus but not yet observed by the mobile device.
    /// BTreeMap so the poll tick visits pending names deterministically;
    /// a newer commit to the same name supersedes the older entry.
    mobile_pending: BTreeMap<String, (Bytes, TraceCtx)>,
    /// The translation layer currently served to devices; rebound when the
    /// watched proxy applies a commit, then pushed to the server.
    translation: TranslationLayer,
    mserver: MobileConfigServer,
    mclient: MobileConfigClient,
}

/// The mobile schema field carrying config `name` ("trace/0" → "path_0").
fn mobile_field(name: &str) -> String {
    format!("path_{}", name.rsplit('/').next().unwrap_or(name))
}

/// Builds the device-facing stack: one schema with a string field per
/// config path, every field bound to a constant the poll tick rebinds as
/// commits reach the watched proxy.
fn mobile_stack() -> (TranslationLayer, MobileConfigServer, MobileConfigClient) {
    let fields: Vec<String> = (0..PATHS).map(|i| mobile_field(&dist_name(i))).collect();
    let field_refs: Vec<(&str, FieldType)> = fields
        .iter()
        .map(|f| (f.as_str(), FieldType::Str))
        .collect();
    let schema = MobileSchema::new("TraceApp", &field_refs);
    let mut translation = TranslationLayer::new();
    for f in &fields {
        translation.bind(
            "TraceApp",
            f,
            Binding::Constant(ParamValue::Str(String::new())),
        );
    }
    let mut mserver =
        MobileConfigServer::new(translation.clone(), Runtime::new(laser::Laser::new(16)));
    mserver.register_schema(schema.clone());
    let mclient = MobileConfigClient::new(UserContext::with_id(7), schema);
    (translation, mserver, mclient)
}

fn source_path(i: usize) -> String {
    format!("trace/{}.cconf", i % PATHS)
}

fn dist_name(i: usize) -> String {
    format!("trace/{}", i % PATHS)
}

/// Builds the fleet, schedules the commit workload and tailer ticks, and
/// runs to the horizon. Returns the finished simulation.
fn run_pipeline(seed: u64, chaos: bool) -> Sim {
    let topo = Topology::symmetric(3, 2, 8);
    let mut sim = Sim::new(topo, NetConfig::datacenter(), seed);
    let cfg = DeployConfig {
        ensemble_size: 5,
        observers_per_cluster: 2,
        subscriptions: (0..PATHS).map(dist_name).collect(),
        ..DeployConfig::default()
    };
    let zeus = ZeusDeployment::install(&mut sim, &cfg);

    // Carve the delivery-leg roles from the tail of the proxy pool, far
    // from the chaos crash candidates at the front: a PackageVessel
    // storage node, two Laser shard servers, and the proxy the mobile
    // poll tick watches for commit arrival.
    let np = zeus.proxies.len();
    let storage = zeus.proxies[np - 1];
    let laser_candidates = vec![zeus.proxies[np - 2], zeus.proxies[np - 3]];
    let watch_proxy = zeus.proxies[np - 4];
    sim.add_actor(
        storage,
        Box::new(StorageActor::new(PeerPolicy::LocalityAware)),
    );
    let laser_tier = LaserDeployment::install(
        &mut sim,
        &LaserDeployConfig {
            shards: 2,
            replicas: 1,
            candidates: laser_candidates,
            observers: zeus.observers.clone(),
            stream_datasets: Vec::new(),
            bulk_datasets: vec![BULK_DATASET.into()],
            memory_cap: 4096,
            pv_window: 4,
        },
    );

    let mut horizon = SimTime(FIRST_COMMIT_US + COMMITS as u64 * COMMIT_PERIOD_US + 10_000_000);
    if chaos {
        let chaos_cfg = ChaosConfig {
            crash_candidates: vec![
                ("leader".into(), zeus.ensemble[0]),
                ("follower".into(), zeus.ensemble[1]),
                ("observer".into(), zeus.observers[0]),
                ("observer".into(), zeus.observers[zeus.observers.len() / 2]),
                ("proxy".into(), zeus.proxies[0]),
            ],
            regions: 3,
            ..ChaosConfig::default()
        };
        let plan = ChaosPlan::generate(seed, &chaos_cfg);
        plan.apply(&mut sim);
        // Leave room after the last heal for failovers and convergence.
        horizon = horizon.max(plan.horizon + SimDuration::from_secs(15));
    }

    let (translation, mserver, mclient) = mobile_stack();
    let front = Rc::new(RefCell::new(Front {
        svc: ConfigeratorService::new(),
        strip: LandingStrip::new(),
        tailer: GitTailer::new(),
        queued_roots: VecDeque::new(),
        landed: HashMap::new(),
        mobile_pending: BTreeMap::new(),
        translation,
        mserver,
        mclient,
    }));

    // Commit workload: author a diff, submit it to the landing strip, and
    // land it a fixed review delay later.
    for i in 0..COMMITS {
        let at = SimTime(FIRST_COMMIT_US + i as u64 * COMMIT_PERIOD_US);
        let fr = Rc::clone(&front);
        sim.schedule(at, move |s| {
            let mut f = fr.borrow_mut();
            let now = s.now();
            let name = dist_name(i);
            let root = s.tracer_mut().start(
                name,
                HOP_MUTATOR,
                None,
                now,
                vec![("author", "alice".into()), ("rev", format!("v{i}"))],
            );
            let changes: BTreeMap<String, Option<String>> = [(
                source_path(i),
                Some(format!("export_if_last({})", 1000 + i)),
            )]
            .into_iter()
            .collect();
            let diff = SourceDiff::against(&f.svc, "alice", &format!("rev v{i}"), changes);
            f.strip.submit(diff);
            f.queued_roots.push_back(root);
        });
        let fr = Rc::clone(&front);
        sim.schedule(at + SimDuration::from_micros(LANDING_DELAY_US), move |s| {
            let mut f = fr.borrow_mut();
            let f = &mut *f;
            let Some(outcome) = f.strip.process_one(&mut f.svc) else {
                return;
            };
            let Some(root) = f.queued_roots.pop_front() else {
                return;
            };
            let now = s.now();
            match outcome {
                Ok(report) => {
                    let land = s.tracer_mut().child(
                        root,
                        HOP_LANDING,
                        None,
                        now,
                        vec![("author", "alice".into())],
                    );
                    let git = s.tracer_mut().child(
                        land,
                        HOP_GITSTORE,
                        None,
                        now,
                        vec![("configs", report.updated_configs.len().to_string())],
                    );
                    for name in report.updated_configs {
                        f.landed.insert(name, git);
                    }
                }
                Err((_, e)) => {
                    s.tracer_mut().annot(
                        root,
                        "landing.bounce",
                        None,
                        now,
                        vec![("error", e.to_string())],
                    );
                }
            }
        });
    }

    // Tailer ticks: drain the repository and hand fresh updates to Zeus,
    // re-rooting each commit's trace at its pickup span so the whole
    // distribution leg parents under the tailer.
    let zeus_handle = zeus.clone();
    let mut tick = TAILER_PERIOD_US;
    while tick < horizon.0 {
        let fr = Rc::clone(&front);
        let dep = zeus_handle.clone();
        sim.schedule(SimTime(tick), move |s| {
            let updates = {
                let mut f = fr.borrow_mut();
                let f = &mut *f;
                f.tailer.drain(&f.svc)
            };
            for u in updates {
                let now = s.now();
                let ctx = fr.borrow_mut().landed.remove(&u.name).map(|git| {
                    s.tracer_mut().child(
                        git,
                        HOP_TAILER,
                        None,
                        now,
                        vec![("bytes", u.data.len().to_string())],
                    )
                });
                if let Some(ctx) = ctx {
                    fr.borrow_mut()
                        .mobile_pending
                        .insert(u.name.clone(), (u.data.clone(), ctx));
                }
                dep.write_current_traced(s, now, &u.name, u.data, ctx);
            }
        });
        tick += TAILER_PERIOD_US;
    }

    // Mobile poll ticks: once the watched proxy has applied a pending
    // commit's payload, rebind that path's translation constant and poll
    // the device — the delta-sync reply closes the commit's waterfall
    // with a `mobile.pull` span carrying the transfer size.
    let mut tick = MOBILE_POLL_US;
    while tick < horizon.0 {
        let fr = Rc::clone(&front);
        sim.schedule(SimTime(tick), move |s| {
            let now = s.now();
            let mut f = fr.borrow_mut();
            let f = &mut *f;
            let ready: Vec<String> = f
                .mobile_pending
                .iter()
                .filter(|(name, (data, _))| {
                    s.actor::<zeus::ProxyActor>(watch_proxy)
                        .and_then(|p| p.read(name))
                        .is_some_and(|w| w.data == *data)
                })
                .map(|(name, _)| name.clone())
                .collect();
            for name in ready {
                let (data, ctx) = f.mobile_pending.remove(&name).unwrap();
                let field = mobile_field(&name);
                f.translation.bind(
                    "TraceApp",
                    &field,
                    Binding::Constant(ParamValue::Str(String::from_utf8_lossy(&data).into_owned())),
                );
                f.mserver.update_translation(f.translation.clone());
                let o = f.mclient.poll(&mut f.mserver);
                s.tracer_mut().child(
                    ctx,
                    HOP_MOBILE_PULL,
                    None,
                    now,
                    vec![
                        ("field", field),
                        ("bytes", o.bytes.to_string()),
                        ("changed", o.changed.to_string()),
                    ],
                );
            }
        });
        tick += MOBILE_POLL_US;
    }

    // Bulk leg: publish one package generation to the storage tier, root
    // its trace at the publish, and announce the metadata through Zeus
    // under that root until every shard server has activated it (the
    // announcements retry because a proposal during an election window is
    // silently lost; servers deduplicate repeats by version).
    let bulk_config = feed::bulk_path(BULK_DATASET);
    let entries: Vec<(String, f64)> = (0..BULK_KEYS)
        .map(|i| (format!("asset-{i}"), 1.0 + i as f64 / 1000.0))
        .collect();
    let data = Bytes::from(feed::encode_entries(&entries));
    let meta = PvDeployment::publish_bytes(
        &mut sim,
        storage,
        &bulk_config,
        1,
        data.clone(),
        256,
        SimTime(BULK_PUBLISH_US),
    );
    let bulk_root = sim.tracer_mut().start(
        bulk_config.clone(),
        HOP_PV_PUBLISH,
        Some(storage),
        SimTime(BULK_PUBLISH_US),
        vec![
            ("bytes", data.len().to_string()),
            ("pieces", meta.num_pieces.to_string()),
            ("version", "1".into()),
        ],
    );
    let meta_bytes = Bytes::from(feed::encode_bulk_meta(&meta));
    let mut tick = BULK_PUBLISH_US + 100_000;
    while tick < horizon.0 {
        let dep = zeus_handle.clone();
        let servers = laser_tier.servers.clone();
        let config = bulk_config.clone();
        let payload = meta_bytes.clone();
        sim.schedule(SimTime(tick), move |s| {
            let activated = servers.iter().all(|&n| {
                s.actor::<laser::server::LaserShardServer>(n)
                    .is_some_and(|a| a.activated_version(BULK_DATASET) >= 1)
            });
            if activated {
                return;
            }
            let now = s.now();
            dep.write_current_traced(s, now, &config, payload.clone(), Some(bulk_root));
        });
        tick += BULK_ANNOUNCE_US;
    }

    sim.run_until(horizon);
    sim
}

fn fmt_delta(d: SimDuration) -> String {
    format!(
        "+{}.{:06}s",
        d.as_micros() / 1_000_000,
        d.as_micros() % 1_000_000
    )
}

fn fmt_node(n: Option<NodeId>) -> String {
    match n {
        Some(n) => format!("n{}", n.0),
        None => "driver".to_string(),
    }
}

/// Renders one commit's propagation waterfall.
fn render_trace(sim: &Sim, trace: TraceId) -> String {
    let tracer = sim.tracer();
    let records = tracer.trace_records(trace);
    let Some(root) = records.first() else {
        return String::new();
    };
    let t0 = root.at;
    let label = tracer.label(trace).unwrap_or("?");

    // Spans grouped by hop name in first-occurrence order; fan-out hops
    // (appends, observer/proxy applies) collapse to one aggregate row.
    let mut order: Vec<&'static str> = Vec::new();
    let mut groups: HashMap<&'static str, Vec<&SpanRecord>> = HashMap::new();
    let mut annots: Vec<&SpanRecord> = Vec::new();
    for r in &records {
        match r.kind {
            RecordKind::Span => {
                if !groups.contains_key(r.name) {
                    order.push(r.name);
                }
                groups.entry(r.name).or_default().push(r);
            }
            RecordKind::Annot => annots.push(r),
        }
    }

    let spans: usize = groups.values().map(Vec::len).sum();
    let mut out = format!("trace {}: {label}  ({spans} spans)\n", trace.0);
    for name in order {
        let rs = &groups[name];
        let first = rs[0];
        let attrs: String = first
            .attrs
            .iter()
            .map(|(k, v)| format!(" {k}={v}"))
            .collect();
        if rs.len() == 1 {
            out.push_str(&format!(
                "  {:>12}  {:<6}  {name}{attrs}\n",
                fmt_delta(first.at - t0),
                fmt_node(first.node),
            ));
        } else {
            let last = rs.iter().map(|r| r.at).max().unwrap_or(first.at);
            out.push_str(&format!(
                "  {:>12}  {:<6}  {name} ×{}  (last {})\n",
                fmt_delta(first.at - t0),
                fmt_node(first.node),
                rs.len(),
                fmt_delta(last - t0),
            ));
        }
    }

    if !annots.is_empty() {
        // Tally annotations by name (plus drop reason), keeping first-seen
        // order for determinism.
        let mut tally_order: Vec<String> = Vec::new();
        let mut tally: HashMap<String, usize> = HashMap::new();
        for a in &annots {
            let reason = a
                .attrs
                .iter()
                .find(|(k, _)| *k == "reason")
                .map(|(_, v)| format!(" ({v})"))
                .unwrap_or_default();
            let key = format!("{}{reason}", a.name);
            if !tally.contains_key(&key) {
                tally_order.push(key.clone());
            }
            *tally.entry(key).or_insert(0) += 1;
        }
        let parts: Vec<String> = tally_order
            .iter()
            .map(|k| format!("{k} ×{}", tally[k]))
            .collect();
        out.push_str(&format!("  retries/faults: {}\n", parts.join(", ")));
    }
    out
}

/// `repro trace`: runs the seeded pipeline and prints one waterfall per
/// commit, plus a propagation-latency summary.
pub fn trace(seed: u64, chaos: bool) -> String {
    let sim = run_pipeline(seed, chaos);
    let mut out = format!(
        "propagation trace — seed {seed}{}\n\
         pipeline: mutator → landing strip → gitstore → tailer → zeus → mobile pull\n\
         bulk leg: packagevessel publish → zeus metadata → laser activation\n\
         fleet: 3 regions × 2 clusters × 8 servers, 5-node ensemble\n\n",
        if chaos { " (chaos overlay)" } else { "" },
    );
    for trace in sim.tracer().traces() {
        out.push_str(&render_trace(&sim, trace));
        out.push('\n');
    }
    out.push_str(&propagation_summary(&sim));
    out
}

/// One-line propagation percentile summary from the proxy-side histogram.
pub fn propagation_summary(sim: &Sim) -> String {
    match sim.metrics().histogram(zeus::metrics::PROPAGATION_S) {
        Some(h) => format!(
            "zeus.propagation_s: n={} p50={:.3}s p90={:.3}s p99={:.3}s p999={:.3}s max={:.3}s\n",
            h.count(),
            h.quantile_secs(0.50),
            h.quantile_secs(0.90),
            h.quantile_secs(0.99),
            h.quantile_secs(0.999),
            h.max_us() as f64 / 1e6,
        ),
        None => "zeus.propagation_s: no samples (no proxy applied any write)\n".to_string(),
    }
}

/// `repro metrics`: runs the seeded pipeline and dumps every counter and
/// histogram in Prometheus text exposition format (byte-deterministic).
pub fn metrics(seed: u64, chaos: bool) -> String {
    let sim = run_pipeline(seed, chaos);
    sim.metrics().export_prometheus()
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet::trace::RecordKind;

    #[test]
    fn healthy_waterfall_covers_every_hop() {
        let sim = run_pipeline(7, false);
        let tracer = sim.tracer();
        let traces = tracer.traces();
        // One trace per commit plus the bulk package's trace.
        assert_eq!(traces.len(), COMMITS + 1);
        for &t in &traces {
            assert!(tracer.orphans(t).is_empty(), "orphan spans in trace {t:?}");
            let names: Vec<&str> = tracer
                .trace_records(t)
                .iter()
                .filter(|r| r.kind == RecordKind::Span)
                .map(|r| r.name)
                .collect();
            let is_bulk = tracer.label(t) == Some(feed::bulk_path(BULK_DATASET).as_str());
            let hops: &[&str] = if is_bulk {
                &[
                    HOP_PV_PUBLISH,
                    zeus::metrics::hops::LEADER_PROPOSE,
                    zeus::metrics::hops::QUORUM_COMMIT,
                    zeus::metrics::hops::OBSERVER_APPLY,
                    laser::metrics::hops::BULK_ACTIVATE,
                ]
            } else {
                &[
                    HOP_MUTATOR,
                    HOP_LANDING,
                    HOP_GITSTORE,
                    HOP_TAILER,
                    zeus::metrics::hops::LEADER_PROPOSE,
                    zeus::metrics::hops::QUORUM_COMMIT,
                    zeus::metrics::hops::OBSERVER_APPLY,
                    zeus::metrics::hops::PROXY_APPLY,
                    HOP_MOBILE_PULL,
                ]
            };
            for hop in hops {
                assert!(names.contains(hop), "trace {t:?} missing hop {hop}");
            }
            if is_bulk {
                // Both shard servers flip the generation atomically, each
                // contributing one activation span.
                let activations = names
                    .iter()
                    .filter(|n| **n == laser::metrics::hops::BULK_ACTIVATE)
                    .count();
                assert_eq!(activations, 2, "expected one activation per server");
            }
        }
        assert_eq!(
            traces
                .iter()
                .filter(|&&t| tracer.label(t) == Some(feed::bulk_path(BULK_DATASET).as_str()))
                .count(),
            1
        );
    }

    #[test]
    fn trace_output_is_deterministic_per_seed() {
        assert_eq!(trace(3, false), trace(3, false));
        assert_eq!(trace(3, true), trace(3, true));
    }

    #[test]
    fn metrics_export_is_deterministic_per_seed() {
        assert_eq!(metrics(5, true), metrics(5, true));
        assert!(metrics(5, false).contains("zeus_propagation_s"));
    }
}
