//! `repro losssweep`: bytes-on-wire under sustained message loss —
//! ack-aware batched retransmission versus the per-write re-broadcast
//! baseline.
//!
//! The heartbeat pacer substitutes for ZAB's FIFO TCP channels on a lossy
//! network: whatever a drop swallowed is re-sent on the next 50 ms tick.
//! The pre-batching pacer re-broadcast the **entire uncommitted tail, one
//! `Append` per write, to every follower — including followers that had
//! already acknowledged** (O(tail × cluster) per tick), and the leader
//! pushed one frame per committed write to every observer. The ack-aware
//! pacer keeps a per-follower cumulative-ack cursor and sends each
//! follower exactly the writes it is missing, as one `AppendBatch` frame;
//! commits ship to each observer as one `ObserverUpdateBatch`, and
//! observers coalesce proxy notifies.
//!
//! Both modes run the same seeded workload at each drop rate — bursty
//! writes, as a config deployment wave produces, which is exactly where
//! the in-order commit point stalls and the uncommitted tail grows. The
//! report compares total bytes-on-wire, frames, retransmitted
//! (follower, write) pairs, the commit→proxy p50/p99, and how many
//! sub-runs converged (every proxy holding the final bytes at the
//! horizon). The output is byte-deterministic per seed
//! (`scripts/check.sh` runs it twice and diffs).

use simnet::prelude::*;
use simnet::stats::names as simnames;
use zeus::deploy::{DeployConfig, ZeusDeployment};
use zeus::ensemble::EnsembleConfig;

/// Drop rates swept, in percent.
const DROPS_PCT: &[u32] = &[0, 10, 30, 50];
/// Distinct config paths the writes cycle over.
const PATHS: usize = 4;
/// Write bursts (deployment waves) pushed through the pipeline.
const BURSTS: usize = 6;
/// Writes per burst.
const BURST: usize = 30;
/// Payload bytes per write (a compiled-config-sized blob).
const PAYLOAD: usize = 2048;
const FIRST_BURST_US: u64 = 1_000_000;
const BURST_PERIOD_US: u64 = 2_000_000;
/// Settle time after the last burst (lets 50%-drop runs drain).
const SETTLE_US: u64 = 20_000_000;
/// Seeded sub-runs merged per (drop, mode) cell: tail percentiles of a
/// single lossy run are dominated by a handful of repair events, so one
/// seed's p99 is noise. Merging histograms and counters across sub-runs
/// keeps the output deterministic while measuring something stable.
const SUBRUNS: u64 = 5;

/// One run's observables.
struct RunStats {
    bytes: u64,
    frames: u64,
    retransmit_pairs: u64,
    commits: u64,
    proxy_updates: u64,
    p50_s: Option<f64>,
    p99_s: Option<f64>,
    /// Sub-runs in which every proxy held the final bytes at the horizon.
    converged_runs: u64,
}

fn path(i: usize) -> String {
    format!("loss/{}", i % PATHS)
}

fn run_once(seed: u64, drop: f64, legacy: bool) -> Metrics {
    let topo = Topology::symmetric(3, 2, 8);
    let mut sim = Sim::new(topo, NetConfig::datacenter(), seed);
    let cfg = DeployConfig {
        ensemble_size: 5,
        observers_per_cluster: 1,
        // One watched path keeps the (mode-independent) notify fan-out
        // from drowning the retransmission traffic under measurement.
        subscriptions: vec![path(0)],
        ensemble: EnsembleConfig {
            legacy_rebroadcast: legacy,
            ..EnsembleConfig::default()
        },
    };
    let zeus = ZeusDeployment::install(&mut sim, &cfg);
    if drop > 0.0 {
        sim.set_link_faults(LinkFaults {
            drop_prob: drop,
            ..LinkFaults::default()
        });
    }
    for b in 0..BURSTS {
        let at = SimTime(FIRST_BURST_US + b as u64 * BURST_PERIOD_US);
        for i in 0..BURST {
            let idx = b * BURST + i;
            zeus.write_current(&mut sim, at, &path(idx), vec![idx as u8; PAYLOAD]);
        }
    }
    let horizon = SimTime(FIRST_BURST_US + BURSTS as u64 * BURST_PERIOD_US + SETTLE_US);
    sim.run_until(horizon);
    // End-state convergence: does every proxy hold the final bytes of the
    // watched path at the horizon? Recorded as a counter so merged cells
    // can assert that repair closed every gap the drops opened.
    let last_idx = (0..BURSTS * BURST).rev().find(|i| i % PATHS == 0).unwrap();
    let expected = vec![last_idx as u8; PAYLOAD];
    if zeus.coverage(&sim, &path(0), &expected) == 1.0 {
        sim.metrics_mut().incr("loss.converged_runs", 1);
    }
    sim.metrics().clone()
}

/// Merges `SUBRUNS` seeded runs of one (drop, mode) cell.
fn run_cell(seed: u64, drop: f64, legacy: bool) -> RunStats {
    let mut merged = Metrics::new();
    for sub in 0..SUBRUNS {
        merged.merge(&run_once(seed + 1000 * sub, drop, legacy));
    }
    RunStats {
        bytes: merged.counter(simnames::BYTES_SENT),
        frames: merged.counter(simnames::MESSAGES_SENT),
        retransmit_pairs: merged.counter(zeus::metrics::APPEND_RETRANSMITS),
        commits: merged.counter(zeus::metrics::COMMITS),
        proxy_updates: merged.counter(zeus::metrics::PROXY_UPDATES),
        p50_s: merged
            .histogram(zeus::metrics::PROPAGATION_S)
            .map(|h| h.quantile_secs(0.50)),
        p99_s: merged
            .histogram(zeus::metrics::PROPAGATION_S)
            .map(|h| h.quantile_secs(0.99)),
        converged_runs: merged.counter("loss.converged_runs"),
    }
}

fn fmt_bytes(b: u64) -> String {
    format!("{:.2} MB", b as f64 / 1e6)
}

fn fmt_p99(p: Option<f64>) -> String {
    match p {
        Some(s) => format!("{s:.3}s"),
        None => "-".to_string(),
    }
}

/// Runs the sweep and renders the comparison table.
pub fn losssweep(seed: u64) -> String {
    let mut out = format!(
        "loss sweep — seed {seed}: ack-aware batched retransmission vs per-write re-broadcast\n\
         fleet: 3 regions × 2 clusters × 8 servers; 5-node ensemble, 1 observer/cluster\n\
         workload: {BURSTS} bursts × {BURST} writes ({PAYLOAD} B payloads) over {PATHS} paths\n\n\
         {:>5}  {:<8} {:>14} {:>9} {:>12} {:>8} {:>10} {:>12} {:>12} {:>10}\n",
        "drop%",
        "mode",
        "bytes-on-wire",
        "frames",
        "retransmits",
        "commits",
        "proxy_upd",
        "commit→p50",
        "commit→p99",
        "converged",
    );
    let mut summary = String::new();
    for &pct in DROPS_PCT {
        let drop = pct as f64 / 100.0;
        let legacy = run_cell(seed, drop, true);
        let batched = run_cell(seed, drop, false);
        for (name, r) in [("legacy", &legacy), ("batched", &batched)] {
            out.push_str(&format!(
                "{pct:>5}  {name:<8} {:>14} {:>9} {:>12} {:>8} {:>10} {:>12} {:>12} {:>10}\n",
                fmt_bytes(r.bytes),
                r.frames,
                r.retransmit_pairs,
                r.commits,
                r.proxy_updates,
                fmt_p99(r.p50_s),
                fmt_p99(r.p99_s),
                format!("{}/{SUBRUNS}", r.converged_runs),
            ));
        }
        let ratio = legacy.bytes as f64 / batched.bytes.max(1) as f64;
        summary.push_str(&format!(
            "{pct:>3}% drop: bytes {} → {} ({ratio:.2}× reduction); retransmits {} → {}; p99 {} → {}\n",
            fmt_bytes(legacy.bytes),
            fmt_bytes(batched.bytes),
            legacy.retransmit_pairs,
            batched.retransmit_pairs,
            fmt_p99(legacy.p99_s),
            fmt_p99(batched.p99_s),
        ));
    }
    out.push('\n');
    out.push_str(&summary);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batched_mode_halves_bytes_at_30_pct_drop() {
        let legacy = run_cell(7, 0.30, true);
        let batched = run_cell(7, 0.30, false);
        assert!(
            legacy.bytes as f64 >= 2.0 * batched.bytes as f64,
            "expected ≥2× bytes reduction at 30% drop: legacy={} batched={}",
            legacy.bytes,
            batched.bytes
        );
        // Delivery must not regress. The batched pipeline lands
        // cache-changing proxy updates, commits at least as much, every
        // sub-run converges (all proxies hold the final bytes at the
        // horizon — repair closed every gap the drops opened), and bulk
        // latency stays at par. The tail is bounded but NOT held to
        // parity: the legacy baseline re-subscribes unconditionally on
        // every healthcheck (an always-on repair probe), while the lease
        // protocol repairs on counter-shortfall detection — under 30%
        // sustained drop that detection handshake costs extra lossy round
        // trips at the extreme tail, the accepted price for eliminating
        // the per-check subscribe storm from the healthy-fleet hot path.
        assert!(batched.proxy_updates > 0);
        assert!(batched.commits >= legacy.commits);
        assert_eq!(
            batched.converged_runs, SUBRUNS,
            "batched sub-runs left a proxy behind"
        );
        assert_eq!(
            legacy.converged_runs, SUBRUNS,
            "legacy sub-runs left a proxy behind"
        );
        let (lp50, bp50) = (legacy.p50_s.unwrap(), batched.p50_s.unwrap());
        assert!(
            bp50 <= lp50 * 1.25,
            "commit→proxy p50 regressed: legacy={lp50:.3}s batched={bp50:.3}s"
        );
        let (lp, bp) = (legacy.p99_s.unwrap(), batched.p99_s.unwrap());
        assert!(
            bp <= lp * 2.0,
            "commit→proxy p99 blew past the detection-repair bound: legacy={lp:.3}s batched={bp:.3}s"
        );
    }

    #[test]
    fn losssweep_is_deterministic_per_seed() {
        assert_eq!(losssweep(3), losssweep(3));
    }
}
