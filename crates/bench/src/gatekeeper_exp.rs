//! Figure 15 (Gatekeeper check throughput) and the cost-based-optimizer
//! ablation (§4).

use std::time::Instant;

use gatekeeper::prelude::*;
use laser::Laser;
use rand::rngs::SmallRng;
use rand::Rng;
use rand::SeedableRng;

/// Builds a realistic mix of projects: mostly cheap field checks, some
/// with Laser-backed restraints.
fn realistic_runtime(projects: usize, users: u64) -> Runtime {
    let mut laser = Laser::new(1 << 16);
    let scores: Vec<(String, f64)> = (0..users)
        .step_by(7)
        .map(|u| (format!("proj0-{u}"), 0.9))
        .collect();
    laser.load_dataset("trending", scores);
    let mut rt = Runtime::new(laser);
    for p in 0..projects {
        let name = format!("proj{p}");
        let rules = match p % 4 {
            0 => vec![
                Rule::new(
                    vec![
                        RestraintSpec::of(RestraintKind::Laser {
                            dataset: "trending".into(),
                            project: "proj0".into(),
                            threshold: 0.5,
                        }),
                        RestraintSpec::of(RestraintKind::Employee),
                    ],
                    1.0,
                ),
                Rule::new(vec![RestraintSpec::of(RestraintKind::Always)], 0.01),
            ],
            1 => vec![Rule::new(
                vec![
                    RestraintSpec::of(RestraintKind::Country(vec!["US".into(), "BR".into()])),
                    RestraintSpec::of(RestraintKind::MinFriends(10)),
                ],
                0.5,
            )],
            2 => vec![Rule::new(
                vec![RestraintSpec::of(RestraintKind::IdMod {
                    modulus: 100,
                    remainder: 3,
                })],
                1.0,
            )],
            _ => vec![Rule::new(
                vec![
                    RestraintSpec::not(RestraintKind::NewUser),
                    RestraintSpec::of(RestraintKind::DeviceModel(vec![
                        "Pixel 6".into(),
                        "iPhone 12".into(),
                    ])),
                ],
                0.1,
            )],
        };
        rt.update_project(Project::new(&name, rules));
    }
    rt
}

fn random_user(rng: &mut SmallRng, users: u64) -> UserContext {
    let id = rng.gen_range(0..users);
    let mut ctx = UserContext::with_id(id).country(if id % 3 == 0 { "US" } else { "IN" });
    ctx.employee = id % 500 == 0;
    ctx.friend_count = (id % 1000) as u32;
    ctx.new_user = id % 20 == 0;
    if id % 2 == 0 {
        ctx = ctx.device("Pixel 6");
    }
    ctx
}

/// Measures single-core check throughput.
pub fn measure_check_rate(checks: usize) -> f64 {
    let users = 100_000u64;
    let mut rt = realistic_runtime(40, users);
    let mut rng = SmallRng::seed_from_u64(15);
    // Warm the optimizer.
    for _ in 0..20_000 {
        let u = random_user(&mut rng, users);
        rt.check(&format!("proj{}", rng.gen_range(0..40)), &u);
    }
    let start = Instant::now();
    for _ in 0..checks {
        let u = random_user(&mut rng, users);
        rt.check(&format!("proj{}", rng.gen_range(0..40)), &u);
    }
    checks as f64 / start.elapsed().as_secs_f64()
}

/// Figure 15: site-wide Gatekeeper check throughput over a week.
///
/// The paper reports billions of checks per second across "hundreds of
/// thousands of servers". We measure the per-core rate of our runtime and
/// extrapolate with the diurnal/weekly traffic shape, printing both the
/// measured constant and the modeled series.
pub fn fig15() -> String {
    let per_core = measure_check_rate(200_000);
    let fleet_cores = 300_000.0 * 32.0; // the paper's fleet scale, 32 cores/server
    let utilization = 0.15; // fraction of CPU in gk checks (a "significant percentage", §6.3)
    let pct = utilization * 100.0;
    let mut out = format!(
        "Figure 15: Gatekeeper check throughput (one week)\n\
         measured single-core rate: {:.2} M checks/s\n\
         modeled fleet: 300k servers × 32 cores × {pct:.0}% gk time\n\n\
         day hour   checks/s (billions)\n",
        per_core / 1e6
    );
    let traffic = |day: u32, hour: u32| -> f64 {
        let weekend = matches!(day % 7, 5 | 6);
        let x = (hour as f64 - 14.0) / 5.0;
        let diurnal = 0.45 + 0.55 * (-0.5 * x * x).exp();
        diurnal * if weekend { 0.8 } else { 1.0 }
    };
    for day in 0..7u32 {
        for hour in (0..24).step_by(4) {
            let rate = per_core * fleet_cores * utilization * traffic(day, hour);
            out.push_str(&format!("  {day}  {hour:02}    {:.2}\n", rate / 1e9));
        }
    }
    out.push_str(
        "\npaper: billions of checks/s with a clear diurnal pattern; the\n\
         extrapolated series lands in the same order of magnitude.\n",
    );
    out
}

/// §4 ablation: cost-based restraint reordering vs declaration order.
pub fn optimizer_ablation() -> String {
    let users = 50_000u64;
    let run = |optimize: bool| {
        let mut rt = realistic_runtime(40, users);
        rt.set_optimize(optimize);
        if optimize {
            rt.set_reoptimize_every(1024);
        }
        let mut rng = SmallRng::seed_from_u64(16);
        let start = Instant::now();
        for _ in 0..300_000 {
            let u = random_user(&mut rng, users);
            rt.check(&format!("proj{}", rng.gen_range(0..40)), &u);
        }
        (start.elapsed().as_secs_f64(), rt.stats())
    };
    let (t_off, s_off) = run(false);
    let (t_on, s_on) = run(true);
    format!(
        "§4 ablation: cost-based boolean-tree optimization\n\
         (300k checks over 40 projects; laser() restraints cost ~100 units)\n\
                          wall time     cost units    restraint evals\n\
         declaration order {:>8.2}s {:>13} {:>16}\n\
         cost-optimized    {:>8.2}s {:>13} {:>16}\n\
         speedup: ×{:.2} wall, ×{:.2} cost units\n\
         paper: \"the Gatekeeper runtime can leverage execution statistics\n\
         ... to guide efficient evaluation of the boolean tree\".\n",
        t_off,
        s_off.cost_units,
        s_off.restraint_evals,
        t_on,
        s_on.cost_units,
        s_on.restraint_evals,
        t_off / t_on,
        s_off.cost_units as f64 / s_on.cost_units as f64,
    )
}

/// §4 staged-rollout demonstration: 1% → 10% → 100% with stickiness.
pub fn rollout() -> String {
    let mut rt = Runtime::new(Laser::new(16));
    let mut out = String::from(
        "§4: staged rollout of ProjectX (employees → 1% → 10% → 100%)\n\n\
         stage                pass rate   previous users kept\n",
    );
    let users: Vec<UserContext> = (0..20_000u64)
        .map(|u| {
            let mut c = UserContext::with_id(u);
            c.employee = u % 100 == 0;
            c
        })
        .collect();
    let mut previous: Vec<u64> = Vec::new();
    for (label, rules) in [
        (
            "employees only",
            vec![Rule::new(
                vec![RestraintSpec::of(RestraintKind::Employee)],
                1.0,
            )],
        ),
        (
            "employees + 1%",
            vec![
                Rule::new(vec![RestraintSpec::of(RestraintKind::Employee)], 1.0),
                Rule::new(vec![RestraintSpec::of(RestraintKind::Always)], 0.01),
            ],
        ),
        (
            "employees + 10%",
            vec![
                Rule::new(vec![RestraintSpec::of(RestraintKind::Employee)], 1.0),
                Rule::new(vec![RestraintSpec::of(RestraintKind::Always)], 0.10),
            ],
        ),
        (
            "global 100%",
            vec![Rule::new(
                vec![RestraintSpec::of(RestraintKind::Always)],
                1.0,
            )],
        ),
    ] {
        rt.update_project(Project::new("ProjectX", rules));
        let passing: Vec<u64> = users
            .iter()
            .filter(|u| rt.check("ProjectX", u))
            .map(|u| u.user_id)
            .collect();
        let kept = previous.iter().filter(|u| passing.contains(u)).count();
        out.push_str(&format!(
            "{label:<20} {:>8.2}%   {kept}/{} \n",
            100.0 * passing.len() as f64 / users.len() as f64,
            previous.len()
        ));
        previous = passing;
    }
    out.push_str("\nstickiness: every user passing a stage keeps passing wider stages.\n");
    out
}
