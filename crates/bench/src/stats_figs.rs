//! Figures 7–12 and Tables 1–3: the usage-statistics reproductions.
//!
//! These run the calibrated workload generator and re-measure the paper's
//! statistics (see `workload` and `DESIGN.md` for the substitution
//! rationale). Output is paper-vs-measured, bucket by bucket.

use workload::analysis;
use workload::commits::{CommitProcess, RepoKind};
use workload::history::{generate, ConfigKind, HistoryParams};
use workload::paper;
use workload::render_rows;

fn history(scale: usize) -> workload::History {
    generate(&HistoryParams {
        total_configs: scale,
        ..HistoryParams::default()
    })
}

/// Figure 7: number of configs in the repository over time.
pub fn fig7(scale: usize) -> String {
    let h = history(scale);
    let series = analysis::fig7_growth(&h, 14);
    let mut out = String::from(
        "Figure 7: number of configs over time (compiled vs raw)\n\
         paper: rapid growth over ~1400 days; compiled grows faster;\n\
         75% of configs compiled at the end; Gatekeeper migration step.\n\n\
         day     compiled       raw  compiled%\n",
    );
    for (day, compiled, raw) in &series {
        let pct = 100.0 * *compiled as f64 / (compiled + raw).max(1) as f64;
        out.push_str(&format!("{day:6.0} {compiled:9} {raw:9}   {pct:6.1}%\n"));
    }
    let (_, c_end, r_end) = series.last().expect("nonempty series");
    out.push_str(&format!(
        "\nfinal compiled fraction: measured {:.1}% (paper 75%)\n",
        100.0 * *c_end as f64 / (c_end + r_end) as f64
    ));
    out
}

/// Figure 8: CDF of config size.
pub fn fig8(scale: usize) -> String {
    let h = history(scale);
    let mut out = String::from("Figure 8: CDF of config size\n\n");
    for (kind, label, p50, p95, max) in [
        (ConfigKind::Raw, "raw", 400u64, 25_000u64, 8_400_000u64),
        (ConfigKind::Compiled, "compiled", 1_000, 45_000, 14_800_000),
    ] {
        let (m50, m95, mmax) = analysis::size_quantiles(&h, kind);
        out.push_str(&format!(
            "{label:9} P50 paper {p50:>10} measured {m50:>10}\n\
             {label:9} P95 paper {p95:>10} measured {m95:>10}\n\
             {label:9} max paper {max:>10} measured {mmax:>10}\n",
        ));
        out.push_str("  size-CDF points (bytes → cumulative %):\n");
        for (b, pct) in analysis::fig8_size_cdf(&h, kind) {
            out.push_str(&format!("    {b:>11} {pct:6.2}%\n"));
        }
    }
    out
}

/// Table 1: number of times a config gets updated.
pub fn table1(scale: usize) -> String {
    let h = history(scale);
    let mut out = render_rows(
        "Table 1 (compiled): lifetime writes per config",
        &analysis::table1(&h, ConfigKind::Compiled),
    );
    out.push('\n');
    out.push_str(&render_rows(
        "Table 1 (raw): lifetime writes per config",
        &analysis::table1(&h, ConfigKind::Raw),
    ));
    // §6.2's concentration headline.
    let mut counts: Vec<u64> = h
        .of_kind(ConfigKind::Raw)
        .map(|c| c.write_count())
        .collect();
    counts.sort_unstable_by(|a, b| b.cmp(a));
    let top = counts.len() / 100;
    let share =
        100.0 * counts[..top].iter().sum::<u64>() as f64 / counts.iter().sum::<u64>() as f64;
    out.push_str(&format!(
        "\ntop-1% of raw configs hold {share:.1}% of raw updates (paper: 92.8%)\n"
    ));
    out
}

/// Table 2: line changes per config update.
pub fn table2(scale: usize) -> String {
    let h = history(scale);
    let mut out = String::new();
    for (kind, label) in [
        (ConfigKind::Compiled, "compiled"),
        (ConfigKind::Source, "source code"),
        (ConfigKind::Raw, "raw"),
    ] {
        out.push_str(&render_rows(
            &format!("Table 2 ({label}): line changes per update"),
            &analysis::table2(&h, kind),
        ));
        out.push('\n');
    }
    out
}

/// Table 3: co-authors per config.
pub fn table3(scale: usize) -> String {
    let h = history(scale);
    let mut out = String::new();
    for (kind, label) in [
        (ConfigKind::Compiled, "compiled"),
        (ConfigKind::Raw, "raw"),
        (ConfigKind::Source, "fbcode-like source"),
    ] {
        out.push_str(&render_rows(
            &format!("Table 3 ({label}): co-authors per config"),
            &analysis::table3(&h, kind),
        ));
        out.push('\n');
    }
    out
}

/// Figure 9: freshness of configs.
pub fn fig9(scale: usize) -> String {
    let h = history(scale);
    render_rows(
        "Figure 9: CDF of days since a config was last modified",
        &analysis::fig9_freshness(&h),
    )
}

/// Figure 10: age of a config at the time of an update.
pub fn fig10(scale: usize) -> String {
    let h = history(scale);
    render_rows(
        "Figure 10: CDF of config age at update time",
        &analysis::fig10_age_at_update(&h),
    )
}

/// Figure 11: daily commit throughput of the three repositories.
pub fn fig11() -> String {
    let days = 301;
    let mut out = String::from(
        "Figure 11: daily commit throughput (day 0 = Monday)\n\
         paper: configerator peak grows 180% in 10 months; weekend ratios\n\
         configerator 33%, www 10%, fbcode 7%.\n\n\
         day  configerator       www    fbcode\n",
    );
    let series: Vec<(RepoKind, Vec<u64>)> =
        [RepoKind::Configerator, RepoKind::Www, RepoKind::Fbcode]
            .into_iter()
            .map(|repo| {
                let p = CommitProcess {
                    repo,
                    base_hourly_peak: match repo {
                        RepoKind::Configerator => 120.0,
                        RepoKind::Www => 45.0,
                        RepoKind::Fbcode => 60.0,
                    },
                    ..CommitProcess::default()
                };
                (repo, p.daily_series(days, 11))
            })
            .collect();
    for d in (0..days as usize).step_by(14) {
        out.push_str(&format!(
            "{d:4} {:13} {:9} {:9}\n",
            series[0].1[d], series[1].1[d], series[2].1[d]
        ));
    }
    for (repo, s) in &series {
        let weekend: u64 = s
            .iter()
            .enumerate()
            .filter(|(i, _)| matches!(i % 7, 5 | 6))
            .map(|(_, v)| *v)
            .sum();
        let weekday: u64 = s
            .iter()
            .enumerate()
            .filter(|(i, _)| !matches!(i % 7, 5 | 6))
            .map(|(_, v)| *v)
            .sum();
        let n_weeks = days as f64 / 7.0;
        let ratio = (weekend as f64 / (2.0 * n_weeks)) / (weekday as f64 / (5.0 * n_weeks));
        let paper_r = repo.weekend_ratio();
        out.push_str(&format!(
            "{repo:?}: weekend/weekday ratio measured {ratio:.2} (paper {paper_r:.2})\n"
        ));
    }
    let growth = series[0].1[294..301].iter().sum::<u64>() as f64
        / series[0].1[0..7].iter().sum::<u64>() as f64;
    out.push_str(&format!(
        "configerator growth over 300 days: measured ×{growth:.2} (paper ×1.8)\n"
    ));
    out
}

/// Figure 12: hourly commit throughput over one week.
pub fn fig12() -> String {
    let p = CommitProcess::default();
    let hourly = p.hourly_series(7, 12);
    let max = *hourly.iter().max().expect("nonempty") as f64;
    let mut out = String::from(
        "Figure 12: hourly commits over one week (Mon–Sun)\n\
         paper: daily peaks 10:00–18:00, steady automated floor at night\n\
         and on the weekend (39% of commits are automated).\n\n",
    );
    for (i, v) in hourly.iter().enumerate() {
        if i % 24 == 0 {
            out.push_str(&format!("day {}:\n", i / 24));
        }
        let bar = "#".repeat((*v as f64 / max * 50.0).round() as usize);
        out.push_str(&format!("  h{:02} {v:5} {bar}\n", i % 24));
    }
    let night: u64 = hourly
        .iter()
        .enumerate()
        .filter(|(i, _)| (i % 24) < 6)
        .map(|(_, v)| *v)
        .sum();
    let day: u64 = hourly
        .iter()
        .enumerate()
        .filter(|(i, _)| (10..18).contains(&(i % 24)))
        .map(|(_, v)| *v)
        .sum();
    out.push_str(&format!(
        "\nnight floor (automation) vs working-hours peak: {night} vs {day}\n"
    ));
    out
}

/// Headline §6.1 statistics.
pub fn headline(scale: usize) -> String {
    let h = history(scale);
    let mean = |k: ConfigKind| {
        let (s, n) = h
            .of_kind(k)
            .fold((0u64, 0u64), |(s, n), c| (s + c.write_count(), n + 1));
        s as f64 / n.max(1) as f64
    };
    let raw_auto: (u64, u64) = h
        .of_kind(ConfigKind::Raw)
        .flat_map(|c| c.updates.iter())
        .fold((0, 0), |(a, t), u| (a + u.automated as u64, t + 1));
    format!(
        "§6.1 headline statistics (paper vs measured)\n\
         mean lifetime writes: raw      {:.0} vs {:.1}\n\
         mean lifetime writes: compiled {:.0} vs {:.1}\n\
         mean lifetime writes: source   {:.0} vs {:.1}\n\
         raw updates by automation:     {:.0}% vs {:.1}%\n",
        paper::MEAN_UPDATES_RAW,
        mean(ConfigKind::Raw),
        paper::MEAN_UPDATES_COMPILED,
        mean(ConfigKind::Compiled),
        paper::MEAN_UPDATES_SOURCE,
        mean(ConfigKind::Source),
        paper::RAW_AUTOMATION_FRACTION * 100.0,
        100.0 * raw_auto.0 as f64 / raw_auto.1.max(1) as f64,
    )
}
