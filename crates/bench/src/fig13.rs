//! Figure 13: maximum commit throughput vs repository size, plus the two
//! §3.6 remedies as ablations (landing strip; partitioned namespace).
//!
//! Unlike the statistics figures, everything here is *measured* from the
//! real `gitstore` implementation: the replayed history grows a real
//! repository, and throughput is wall-clock time of real commits whose
//! cost genuinely grows with the index size.

use std::time::Instant;

use gitstore::repo::Repository;
use workload::commits::CommitReplay;

/// One measured point of Figure 13.
#[derive(Debug, Clone, Copy)]
pub struct ThroughputPoint {
    /// Files tracked in the repository.
    pub files: usize,
    /// Sustained commits per minute.
    pub commits_per_min: f64,
    /// Mean per-commit latency in milliseconds.
    pub latency_ms: f64,
}

/// Measures commit throughput at each target repository size.
pub fn measure(sizes: &[usize], commits_per_point: usize) -> Vec<ThroughputPoint> {
    let mut repo = Repository::new();
    let mut replay = CommitReplay::new(13);
    let mut out = Vec::new();
    for &target in sizes {
        replay.grow_repo(&mut repo, target);
        // Measure typical small commits (the production workload shape) at
        // this size.
        let start = Instant::now();
        let mut ts = 1_000_000;
        for _ in 0..commits_per_point {
            let changes = replay.next_commit();
            ts += 1;
            repo.commit("bench", "typical", ts, changes)
                .expect("bench commit");
        }
        let elapsed = start.elapsed().as_secs_f64();
        let latency = elapsed / commits_per_point as f64;
        out.push(ThroughputPoint {
            files: repo.file_count(),
            commits_per_min: 60.0 / latency,
            latency_ms: latency * 1e3,
        });
    }
    out
}

/// Runs the Figure 13 sweep and renders the table.
pub fn fig13(full: bool) -> String {
    let sizes: &[usize] = if full {
        &[10_000, 50_000, 100_000, 250_000, 500_000, 1_000_000]
    } else {
        &[5_000, 20_000, 50_000, 100_000, 200_000]
    };
    let points = measure(sizes, 30);
    let mut out = String::from(
        "Figure 13: maximum commit throughput vs repository size\n\
         paper: throughput falls as the repository grows, because git\n\
         rewrites the whole index per commit; latency = 60/throughput.\n\n\
         files      commits/min   latency(ms)\n",
    );
    for p in &points {
        out.push_str(&format!(
            "{:>9}   {:>11.1}   {:>11.3}\n",
            p.files, p.commits_per_min, p.latency_ms
        ));
    }
    let first = points.first().expect("points");
    let last = points.last().expect("points");
    out.push_str(&format!(
        "\nshape check: throughput falls ×{:.1} as files grow ×{:.0}\n\
         (the paper's curve falls ~×4 from 100k to 1M files)\n",
        first.commits_per_min / last.commits_per_min,
        last.files as f64 / first.files as f64
    ));
    out
}

/// §3.6 ablation 1: direct stale-rejecting pushes vs the landing strip,
/// under `engineers` concurrent committers.
pub fn contention(engineers: usize, rounds: usize) -> String {
    use configerator::landing::{LandingStrip, SourceDiff};
    use configerator::service::ConfigeratorService;
    use gitstore::clone::WorkClone;
    use gitstore::repo::Change;

    // Direct git pushes: everyone clones, edits a distinct file, pushes;
    // stale pushes retry after syncing (each retry is a wasted round trip,
    // "10s of seconds" in production).
    let mut shared = Repository::new();
    shared
        .commit("seed", "s", 0, vec![Change::put("seed", "0")])
        .expect("seed");
    let mut retries = 0u64;
    let mut ts = 1;
    for round in 0..rounds {
        let mut clones: Vec<WorkClone> = (0..engineers).map(|_| WorkClone::of(&shared)).collect();
        for (e, clone) in clones.iter_mut().enumerate() {
            clone.stage(Change::put(format!("cfg_{e}"), format!("r{round}")));
            // Push, syncing and retrying until it lands.
            loop {
                ts += 1;
                match clone.push(&mut shared, &format!("eng{e}"), "m", ts) {
                    Ok(_) => break,
                    Err(_) => {
                        retries += 1;
                        clone.sync(&shared);
                    }
                }
            }
        }
    }

    // Landing strip: everyone submits a diff against the same stale base;
    // no syncs needed because the files are disjoint.
    let mut svc = ConfigeratorService::new();
    let mut strip = LandingStrip::new();
    for round in 0..rounds {
        let diffs: Vec<SourceDiff> = (0..engineers)
            .map(|e| {
                let mut ch = std::collections::BTreeMap::new();
                ch.insert(
                    format!("cfg_{e}.cconf"),
                    Some(format!("export_if_last({round})")),
                );
                SourceDiff::against(&svc, &format!("eng{e}"), "m", ch)
            })
            .collect();
        for d in diffs {
            strip.submit(d);
        }
        strip.process_all(&mut svc);
    }
    let stats = strip.stats();
    format!(
        "§3.6 ablation: commit contention, {engineers} engineers × {rounds} rounds\n\
         direct git pushes : {} stale-clone retries (each costs a sync)\n\
         landing strip     : {} landed, {} true conflicts, 0 syncs\n\
         paper: the landing strip removes contention for disjoint diffs.\n",
        retries, stats.landed, stats.conflicts
    )
}

/// §3.6 ablation 2: one shared repository vs a partitioned namespace.
pub fn partitioning(files_per_partition: usize, partitions: usize, commits: usize) -> String {
    use gitstore::multirepo::MultiRepo;
    use gitstore::repo::Change;

    // Single repository holding everything.
    let total = files_per_partition * partitions;
    let mut single = Repository::new();
    let mut replay = CommitReplay::new(21);
    replay.grow_repo(&mut single, total);
    let start = Instant::now();
    for i in 0..commits {
        let team = i % partitions;
        single
            .commit(
                "bench",
                "m",
                i as u64 + 10_000_000,
                vec![Change::put(format!("p{team}/hot_{i}.json"), "x")],
            )
            .expect("commit");
    }
    let t_single = start.elapsed().as_secs_f64();

    // Partitioned: same total content split across `partitions` repos.
    let mut multi = MultiRepo::new();
    for p in 1..partitions {
        multi.add_repo(&format!("p{p}/"));
    }
    for p in 0..partitions {
        let repo_id = multi.route(&format!("p{p}/x"));
        let mut r = CommitReplay::new(22 + p as u64);
        // Grow each partition with its share of files (paths re-prefixed).
        let mut n = 0;
        while multi.repo(repo_id).file_count() < files_per_partition {
            let batch: Vec<Change> = (0..2000
                .min(files_per_partition - multi.repo(repo_id).file_count()))
                .map(|_| {
                    n += 1;
                    Change::put(format!("p{p}/cfg_{n}.json"), "x")
                })
                .collect();
            multi
                .repo_mut(repo_id)
                .commit("grow", "g", n as u64, batch)
                .expect("grow");
        }
        let _ = r.next_commit();
    }
    let start = Instant::now();
    for i in 0..commits {
        let team = i % partitions;
        multi
            .commit(
                "bench",
                "m",
                i as u64 + 20_000_000,
                vec![Change::put(format!("p{team}/hot_{i}.json"), "x")],
            )
            .expect("commit");
    }
    let t_multi = start.elapsed().as_secs_f64();
    format!(
        "§3.6 ablation: single vs partitioned repositories\n\
         ({partitions} partitions × {files_per_partition} files, {commits} commits)\n\
         single shared repo : {:.1} commits/min\n\
         partitioned        : {:.1} commits/min  (×{:.1})\n\
         paper: partitioning restores throughput because each commit\n\
         rewrites only its partition's index — and partitions also accept\n\
         commits concurrently (not modeled in this single-threaded run).\n",
        commits as f64 / t_single * 60.0,
        commits as f64 / t_multi * 60.0,
        t_single / t_multi
    )
}
