//! Distribution experiments: Figure 14 (end-to-end propagation latency),
//! the push-vs-pull comparison (§3.4), and PackageVessel (§3.5).

use bytes::Bytes;
use packagevessel::prelude::*;
use simnet::prelude::*;
use workload::paper;
use zeus::deploy::{DeployConfig, ZeusDeployment};
use zeus::pull::{PullClientActor, PullMsg, PullServerActor};

fn fleet_sim(seed: u64, regions: usize, clusters: usize, servers: usize) -> Sim {
    let topo = Topology::symmetric(regions, clusters, servers);
    Sim::new(topo, NetConfig::datacenter(), seed)
}

/// Figure 14: commit → fleet propagation latency and its load dependence.
///
/// The paper's ~14.5 s baseline decomposes into ~5 s git commit, ~5 s
/// tailer pickup, and ~4.5 s tree propagation. Our git substrate commits in
/// milliseconds at laptop scale, so we report each component separately:
/// the tree propagation is *measured* from the simulated fleet (including
/// its growth under load), and the commit/tailer components are taken from
/// the Fig 13 measurement plus the tailer poll interval.
pub fn fig14(scale_servers: usize) -> String {
    let mut out = String::from(
        "Figure 14: end-to-end commit→fleet propagation latency\n\
         paper: ~14.5 s baseline = 5 s git commit + 5 s tailer + 4.5 s\n\
         tree propagation; latency rises with load (daily/weekly pattern).\n\n",
    );
    // Tree propagation, measured per load level (writes/second offered to
    // the leader). The diurnal pattern of Fig 14 is this load dependence.
    out.push_str("tree propagation vs offered load (measured on simnet;\n");
    out.push_str("25 KB configs — the P95 size — over 1 Gb/s links):\n");
    out.push_str("load(w/s)   p50(s)   p95(s)   max(s)\n");
    let mut baseline_p50 = 0.0;
    for &load in &[1u64, 100, 400, 800] {
        let topo = Topology::symmetric(3, 2, scale_servers);
        let net = NetConfig {
            egress_bytes_per_sec: 125_000_000,
            ingress_bytes_per_sec: 125_000_000,
            ..NetConfig::datacenter()
        };
        let mut sim = Sim::new(topo, net, load);
        let cfg = DeployConfig {
            ensemble_size: 5,
            observers_per_cluster: 2,
            subscriptions: (0..20).map(|i| format!("cfg/{i}")).collect(),
            ..DeployConfig::default()
        };
        let zeus = ZeusDeployment::install(&mut sim, &cfg);
        sim.run_for(SimDuration::from_secs(1));
        // Offer `load` writes/second for 10 seconds across 20 configs.
        for sec in 0..10u64 {
            for w in 0..load {
                let at = SimTime((1 + sec) * 1_000_000 + w * (1_000_000 / load.max(1)));
                zeus.write_at(
                    &mut sim,
                    at,
                    &format!("cfg/{}", w % 20),
                    Bytes::from(vec![b'x'; 25_000]),
                );
            }
        }
        sim.run_for(SimDuration::from_secs(30));
        let s = sim
            .metrics()
            .summary(zeus::metrics::PROPAGATION_S)
            .expect("samples recorded");
        if load == 1 {
            baseline_p50 = s.p50;
        }
        out.push_str(&format!(
            "{load:>9} {:>8.3} {:>8.3} {:>8.3}\n",
            s.p50, s.p95, s.max
        ));
    }
    out.push_str(&format!(
        "\ncomponent breakdown (ours vs paper):\n\
         git commit : measured in Fig 13 (ms at laptop scale; paper ~{:.0} s at 1M files)\n\
         tailer     : poll-interval/2 (paper ~{:.0} s)\n\
         tree       : measured {baseline_p50:.3} s at idle on {scale_servers}-per-cluster fleet (paper ~{:.1} s\n\
                      across hundreds of thousands of servers — scale-dependent constant)\n\
         shape: latency grows with load, reproducing the diurnal pattern.\n",
        paper::FIG14_COMMIT_S,
        paper::FIG14_TAILER_S,
        paper::FIG14_TREE_S,
    ));
    out
}

/// §3.4: push (Zeus tree) vs pull (ACMS-style) under the same fleet.
pub fn pushpull(servers_per_cluster: usize) -> String {
    let mut out = String::from(
        "§3.4 ablation: push model vs pull model\n\
         paper: polls that return nothing are pure overhead, and each poll\n\
         carries the client's full config list, which does not scale.\n\n",
    );
    let n_configs = 50usize;
    let writes = 10usize;
    let horizon = 600u64; // seconds

    // Pull model at several poll intervals.
    out.push_str("model        interval  staleness p50/max(s)   poll msgs   poll bytes\n");
    for &interval in &[10u64, 60, 300] {
        let mut sim = fleet_sim(interval, 1, 2, servers_per_cluster);
        let server = NodeId(0);
        sim.add_actor(server, Box::new(PullServerActor::new()));
        let paths: Vec<String> = (0..n_configs).map(|i| format!("cfg/{i}")).collect();
        let clients: Vec<NodeId> = sim.topology().nodes().skip(1).collect();
        for &c in &clients {
            sim.add_actor(
                c,
                Box::new(PullClientActor::new(
                    server,
                    SimDuration::from_secs(interval),
                    paths.clone(),
                )),
            );
        }
        for w in 0..writes {
            let at = SimTime((w as u64 * horizon / writes as u64) * 1_000_000);
            sim.post(
                at,
                server,
                server,
                Box::new(PullMsg::Set {
                    path: format!("cfg/{}", w % n_configs),
                    data: Bytes::from(vec![b'x'; 1024]),
                    origin: at,
                }),
            );
        }
        sim.run_until(SimTime(horizon * 1_000_000));
        let stale = sim
            .metrics()
            .summary(zeus::metrics::pull::STALENESS_S)
            .expect("staleness");
        let polls = sim.metrics().counter(zeus::metrics::pull::POLLS);
        let bytes = sim.metrics().counter(zeus::metrics::pull::POLL_BYTES);
        out.push_str(&format!(
            "pull      {interval:>6}s     {:>8.1} / {:<8.1} {polls:>9} {bytes:>12}\n",
            stale.p50, stale.max
        ));
    }

    // Push model: same fleet, same writes.
    let mut sim = fleet_sim(7, 1, 2, servers_per_cluster);
    let cfg = DeployConfig {
        ensemble_size: 3,
        observers_per_cluster: 2,
        subscriptions: (0..n_configs).map(|i| format!("cfg/{i}")).collect(),
        ..DeployConfig::default()
    };
    let zeus = ZeusDeployment::install(&mut sim, &cfg);
    sim.run_for(SimDuration::from_secs(1));
    for w in 0..writes {
        let at = SimTime((1 + w as u64 * horizon / writes as u64) * 1_000_000);
        zeus.write_at(
            &mut sim,
            at,
            &format!("cfg/{}", w % n_configs),
            Bytes::from(vec![b'x'; 1024]),
        );
    }
    sim.run_until(SimTime(horizon * 1_000_000));
    let prop = sim
        .metrics()
        .summary(zeus::metrics::PROPAGATION_S)
        .expect("propagation");
    out.push_str(&format!(
        "push (zeus)    —        {:>8.3} / {:<8.3}         0            0\n\
         \npush wins on both axes: sub-second staleness with zero polling\n\
         overhead; pull staleness is bounded below by interval/2 and its\n\
         traffic scales with clients × configs × 1/interval.\n",
        prop.p50, prop.max
    ));
    out
}

/// §3.5: PackageVessel policy sweep. Reports completion time of a large
/// config on every server plus storage offload, for the three policies.
pub fn packagevessel(servers_per_cluster: usize, size_mb: u64) -> String {
    let mut out = format!(
        "§3.5: PackageVessel — {size_mb} MB config to a fleet\n\
         paper: hundreds of MBs reach thousands of live servers in < 4 min,\n\
         via locality-aware P2P that offloads the storage system.\n\n\
         policy           completion p50/max (s)   storage pieces   p2p pieces   same-cluster%\n"
    );
    for policy in [
        PeerPolicy::LocalityAware,
        PeerPolicy::Random,
        PeerPolicy::StorageOnly,
    ] {
        let topo = Topology::symmetric(2, 3, servers_per_cluster);
        // Bulk distribution is bandwidth-bound: model 2 Gb/s effective
        // per-server throughput.
        let net = NetConfig {
            egress_bytes_per_sec: 250_000_000,
            ingress_bytes_per_sec: 250_000_000,
            ..NetConfig::datacenter()
        };
        let mut sim = Sim::new(topo, net, 35);
        let pv = PvDeployment::install(&mut sim, policy, 4);
        let meta = pv.publish(
            &mut sim,
            "feed/model",
            1,
            size_mb << 20,
            4 << 20,
            SimTime::ZERO,
        );
        sim.run_for(SimDuration::from_secs(1200));
        let done = pv.completion(&sim, &meta.id);
        let s = sim
            .metrics()
            .summary(packagevessel::metrics::FETCH_COMPLETE_S)
            .expect("fetches");
        let storage = sim
            .metrics()
            .counter(packagevessel::metrics::STORAGE_PIECES_SENT);
        let p2p = sim
            .metrics()
            .counter(packagevessel::metrics::P2P_PIECES_SENT);
        let same = sim
            .metrics()
            .counter(packagevessel::metrics::P2P_PIECES_SAME_CLUSTER);
        let pct_same = if p2p > 0 {
            100.0 * same as f64 / p2p as f64
        } else {
            0.0
        };
        out.push_str(&format!(
            "{policy:?}{:pad$} {:>8.1} / {:<8.1}     {storage:>10} {p2p:>12}   {pct_same:>10.1}%{}\n",
            "",
            s.p50,
            s.max,
            if done < 1.0 { "  (INCOMPLETE)" } else { "" },
            pad = 16usize.saturating_sub(format!("{policy:?}").len()),
        ));
    }
    out.push_str(&format!(
        "\npaper bound: < {:.0} s for hundreds of MB — the locality-aware\n\
         swarm meets it; storage-only is the overload case PackageVessel\n\
         exists to avoid.\n",
        paper::PV_DELIVERY_BOUND_S
    ));
    out
}

/// §3.5 companion: why large configs cannot ride the Zeus tree — inner
/// node (observer) egress load comparison.
pub fn tree_vs_pv(servers_per_cluster: usize) -> String {
    // Send a 64 MB config through the Zeus tree and through PackageVessel;
    // compare observer egress bytes vs swarm spread.
    let size: u64 = 64 << 20;
    let topo = Topology::symmetric(1, 2, servers_per_cluster);
    let net = NetConfig {
        egress_bytes_per_sec: 250_000_000,
        ingress_bytes_per_sec: 250_000_000,
        ..NetConfig::datacenter()
    };
    let mut sim = Sim::new(topo.clone(), net.clone(), 36);
    let cfg = DeployConfig {
        ensemble_size: 3,
        observers_per_cluster: 1,
        subscriptions: vec!["big".into()],
        ..DeployConfig::default()
    };
    let zeus = ZeusDeployment::install(&mut sim, &cfg);
    sim.run_for(SimDuration::from_secs(1));
    let t0 = sim.now();
    zeus.write_at(&mut sim, t0, "big", Bytes::from(vec![0u8; size as usize]));
    sim.run_for(SimDuration::from_secs(600));
    let tree_done = sim
        .metrics()
        .summary(zeus::metrics::PROPAGATION_S)
        .map(|s| s.max)
        .unwrap_or(f64::NAN);
    let tree_bytes = sim.metrics().counter(simnet::stats::names::BYTES_SENT);

    let mut sim2 = Sim::new(topo, net, 37);
    let pv = PvDeployment::install(&mut sim2, PeerPolicy::LocalityAware, 4);
    let meta = pv.publish(&mut sim2, "big", 1, size, 4 << 20, SimTime::ZERO);
    sim2.run_for(SimDuration::from_secs(600));
    let pv_done = sim2
        .metrics()
        .summary(packagevessel::metrics::FETCH_COMPLETE_S)
        .map(|s| s.max)
        .unwrap_or(f64::NAN);
    let done_frac = pv.completion(&sim2, &meta.id);
    format!(
        "§3.5 companion: 64 MB config through the Zeus tree vs PackageVessel\n\
         zeus tree : last server at {tree_done:.1} s; each observer re-sends the\n\
                     full payload to every proxy in its cluster (total {} GB moved\n\
                     through 2 observers — the high-fanout inner nodes saturate)\n\
         pv swarm  : last server at {pv_done:.1} s (completion {:.0}%); load spread\n\
                     across all peers, storage sends each piece a handful of times\n",
        tree_bytes / (1 << 30),
        done_frac * 100.0
    )
}
