//! `repro verify`: the static-verifier gate — seeded-bad commits replayed
//! through the `plan()` pre-commit verify pass.
//!
//! A small corpus of entries, shared modules, schemas, and validators is
//! seeded clean, then fifty known-bad commits — ten per defect class — are
//! replayed against it:
//!
//! * **schema-type** — a type-mismatched `export_if_last` payload hidden
//!   in a branch the interpreter never takes (the compiler executes, so
//!   it cannot see it; the verifier's static struct-literal scan can);
//! * **validator-totality** — a `.cvalidator` rewritten so `validate()`
//!   can fall off the end without a `require()`/`fail()` verdict, i.e. a
//!   partial validator that silently passes bad configs;
//! * **reachability** — an `export_if_last` arm under a constant-false
//!   condition: dead config the author believes is live;
//! * **dependency-break** — a shared `.cinc` loses a binding its
//!   dependents still reference, exercising the ripple-graph repair hint;
//! * **const-fold** — an out-of-range port in the payload. Eight of ten
//!   are constant-foldable and caught; two route the port through an
//!   opaque helper call (abstractly `Unknown`), leak past the verifier by
//!   design, and must be caught by the canary model downstream.
//!
//! Every rejection happens **pre-commit** — the repository is untouched.
//! Leaked commits land and are then replayed through a canary-style
//! runtime check of the compiled artifacts (the stand-in for PR 6's
//! rollout gate); nothing may escape both.
//!
//! Stdout is byte-deterministic (catch-rate table, a sample rejection
//! with repair hints, the gates, a counters-only Prometheus export) and
//! is golden-diffed by `scripts/check.sh` via `repro verify --check`.
//! Wall-clock timing and the grep-able catch-rate gate verdict go to
//! stderr.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::time::Instant;

use configerator::{CompileOptions, ConfigeratorService, ServiceError};

use crate::compile_exp::counters_only;

/// Entry configs in the corpus.
const ENTRIES: usize = 40;
/// Shared `.cinc` modules; every entry imports one.
const MODULES: usize = 4;
/// Schemas (each with a validator); entries round-robin over them.
const SCHEMAS: usize = 2;
/// Seeded-bad commits per defect class.
const PER_CLASS: usize = 10;
/// Of the const-fold class, this many are constant-foldable (the rest
/// hide the bad value behind an opaque call and leak by design).
const FOLDABLE: usize = 8;
/// Required fraction of seeded-bad commits rejected pre-commit.
const CATCH_FLOOR: f64 = 0.80;

const CLASSES: [&str; 5] = [
    "schema-type",
    "validator-totality",
    "reachability",
    "dependency-break",
    "const-fold",
];

fn module_path(m: usize) -> String {
    format!("shared/mod{m}.cinc")
}

fn schema_path(s: usize) -> String {
    format!("schemas/job{s}.schema")
}

fn validator_path(s: usize) -> String {
    format!("schemas/job{s}.cvalidator")
}

fn entry_path(e: usize) -> String {
    format!("app/entry{e:02}.cconf")
}

fn module_src(m: usize) -> String {
    format!(
        "def m{m}_f0(x):\n    y = x * 2 + {m}\n    return y + 1\n\
         def m{m}_port(x):\n    return 70000 + x\n\
         M{m}_C0 = {}\nM{m}_C1 = {}\n",
        100 + 10 * m,
        101 + 10 * m
    )
}

fn schema_src(s: usize) -> String {
    format!("struct Job{s} {{ 1: string name 2: i64 weight = 10 3: i32 port = 8080 }}")
}

fn validator_src(_s: usize) -> String {
    "def validate(cfg):\n    require(cfg.weight >= 0, \"weight must be nonnegative\")\n".to_string()
}

fn entry_src(e: usize) -> String {
    let a = e % MODULES;
    let s = e % SCHEMAS;
    format!(
        "import \"{}\"\nschema \"{}\"\n\
         export_if_last(Job{s} {{ name: \"entry{e:02}\", weight: M{a}_C1 + {e}, port: 8080 }})\n",
        module_path(a),
        schema_path(s)
    )
}

/// The clean source tree.
fn corpus() -> BTreeMap<String, Option<String>> {
    let mut files = BTreeMap::new();
    for m in 0..MODULES {
        files.insert(module_path(m), Some(module_src(m)));
    }
    for s in 0..SCHEMAS {
        files.insert(schema_path(s), Some(schema_src(s)));
        files.insert(validator_path(s), Some(validator_src(s)));
    }
    for e in 0..ENTRIES {
        files.insert(entry_path(e), Some(entry_src(e)));
    }
    files
}

struct BadCommit {
    class: &'static str,
    label: String,
    path: String,
    src: String,
    /// Clean content to land if the commit leaks (restores the tree).
    revert_src: String,
}

fn seeded_bad_commits() -> Vec<BadCommit> {
    let mut commits = Vec::new();

    // schema-type: wrong payload type in a branch the interpreter never
    // takes (the guard calls a helper, so it is abstractly Unknown to the
    // verifier — both arms are walked — but concretely false at runtime).
    for i in 0..PER_CLASS {
        let e = i;
        let (a, s) = (e % MODULES, e % SCHEMAS);
        commits.push(BadCommit {
            class: "schema-type",
            label: format!("schema-type #{i}"),
            path: entry_path(e),
            src: format!(
                "import \"{}\"\nschema \"{}\"\n\
                 if m{a}_f0({i}) > 100000:\n\
                \x20   export_if_last(Job{s} {{ name: {}, weight: 1, port: 8080 }})\n\
                 export_if_last(Job{s} {{ name: \"entry{e:02}\", weight: M{a}_C1 + {e}, port: 8080 }})\n",
                module_path(a),
                schema_path(s),
                400 + i
            ),
            revert_src: entry_src(e),
        });
    }

    // validator-totality: validate() gains a guarded verdict and loses
    // the unconditional one — partial coverage, silently passes configs
    // under the cap.
    for i in 0..PER_CLASS {
        let s = i % SCHEMAS;
        commits.push(BadCommit {
            class: "validator-totality",
            label: format!("validator-totality #{i}"),
            path: validator_path(s),
            src: format!(
                "def validate(cfg):\n    if cfg.weight > {}:\n\
                \x20       fail(\"weight over cap\")\n",
                1000 + i
            ),
            revert_src: validator_src(s),
        });
    }

    // reachability: an export arm under a constant-false condition.
    for i in 0..PER_CLASS {
        let e = 10 + i;
        let (a, s) = (e % MODULES, e % SCHEMAS);
        commits.push(BadCommit {
            class: "reachability",
            label: format!("reachability #{i}"),
            path: entry_path(e),
            src: format!(
                "import \"{}\"\nschema \"{}\"\n\
                 if {i} > {}:\n\
                \x20   export_if_last(Job{s} {{ name: \"dead\", weight: 1, port: 8080 }})\n\
                 export_if_last(Job{s} {{ name: \"entry{e:02}\", weight: {}, port: 8080 }})\n",
                module_path(a),
                schema_path(s),
                i + 1,
                50 + i
            ),
            revert_src: entry_src(e),
        });
    }

    // dependency-break: a shared module renames a constant its ten
    // dependents still reference.
    for i in 0..PER_CLASS {
        let m = i % MODULES;
        commits.push(BadCommit {
            class: "dependency-break",
            label: format!("dependency-break #{i}"),
            path: module_path(m),
            src: format!(
                "def m{m}_f0(x):\n    y = x * 2 + {m}\n    return y + 1\n\
                 def m{m}_port(x):\n    return 70000 + x\n\
                 M{m}_C0 = {}\nM{m}_SPLIT{i} = {}\n",
                100 + 10 * m,
                101 + 10 * m
            ),
            revert_src: module_src(m),
        });
    }

    // const-fold: out-of-range port. The first FOLDABLE are literal and
    // caught; the rest route through an opaque helper and leak.
    for i in 0..PER_CLASS {
        let e = 20 + i;
        let (a, s) = (e % MODULES, e % SCHEMAS);
        let port_expr = if i < FOLDABLE {
            format!("{}", 70000 + i)
        } else {
            format!("m{a}_port({i})")
        };
        commits.push(BadCommit {
            class: "const-fold",
            label: format!("const-fold #{i}"),
            path: entry_path(e),
            src: format!(
                "import \"{}\"\nschema \"{}\"\n\
                 export_if_last(Job{s} {{ name: \"entry{e:02}\", weight: 5, port: {port_expr} }})\n",
                module_path(a),
                schema_path(s)
            ),
            revert_src: entry_src(e),
        });
    }

    commits
}

/// Pulls the integer value of the `"port"` key out of a compiled-artifact
/// JSON blob. The canary model's runtime invariant reads the artifact —
/// the bytes the fleet would actually receive — not the source.
fn artifact_port(json: &str) -> Option<i64> {
    let k = json.find("\"port\"")?;
    let rest = json[k + 6..].trim_start_matches([':', ' ']);
    let digits: String = rest
        .chars()
        .take_while(|c| c.is_ascii_digit() || *c == '-')
        .collect();
    digits.parse().ok()
}

#[derive(Default, Clone, Copy)]
struct ClassRow {
    seeded: usize,
    caught: usize,
    leaked: usize,
    canary_caught: usize,
    escaped: usize,
}

struct Replay {
    rows: Vec<(&'static str, ClassRow)>,
    total: ClassRow,
    false_positives: usize,
    clean_probes: usize,
    sample_rejection: String,
    detail: Vec<String>,
    counters: String,
    wall_s: f64,
}

fn replay() -> Replay {
    let start = Instant::now();
    // Serial pipeline: every counter in the Prometheus export is exactly
    // reproducible (parallel workers race on parse-cache attribution).
    let mut svc = ConfigeratorService::with_options(CompileOptions {
        workers: 1,
        incremental: true,
        parse_cache: true,
        verify: true,
    });
    svc.commit_source("verify-bench", "seed", corpus())
        .expect("clean corpus must pass the verify gate");

    let mut rows: BTreeMap<&'static str, ClassRow> = BTreeMap::new();
    let mut sample_rejection = String::new();
    let mut detail = Vec::new();

    for c in seeded_bad_commits() {
        let row = rows.entry(c.class).or_default();
        row.seeded += 1;
        let changes: BTreeMap<String, Option<String>> = [(c.path.clone(), Some(c.src.clone()))]
            .into_iter()
            .collect();
        match svc.commit_source("verify-bench", &c.label, changes) {
            Err(ServiceError::Verify(report)) => {
                row.caught += 1;
                let first = report
                    .findings
                    .iter()
                    .find(|f| f.severity == cdsl::Severity::Error)
                    .map(|f| f.to_string())
                    .unwrap_or_default();
                detail.push(format!("{}: rejected pre-commit — {first}", c.label));
                if c.class == "dependency-break" && sample_rejection.is_empty() {
                    sample_rejection =
                        format!("sample rejection ({} on {}):\n{report}", c.label, c.path);
                }
            }
            Err(other) => {
                // A seeded-bad commit must never die in the compiler: the
                // whole point is that it compiles clean. Surface it.
                detail.push(format!("{}: UNEXPECTED compile error — {other}", c.label));
                row.escaped += 1;
            }
            Ok(rep) => {
                row.leaked += 1;
                let bad_at_runtime = rep.updated_configs.iter().any(|n| {
                    svc.artifact(n)
                        .and_then(|a| artifact_port(&a.json))
                        .is_some_and(|p| !(1..=65535).contains(&p))
                });
                if bad_at_runtime {
                    row.canary_caught += 1;
                    detail.push(format!(
                        "{}: leaked past verify — canary caught out-of-range port at runtime",
                        c.label
                    ));
                } else {
                    row.escaped += 1;
                    detail.push(format!("{}: ESCAPED verify and canary", c.label));
                }
                let revert: BTreeMap<String, Option<String>> =
                    [(c.path, Some(c.revert_src))].into_iter().collect();
                svc.commit_source("verify-bench", "revert leak", revert)
                    .expect("revert of a leaked commit must land");
            }
        }
    }

    // False-positive probe: clean edits must never be rejected — the
    // verifier's zero-false-positive discipline at the commit gate.
    let mut false_positives = 0usize;
    let clean_probes = PER_CLASS;
    for i in 0..clean_probes {
        let e = 30 + i;
        let (a, s) = (e % MODULES, e % SCHEMAS);
        let src = format!(
            "import \"{}\"\nschema \"{}\"\n\
             export_if_last(Job{s} {{ name: \"entry{e:02}\", weight: M{a}_C0 + {}, port: 8080 }})\n",
            module_path(a),
            schema_path(s),
            60 + i
        );
        let changes: BTreeMap<String, Option<String>> =
            [(entry_path(e), Some(src))].into_iter().collect();
        if let Err(err) = svc.commit_source("verify-bench", "clean edit", changes) {
            false_positives += 1;
            detail.push(format!("clean edit #{i}: FALSE POSITIVE — {err}"));
        }
    }

    let ordered: Vec<(&'static str, ClassRow)> = CLASSES
        .iter()
        .map(|c| (*c, rows.get(c).copied().unwrap_or_default()))
        .collect();
    let mut total = ClassRow::default();
    for (_, r) in &ordered {
        total.seeded += r.seeded;
        total.caught += r.caught;
        total.leaked += r.leaked;
        total.canary_caught += r.canary_caught;
        total.escaped += r.escaped;
    }

    Replay {
        rows: ordered,
        total,
        false_positives,
        clean_probes,
        sample_rejection,
        detail,
        counters: counters_only(&svc.metrics().export_prometheus()),
        wall_s: start.elapsed().as_secs_f64(),
    }
}

fn render(r: &Replay, deterministic: bool, check: bool) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "static verifier — seeded-bad commit replay through the plan() gate"
    );
    let _ = writeln!(
        out,
        "corpus: {ENTRIES} entries | {MODULES} shared modules | {SCHEMAS} schemas + validators"
    );
    let _ = writeln!(
        out,
        "pipeline: mutator commit → static verify (reject pre-commit) → compile → canary model"
    );
    let _ = writeln!(out);
    let _ = writeln!(
        out,
        "class                seeded  verify-caught  leaked  canary-caught  escaped"
    );
    for (name, row) in r.rows.iter().chain([("total", r.total)].iter()) {
        let _ = writeln!(
            out,
            "{name:<20} {:>6}  {:>13}  {:>6}  {:>13}  {:>7}",
            row.seeded, row.caught, row.leaked, row.canary_caught, row.escaped
        );
    }
    let _ = writeln!(out);
    let rate = 100.0 * r.total.caught as f64 / r.total.seeded.max(1) as f64;
    let _ = writeln!(
        out,
        "catch rate: {}/{} = {rate:.1}% rejected pre-commit (floor {:.0}%); escapes: {}",
        r.total.caught,
        r.total.seeded,
        CATCH_FLOOR * 100.0,
        r.total.escaped
    );
    let _ = writeln!(
        out,
        "false-positive probe: {} clean edits, {} rejected",
        r.clean_probes, r.false_positives
    );
    let _ = writeln!(out);
    out.push_str(&r.sample_rejection);
    let _ = writeln!(out);
    if !check {
        let _ = writeln!(out);
        let _ = writeln!(out, "per-commit log:");
        for d in &r.detail {
            let _ = writeln!(out, "  {d}");
        }
    }
    let _ = writeln!(out);
    let _ = writeln!(out, "gates:");
    let _ = writeln!(
        out,
        "  catch-rate gate (>= {:.0}% rejected pre-commit): {}",
        CATCH_FLOOR * 100.0,
        if rate / 100.0 >= CATCH_FLOOR {
            "PASS"
        } else {
            "FAIL"
        }
    );
    let _ = writeln!(
        out,
        "  zero-escape gate (every leak caught by the canary model): {}",
        if r.total.escaped == 0 { "PASS" } else { "FAIL" }
    );
    let _ = writeln!(
        out,
        "  false-positive gate (clean edits never rejected): {}",
        if r.false_positives == 0 {
            "PASS"
        } else {
            "FAIL"
        }
    );
    let _ = writeln!(
        out,
        "  determinism gate (two replays byte-identical): {}",
        if deterministic { "PASS" } else { "FAIL" }
    );
    let _ = writeln!(out);
    let _ = writeln!(out, "-- pipeline counters (serial verify pipeline) --");
    out.push_str(&r.counters);
    out
}

/// Runs the seeded-bad replay twice (determinism is part of the report)
/// and returns the deterministic report. `check` omits the per-commit
/// log so the output matches the golden exactly.
pub fn verify(check: bool) -> String {
    let a = replay();
    let b = replay();
    let deterministic = render(&a, true, true) == render(&b, true, true);
    let rate = 100.0 * a.total.caught as f64 / a.total.seeded.max(1) as f64;
    eprintln!(
        "verify replay: {} seeded-bad + {} clean commits, 2 runs in {:.1} ms",
        a.total.seeded,
        a.clean_probes,
        (a.wall_s + b.wall_s) * 1e3
    );
    eprintln!(
        "verify catch-rate gate: {} ({}/{} = {rate:.1}% >= {:.0}%)",
        if rate / 100.0 >= CATCH_FLOOR && a.total.escaped == 0 && a.false_positives == 0 {
            "PASS"
        } else {
            "FAIL"
        },
        a.total.caught,
        a.total.seeded,
        CATCH_FLOOR * 100.0
    );
    render(&a, deterministic, check)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_replay_catches_the_floor_and_nothing_escapes() {
        let r = replay();
        assert_eq!(r.total.seeded, CLASSES.len() * PER_CLASS);
        assert_eq!(r.total.caught, 48, "all but the two opaque-port leaks");
        assert_eq!(r.total.leaked, 2);
        assert_eq!(r.total.canary_caught, 2);
        assert_eq!(r.total.escaped, 0);
        assert_eq!(r.false_positives, 0);
        assert!(r.total.caught as f64 / r.total.seeded as f64 >= CATCH_FLOOR);
        assert!(r.sample_rejection.contains("breaks dependent config(s)"));
    }

    #[test]
    fn per_class_catches_are_exact() {
        let r = replay();
        for (name, row) in &r.rows {
            let expect_caught = if *name == "const-fold" {
                FOLDABLE
            } else {
                PER_CLASS
            };
            assert_eq!(row.seeded, PER_CLASS, "{name}");
            assert_eq!(row.caught, expect_caught, "{name}");
            assert_eq!(row.escaped, 0, "{name}");
        }
    }

    #[test]
    fn check_report_is_byte_deterministic() {
        assert_eq!(verify(true), verify(true));
    }

    #[test]
    fn artifact_port_extraction() {
        assert_eq!(
            artifact_port("{\"name\": \"x\", \"port\": 70008}"),
            Some(70008)
        );
        assert_eq!(artifact_port("{\"port\":8080,\"weight\":12}"), Some(8080));
        assert_eq!(artifact_port("{\"weight\": 12}"), None);
    }
}
