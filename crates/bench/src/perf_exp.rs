//! `repro perf`: the simnet self-profiler benchmark.
//!
//! Replays a `crates/workload`-calibrated mixed scenario (Zeus consensus +
//! observer fan-out + proxy tree, plus a MobileConfig pull leg, with write
//! arrivals paced by the paper's diurnal commit-rate model) at three fleet
//! sizes, with the engine's self-profiler enabled. The live report prints
//! events/sec, the hot-actor table, per-subsystem wall-time shares, and
//! flamegraph-compatible folded stacks, and writes `BENCH_simnet.json` to
//! seed the ROADMAP's perf trajectory ("fast enough for 100k servers"
//! starts with knowing where time goes today).
//!
//! Wall-clock numbers are machine-dependent, so they go to the live report
//! and the JSON only. `perf --check` prints the *virtual* profile — event
//! counts, message bytes, queue depths — which replays byte-identically
//! per seed and is what `scripts/check.sh` golden-gates (and diffs across
//! two runs to prove profiler determinism).

use std::fmt::Write as _;
use std::time::Instant;

use bytes::Bytes;

use crate::bench_json::{self, PerfRow};
use simnet::prelude::*;
use workload::commits::CommitProcess;
use zeus::deploy::{DeployConfig, ZeusDeployment};
use zeus::pull::{PullClientActor, PullMsg, PullServerActor};

/// Config paths the workload writes and every proxy subscribes to.
const PATHS: usize = 4;
/// Events/sec floor enforced on stderr by `scripts/check.sh`. Loaded CI
/// machines are several times slower than a quiet release run, so this is
/// set well below the measured numbers (see EXPERIMENTS.md) — it exists to
/// catch order-of-magnitude regressions, not noise. Raised from 100k after
/// the allocation-free event core landed (slowest observed release run
/// stays above 2M events/s).
const EVENTS_PER_SEC_FLOOR: f64 = 500_000.0;
/// The large-fleet (300-node) throughput recorded in `BENCH_simnet.json`
/// at PR 7, before the calendar queue / interning / slab rework. The live
/// report prints the measured speedup against this anchor.
const PR7_LARGE_EVENTS_PER_SEC: f64 = 2_864_139.6;
/// Hard stderr gate on the speedup ratio: an order-of-magnitude guard, not
/// a noise tripwire (the box running `check.sh` shares cores, and wall
/// ratios on it swing ±20% run to run).
const BASELINE_RATIO_FLOOR: f64 = 0.35;
/// The aspirational engine-rework target. Not achievable by engine work
/// alone — at PR 7 the handlers (the simulated protocols themselves)
/// already consumed ~2/3 of the wall clock, capping any engine-only
/// speedup near 1.5x by Amdahl's law — so the ratio is reported against
/// the target rather than hard-gated on it.
const SPEEDUP_TARGET: f64 = 2.0;
/// Seed for every fleet run (the profile must replay deterministically).
const SEED: u64 = 1;

/// The three fleet sizes of the trajectory benchmark.
const FLEETS: &[(&str, usize, usize, usize)] = &[
    ("small", 2, 2, 8),
    ("medium", 3, 2, 16),
    ("large", 3, 4, 25),
];

struct FleetRun {
    name: &'static str,
    nodes: usize,
    events: u64,
    wall_ms: f64,
    events_per_sec: f64,
    queue_peak: usize,
    queue_mean: f64,
    bytes_sent: u64,
    shares: Vec<(&'static str, f64)>,
    hot_table: String,
    busy_table: String,
    folded_virtual: String,
    folded_wall: String,
}

/// Builds the mixed scenario on `sim` and returns the horizon to run to.
///
/// Write arrivals follow the paper's commit-rate model: one simulated
/// second per modeled hour, with each hour's commit count drawn from
/// [`CommitProcess::hourly_series`] and scaled down to keep the replay
/// tractable. The mix exercises consensus appends, observer fan-out, proxy
/// notifies, and a stateless pull server polled by mobile-style clients.
fn build_scenario(sim: &mut Sim) -> SimTime {
    let cfg = DeployConfig {
        subscriptions: (0..PATHS).map(|i| format!("perf/{i}")).collect(),
        ..DeployConfig::default()
    };
    let zeus = ZeusDeployment::install(sim, &cfg);

    // Carve the MobileConfig pull leg out of the proxy pool: one stateless
    // server, four polling clients.
    let pull_server = *zeus.proxies.last().expect("proxy pool nonempty");
    sim.add_actor(pull_server, Box::new(PullServerActor::new()));
    let pull_paths: Vec<String> = (0..PATHS).map(|i| format!("perf/{i}")).collect();
    for &c in zeus.proxies.iter().rev().skip(1).take(4) {
        sim.add_actor(
            c,
            Box::new(PullClientActor::new(
                pull_server,
                SimDuration::from_secs(2),
                pull_paths.clone(),
            )),
        );
    }

    // One modeled hour compresses to one simulated second; a day's diurnal
    // commit curve becomes a 24s replay. Scale each hour's commit count to
    // at most 12 writes/s so the large fleet finishes promptly.
    let hours = CommitProcess::default().hourly_series(1, SEED);
    let scale = 12.0 / hours.iter().copied().max().unwrap_or(1).max(1) as f64;
    let mut seq = 0u64;
    for (h, &commits) in hours.iter().enumerate() {
        let window_start = 1_000_000 + h as u64 * 1_000_000;
        let n = ((commits as f64 * scale).round() as u64).max(1);
        for k in 0..n {
            let at = SimTime(window_start + k * (1_000_000 / n));
            let path = format!("perf/{}", seq as usize % PATHS);
            let data = Bytes::from(format!("v{seq}"));
            zeus.write_current(sim, at, &path, data.clone());
            // Mirror the write into the pull server so the polling leg
            // carries real deltas.
            sim.post(
                at,
                pull_server,
                pull_server,
                Box::new(PullMsg::Set {
                    path,
                    data,
                    origin: at,
                }),
            );
            seq += 1;
        }
    }
    SimTime(1_000_000 + hours.len() as u64 * 1_000_000 + 5_000_000)
}

fn run_fleet(name: &'static str, regions: usize, clusters: usize, servers: usize) -> FleetRun {
    let topo = Topology::symmetric(regions, clusters, servers);
    let nodes = topo.num_nodes();
    let mut sim = Sim::new(topo, NetConfig::datacenter(), SEED);
    sim.enable_profiler();
    let horizon = build_scenario(&mut sim);
    let start = Instant::now();
    sim.run_until(horizon);
    let wall = start.elapsed();
    let events = sim.events_processed();
    let wall_ms = wall.as_secs_f64() * 1e3;
    let p = sim.profiler();
    FleetRun {
        name,
        nodes,
        events,
        wall_ms,
        events_per_sec: events as f64 / wall.as_secs_f64().max(1e-9),
        queue_peak: p.queue_peak(),
        queue_mean: p.queue_mean(),
        bytes_sent: sim.metrics().counter(simnet::stats::names::BYTES_SENT),
        shares: p.subsystem_wall_shares(),
        hot_table: p.render_hot_actors(5, true),
        busy_table: p.render_hot_actors(5, false),
        folded_virtual: p.folded_stacks(false),
        folded_wall: p.folded_stacks(true),
    }
}

/// Converts a run into the shared `BENCH_simnet.json` row shape.
fn to_row(r: &FleetRun) -> PerfRow {
    PerfRow {
        fleet: r.name.to_string(),
        nodes: r.nodes as u64,
        events: r.events,
        events_per_sec: r.events_per_sec,
        wall_ms: r.wall_ms,
        peak_queue_depth: r.queue_peak as u64,
        mean_queue_depth: r.queue_mean,
        subsystem_wall_shares: r.shares.iter().map(|&(k, v)| (k.to_string(), v)).collect(),
    }
}

/// Runs the benchmark. With `check` set, prints only the deterministic
/// virtual profile (golden-gated, byte-identical across runs); otherwise
/// prints the live wall-time report, writes `BENCH_simnet.json`, and emits
/// the schema + throughput gates on stderr.
pub fn perf(check: bool) -> String {
    let mut out = String::new();
    let runs: Vec<FleetRun> = FLEETS
        .iter()
        .map(|&(name, r, c, s)| run_fleet(name, r, c, s))
        .collect();

    if check {
        let _ = writeln!(
            out,
            "simnet perf profile — virtual (deterministic) fields only\n\
             (event counts, bytes, queue depths; wall time excluded)\n"
        );
        for r in &runs {
            let _ = writeln!(
                out,
                "fleet={} nodes={} events={} bytes_sent={} peak_queue={} mean_queue={:.2}",
                r.name, r.nodes, r.events, r.bytes_sent, r.queue_peak, r.queue_mean
            );
            let _ = writeln!(out, "busiest actors (by events):\n{}", r.busy_table);
        }
        let last = runs.last().expect("fleets nonempty");
        let _ = writeln!(
            out,
            "folded stacks, largest fleet (event counts):\n{}",
            last.folded_virtual
        );
        return out;
    }

    let _ = writeln!(
        out,
        "simnet self-profiler benchmark — workload-calibrated mixed scenario\n\
         (zeus ensemble + observers + proxies + mobile pull leg; write\n\
         arrivals follow the diurnal commit-rate model, 1 modeled hour = 1s)\n"
    );
    for r in &runs {
        let _ = writeln!(
            out,
            "fleet={} nodes={} events={} wall_ms={:.1} events/sec={:.0} peak_queue={} mean_queue={:.2}",
            r.name, r.nodes, r.events, r.wall_ms, r.events_per_sec, r.queue_peak, r.queue_mean
        );
        let _ = writeln!(out, "hot actors (by wall time):\n{}", r.hot_table);
        let shares: Vec<String> = r
            .shares
            .iter()
            .map(|(k, s)| format!("{k}={:.1}%", s * 100.0))
            .collect();
        let _ = writeln!(out, "subsystem wall-time shares: {}\n", shares.join(" "));
    }
    let last = runs.last().expect("fleets nonempty");
    let _ = writeln!(
        out,
        "folded stacks, largest fleet (wall ns; flamegraph.pl-compatible):\n{}",
        last.folded_wall
    );

    let rows: Vec<PerfRow> = runs.iter().map(to_row).collect();
    match bench_json::write_perf(bench_json::PATH, &rows) {
        Ok(()) => eprintln!("wrote {} (runs section)", bench_json::PATH),
        Err(e) => eprintln!("perf: failed to write {}: {e}", bench_json::PATH),
    }
    match std::fs::read_to_string(bench_json::PATH)
        .map_err(|e| format!("unreadable: {e}"))
        .and_then(|t| bench_json::validate(&t))
    {
        Ok(()) => eprintln!("perf schema: OK"),
        Err(e) => eprintln!("perf schema: FAIL ({e})"),
    }
    let worst = runs
        .iter()
        .map(|r| r.events_per_sec)
        .fold(f64::INFINITY, f64::min);
    if worst >= EVENTS_PER_SEC_FLOOR {
        eprintln!(
            "perf throughput gate: PASS (slowest fleet {worst:.0} events/s >= floor {EVENTS_PER_SEC_FLOOR:.0})"
        );
    } else {
        eprintln!(
            "perf throughput gate: FAIL (slowest fleet {worst:.0} events/s < floor {EVENTS_PER_SEC_FLOOR:.0})"
        );
    }
    let large = runs.last().expect("fleets nonempty");
    let ratio = large.events_per_sec / PR7_LARGE_EVENTS_PER_SEC;
    eprintln!(
        "perf baseline ratio: {ratio:.2}x vs PR 7 large fleet ({PR7_LARGE_EVENTS_PER_SEC:.0} events/s; engine-rework target {SPEEDUP_TARGET:.1}x)"
    );
    if ratio >= BASELINE_RATIO_FLOOR {
        eprintln!(
            "perf baseline gate: PASS (large fleet {ratio:.2}x >= regression guard {BASELINE_RATIO_FLOOR:.2}x)"
        );
    } else {
        eprintln!(
            "perf baseline gate: FAIL (large fleet {ratio:.2}x < regression guard {BASELINE_RATIO_FLOOR:.2}x)"
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn check_mode_is_deterministic() {
        let a = perf(true);
        let b = perf(true);
        assert_eq!(a, b, "perf --check output must be byte-identical");
        assert!(a.contains("fleet=small"));
        assert!(a.contains("sim;zeus.ensemble;deliver"));
        // Wall-clock leak audit: the golden-gated surface must carry only
        // virtual-time fields.
        for leak in ["wall_ms", "events/sec", "wall_ns", "share="] {
            assert!(
                !a.contains(leak),
                "wall-clock field {leak:?} leaked into --check"
            );
        }
    }

    #[test]
    fn json_schema_round_trips() {
        let runs: Vec<FleetRun> = FLEETS
            .iter()
            .take(3)
            .map(|&(name, r, c, s)| run_fleet(name, r, c, s))
            .collect();
        let rows: Vec<PerfRow> = runs.iter().map(to_row).collect();
        let json = bench_json::render(&rows, &[]);
        bench_json::validate(&json).expect("schema-valid");
    }
}
