//! `repro compile`: the compile-pipeline benchmark — parallel, incremental
//! compilation with the shared content-addressed parse cache.
//!
//! A synthetic corpus of entry configs fans in on shared support files:
//! one comment-heavy "hot" module imported by a tenth of the entries
//! (documentation-dominated shared configs are the paper's `app_port.cinc`
//! writ large), a ring of medium modules each imported by a quarter of the
//! entries, and a handful of schemas with validators. The experiment runs
//! the same commits through three pipeline configurations:
//!
//! * **legacy** — serial, no parse cache, no fingerprint skips (the
//!   pre-optimization compiler);
//! * **serial cached** — one worker with the parse cache and fingerprint
//!   skips, so every cache counter is exactly reproducible;
//! * **fast** — the default options (parallel workers + cache + skips).
//!
//! Stdout is byte-deterministic — corpus shape, candidate/compiled/skipped
//! counts, exact cache hit rates from the serial cached pipeline, the
//! correctness gates, and a counters-only Prometheus export
//! (`scripts/check.sh` diffs it against `scripts/goldens/compile.txt`).
//! Wall-clock timings and the speedup gates go to **stderr**: they depend
//! on the machine. The line `compile speedup gates: PASS` is printed to
//! stderr when every enforced gate holds; `check.sh` greps for it. The
//! parallel-vs-serial gate is only enforced when at least two workers are
//! available.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::time::Instant;

use configerator::{CompileOptions, ConfigeratorService};

use crate::Scale;

/// Shared medium modules; every entry imports two of them.
const MODULES: usize = 8;
/// Schemas (each with a validator); entries round-robin over them.
const SCHEMAS: usize = 4;
/// One entry in `HOT_FANIN` imports the hot module.
const HOT_FANIN: usize = 10;
/// Helper functions in the hot module. Function bodies are parsed in full
/// but binding a `def` is a refcount bump, so a library-style module is
/// exactly what the shared parse cache saves: all the cost is in the
/// parse.
const HOT_FUNCS: usize = 250;
/// Helper functions per medium module.
const MOD_FUNCS: usize = 25;

const HOT_PATH: &str = "shared/hot.cinc";

/// Required speedup of warm-incremental recompile over a legacy serial
/// recompile of the same ripple.
const WARM_GATE: f64 = 5.0;
/// Required speedup of the parallel cold compile over the legacy serial
/// one (enforced only with ≥ 2 workers).
const PARALLEL_GATE: f64 = 2.0;

fn module_path(m: usize) -> String {
    format!("shared/mod{m}.cinc")
}

fn schema_path(s: usize) -> String {
    format!("schemas/conf{s}.schema")
}

fn validator_path(s: usize) -> String {
    format!("schemas/conf{s}.cvalidator")
}

fn entry_path(e: usize) -> String {
    format!("app/entry{e:04}.cconf")
}

/// A block of library-style helper functions: multi-line bodies with
/// locals, conditionals, and arithmetic — realistic shared-config helper
/// code whose cost is almost entirely in the parse.
fn func_block(prefix: &str, count: usize, salt: u64) -> String {
    let mut out = String::with_capacity(count * 160);
    for i in 0..count {
        let k = salt + i as u64;
        let _ = writeln!(out, "def {prefix}_f{i}(x, scale={}):", 1 + k % 7);
        let _ = writeln!(out, "    base = x * scale + {k}");
        let _ = writeln!(out, "    spread = base - x + {}", k % 13);
        let _ = writeln!(out, "    if spread > {}:", 50 + k % 50);
        let _ = writeln!(out, "        return spread + base + 1");
        let _ = writeln!(out, "    return base + spread + {}", k % 5);
    }
    out
}

fn hot_src(version: u64) -> String {
    let mut out = func_block("hot", HOT_FUNCS, 17);
    for i in 0..24 {
        let _ = writeln!(out, "HOT_C{i} = {}", 1_000 + version * 100 + i);
    }
    out
}

fn module_src(m: usize, version: u64) -> String {
    let mut out = func_block(&format!("m{m}"), MOD_FUNCS, 7 * m as u64);
    for i in 0..16 {
        let _ = writeln!(out, "M{m}_C{i} = {}", 10 * (m as u64 + 1) + version + i);
    }
    out
}

fn schema_src(s: usize) -> String {
    format!("struct Conf{s} {{ 1: string name 2: i64 weight = 10 }}")
}

fn validator_src(_s: usize) -> String {
    "def validate(cfg):\n    require(cfg.weight >= 0, \"weight must be nonnegative\")".to_string()
}

fn entry_src(e: usize, hot_importer: bool) -> String {
    let a = e % MODULES;
    let b = (e + 3) % MODULES;
    let s = e % SCHEMAS;
    let mut out = String::new();
    let _ = writeln!(out, "import \"{}\"", module_path(a));
    let _ = writeln!(out, "import \"{}\"", module_path(b));
    if hot_importer {
        let _ = writeln!(out, "import \"{HOT_PATH}\"");
    }
    let _ = writeln!(out, "schema \"{}\"", schema_path(s));
    let weight = if hot_importer {
        format!("hot_f{}(M{a}_C1) + HOT_C{}", e % HOT_FUNCS, e % 24)
    } else {
        format!("m{a}_f{}(M{a}_C1) + M{b}_C2 + {e}", e % MOD_FUNCS)
    };
    let _ = writeln!(
        out,
        "export_if_last(Conf{s} {{ name: \"entry{e}\", weight: {weight} }})"
    );
    out
}

/// The full source tree at hot-module `version`.
fn corpus(entries: usize, version: u64) -> BTreeMap<String, Option<String>> {
    let mut files = BTreeMap::new();
    files.insert(HOT_PATH.to_string(), Some(hot_src(version)));
    for m in 0..MODULES {
        files.insert(module_path(m), Some(module_src(m, 0)));
    }
    for s in 0..SCHEMAS {
        files.insert(schema_path(s), Some(schema_src(s)));
        files.insert(validator_path(s), Some(validator_src(s)));
    }
    for e in 0..entries {
        files.insert(entry_path(e), Some(entry_src(e, e % HOT_FANIN == 0)));
    }
    files
}

fn timed_commit(
    svc: &mut ConfigeratorService,
    message: &str,
    changes: BTreeMap<String, Option<String>>,
) -> (configerator::CommitReport, f64) {
    let start = Instant::now();
    let report = svc.commit_source("bench", message, changes).expect(message);
    (report, start.elapsed().as_secs_f64())
}

/// Keeps only the counter sections of a Prometheus text export (histogram
/// sections carry timings, which are not reproducible). Shared with
/// `verify_exp`, which has the same determinism constraint.
pub(crate) fn counters_only(export: &str) -> String {
    let mut out = String::new();
    let mut keep = false;
    for line in export.lines() {
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            keep = rest.ends_with(" counter");
        }
        if keep {
            out.push_str(line);
            out.push('\n');
        }
    }
    out
}

/// Runs the compile benchmark; returns the deterministic report (stdout)
/// and prints timings plus speedup-gate verdicts to stderr.
pub fn compile(scale: Scale) -> String {
    let entries = match scale {
        Scale::Small => 1000,
        Scale::Full => 2000,
    };
    let seed_tree = corpus(entries, 0);
    let hot_dependents = entries / HOT_FANIN;

    // Pipelines under test.
    let mut legacy = ConfigeratorService::with_options(CompileOptions::legacy());
    let mut cached = ConfigeratorService::with_options(CompileOptions {
        workers: 1,
        incremental: true,
        parse_cache: true,
        verify: true,
    });
    let mut fast = ConfigeratorService::new();

    // Phase 1: cold full compile.
    let (_, t_cold_legacy) = timed_commit(&mut legacy, "seed", seed_tree.clone());
    let (rep_cold_cached, t_cold_cached) = timed_commit(&mut cached, "seed", seed_tree.clone());
    let (rep_cold_fast, t_cold_fast) = timed_commit(&mut fast, "seed", seed_tree.clone());

    // Phase 2: edit the hot module; the ripple is its dependents.
    let predicted: Vec<String> = fast
        .dependency()
        .dependents_of([HOT_PATH])
        .into_iter()
        .collect();
    let edit: BTreeMap<String, Option<String>> = [(HOT_PATH.to_string(), Some(hot_src(1)))]
        .into_iter()
        .collect();
    let (_, t_warm_legacy) = timed_commit(&mut legacy, "hot edit", edit.clone());
    let (rep_warm_cached, _) = timed_commit(&mut cached, "hot edit", edit.clone());
    let (rep_warm_fast, t_warm_fast) = timed_commit(&mut fast, "hot edit", edit);

    // Phase 3: a no-op rewrite of a medium module (automation tools land
    // whole-tree rewrites; fingerprints make the untouched part free).
    let noop: BTreeMap<String, Option<String>> = [(module_path(0), Some(module_src(0, 0)))]
        .into_iter()
        .collect();
    let (_, _) = timed_commit(&mut legacy, "no-op rewrite", noop.clone());
    let (_, _) = timed_commit(&mut cached, "no-op rewrite", noop.clone());
    let (rep_noop_fast, _) = timed_commit(&mut fast, "no-op rewrite", noop);

    // Gate: warm-incremental never recompiles more than the ripple.
    let ripple_ok = rep_warm_fast.recompiled_entries.len() <= predicted.len()
        && rep_warm_fast
            .recompiled_entries
            .iter()
            .all(|e| predicted.contains(e));

    // Gate: artifacts after the incremental walk are byte-identical to a
    // from-scratch compile of the final tree.
    let mut fresh = ConfigeratorService::with_options(CompileOptions::legacy());
    fresh
        .commit_source("bench", "replay", corpus(entries, 1))
        .expect("replay");
    let byte_identical = fresh.config_names() == fast.config_names()
        && fresh
            .config_names()
            .iter()
            .all(|n| fresh.artifact(n).unwrap().json == fast.artifact(n).unwrap().json);

    // ---- deterministic report (stdout, golden-diffed) ----
    let mut out = String::new();
    let _ = writeln!(
        out,
        "corpus: {entries} entries | {} medium modules | {SCHEMAS} schemas + validators | hot module fan-in {hot_dependents}",
        MODULES
    );
    let _ = writeln!(out);
    let _ = writeln!(out, "phase            candidates  compiled  skipped");
    for (label, rep) in [
        ("cold", &rep_cold_fast),
        ("warm hot-edit", &rep_warm_fast),
        ("no-op rewrite", &rep_noop_fast),
    ] {
        let _ = writeln!(
            out,
            "{label:<16} {:>10}  {:>8}  {:>7}",
            rep.stats.candidates, rep.stats.compiled, rep.stats.skipped
        );
    }
    let _ = writeln!(out);
    let cold = rep_cold_cached.stats;
    let warm = rep_warm_cached.stats;
    let rate = |h: u64, m: u64| 100.0 * h as f64 / (h + m).max(1) as f64;
    let _ = writeln!(
        out,
        "parse cache (serial pipeline): cold {} hits / {} misses ({:.1}% hit rate)",
        cold.parse_hits,
        cold.parse_misses,
        rate(cold.parse_hits, cold.parse_misses)
    );
    let _ = writeln!(
        out,
        "parse cache (serial pipeline): warm {} hits / {} misses ({:.1}% hit rate)",
        warm.parse_hits,
        warm.parse_misses,
        rate(warm.parse_hits, warm.parse_misses)
    );
    let _ = writeln!(out);
    let _ = writeln!(
        out,
        "ripple gate: warm-incremental recompiled {} of {} predicted dependents: {}",
        rep_warm_fast.recompiled_entries.len(),
        predicted.len(),
        if ripple_ok { "PASS" } else { "FAIL" }
    );
    let _ = writeln!(
        out,
        "no-op skip gate: {} candidates, {} skipped: {}",
        rep_noop_fast.stats.candidates,
        rep_noop_fast.stats.skipped,
        if rep_noop_fast.stats.compiled == 0 {
            "PASS"
        } else {
            "FAIL"
        }
    );
    let _ = writeln!(
        out,
        "byte-identity gate: {} artifacts identical to from-scratch rebuild: {}",
        fast.config_names().len(),
        if byte_identical { "PASS" } else { "FAIL" }
    );
    let _ = writeln!(out);
    let _ = writeln!(out, "-- pipeline counters (serial cached pipeline) --");
    out.push_str(&counters_only(&cached.metrics().export_prometheus()));

    // ---- machine-dependent timings + speedup gates (stderr) ----
    let workers = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
        .min(8);
    let parallel_speedup = t_cold_legacy / t_cold_fast.max(1e-9);
    let warm_speedup = t_warm_legacy / t_warm_fast.max(1e-9);
    eprintln!(
        "cold compile:   legacy {:.1} ms | serial+cache {:.1} ms | fast({workers}w) {:.1} ms  ({parallel_speedup:.1}x)",
        t_cold_legacy * 1e3,
        t_cold_cached * 1e3,
        t_cold_fast * 1e3
    );
    eprintln!(
        "warm hot-edit:  legacy {:.1} ms | fast {:.1} ms  ({warm_speedup:.1}x, ripple {})",
        t_warm_legacy * 1e3,
        t_warm_fast * 1e3,
        predicted.len()
    );
    // Verify-pass overhead: the static verifier runs inside plan() on the
    // warm hot-edit commit; its share of the wall time is the price every
    // commit pays for the pre-commit gate. The content-addressed facts
    // cache must keep it under a tenth of the warm compile.
    let verify_share = 100.0 * (rep_warm_fast.stats.verify_us as f64 / 1e6) / t_warm_fast.max(1e-9);
    eprintln!(
        "verify pass:    warm {:.2} ms of {:.1} ms total ({verify_share:.1}% of warm commit)",
        rep_warm_fast.stats.verify_us as f64 / 1e3,
        t_warm_fast * 1e3
    );
    let verify_ok = verify_share < 10.0;
    eprintln!(
        "gate: verify pass < 10% of warm compile wall time: {}",
        if verify_ok { "PASS" } else { "FAIL" }
    );
    let warm_ok = warm_speedup >= WARM_GATE;
    let parallel_ok = workers < 2 || parallel_speedup >= PARALLEL_GATE;
    eprintln!(
        "gate: warm-incremental >= {WARM_GATE:.0}x legacy ripple recompile: {}",
        if warm_ok { "PASS" } else { "FAIL" }
    );
    if workers < 2 {
        eprintln!(
            "gate: parallel cold >= {PARALLEL_GATE:.0}x serial: SKIPPED (1 worker available)"
        );
    } else {
        eprintln!(
            "gate: parallel cold >= {PARALLEL_GATE:.0}x serial: {}",
            if parallel_speedup >= PARALLEL_GATE {
                "PASS"
            } else {
                "FAIL"
            }
        );
    }
    if warm_ok && parallel_ok && ripple_ok && byte_identical && verify_ok {
        eprintln!("compile speedup gates: PASS");
    } else {
        eprintln!("compile speedup gates: FAIL");
    }
    eprintln!(
        "verify overhead gate: {}",
        if verify_ok { "PASS" } else { "FAIL" }
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_compiles_and_gates_hold_at_small_size() {
        // A miniature corpus exercises the full report path quickly; the
        // deterministic gates must read PASS (timing gates are stderr-only
        // and not asserted here — debug builds on one core are too noisy).
        let mut legacy = ConfigeratorService::with_options(CompileOptions::legacy());
        let mut fast = ConfigeratorService::new();
        let tree = corpus(40, 0);
        legacy.commit_source("t", "seed", tree.clone()).unwrap();
        fast.commit_source("t", "seed", tree).unwrap();
        let edit: BTreeMap<String, Option<String>> = [(HOT_PATH.to_string(), Some(hot_src(1)))]
            .into_iter()
            .collect();
        let a = legacy.commit_source("t", "edit", edit.clone()).unwrap();
        let b = fast.commit_source("t", "edit", edit).unwrap();
        assert_eq!(a.updated_configs, b.updated_configs);
        assert_eq!(b.stats.candidates, 4, "40 entries / fan-in 10");
        for n in &a.updated_configs {
            assert_eq!(
                legacy.artifact(n).unwrap().json,
                fast.artifact(n).unwrap().json
            );
        }
    }

    #[test]
    fn counters_only_drops_histograms() {
        let filtered = counters_only(
            "# TYPE a counter\na 3\n# TYPE b histogram\nb_bucket{le=\"1\"} 2\nb_sum 9\n# TYPE c counter\nc 7\n",
        );
        assert_eq!(filtered, "# TYPE a counter\na 3\n# TYPE c counter\nc 7\n");
    }
}
