//! `repro laser`: the distributed Laser serving tier under faults —
//! hedged versus unhedged reads, stale-cache degradation, and atomic bulk
//! generation flips.
//!
//! The stack under test is the full pipeline: Gatekeeper `laser()`
//! restraints evaluated on frontend actors whose [`LaserClient`] routes
//! gets to sharded replica groups; stream datasets ingested through the
//! Zeus observer feed; bulk datasets shipped P2P via PackageVessel and
//! activated by an atomic generation flip. The sweep crosses query rate
//! with a fault menu — replica crash, one-way (asymmetric) partition, and
//! a slow replica — and A/Bs hedged against unhedged reads in each cell.
//!
//! Two properties are load-bearing and asserted by tests as well as
//! reported: no multi-key probe ever observes a mix of two bulk
//! generations (activation is atomic end to end), and no Gatekeeper
//! `laser()` evaluation fails outright while a single replica is down
//! (hedging and the stale-cache fallback absorb the outage). The chaos
//! section re-checks both under a seeded random fault schedule that
//! includes one-way partitions. Output is byte-deterministic per seed
//! (`scripts/check.sh` diffs it against a golden).

use gatekeeper::prelude::{Project, RestraintKind, RestraintSpec, Rule, Runtime, UserContext};
use laser::client::{ClientConfig, Completion, LaserClient, Served, TAG_BASE};
use laser::deploy::{LaserDeployConfig, LaserDeployment};
use laser::msg::LaserMsg;
use laser::server::LaserShardServer;
use laser::{feed, metrics as lm, ResolvedBackend};
use packagevessel::deploy::PvDeployment;
use packagevessel::storage::{PeerPolicy, StorageActor};
use simnet::chaos::{run_plan, ChaosConfig, ChaosPlan, Invariant};
use simnet::prelude::*;
use zeus::deploy::{DeployConfig, ZeusDeployment};
use zeus::ensemble::EnsembleConfig;

/// Per-frontend query rates swept (queries per second).
const QPS: &[u64] = &[40, 160];
/// Users the gating workload draws from.
const USERS: u64 = 64;
/// Keys in the bulk dataset.
const BULK_KEYS: usize = 64;
/// Stream dataset refresh period.
const STREAM_EVERY_US: u64 = 300_000;
/// Multi-key generation-probe period per frontend.
const PROBE_EVERY_US: u64 = 250_000;
/// Fault injection window.
const FAULT_AT_US: u64 = 3_000_000;
const FAULT_HEAL_US: u64 = 6_500_000;
/// Slow-replica response delay — far above the ~80 ms cross-region RTT,
/// so an unhedged read is pinned at it while a hedged one escapes.
const SLOW_DELAY_US: u64 = 250_000;
const SLOW_HEAL_US: u64 = 8_000_000;
/// Run horizon.
const HORIZON_US: u64 = 9_500_000;
/// Seeded sub-runs merged per cell (tail quantiles of one run hinge on a
/// handful of fault-window queries; merging stabilizes them).
const SUBRUNS: u64 = 3;

/// The fault injected into a sweep cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FaultMode {
    None,
    /// Crash one replica of shard 0 for the fault window.
    Crash,
    /// One-way partition out of the crashed-replica region: requests still
    /// arrive, replies vanish.
    OneWay,
    /// The shard-0 primary answers after an extra [`SLOW_DELAY_US`].
    Slow,
}

impl FaultMode {
    fn label(self) -> &'static str {
        match self {
            FaultMode::None => "none",
            FaultMode::Crash => "crash",
            FaultMode::OneWay => "oneway",
            FaultMode::Slow => "slow",
        }
    }
}

/// Host-actor timer tags (client tags live at [`TAG_BASE`] and above).
const TAG_QUERY: u64 = 1;
const TAG_PROBE: u64 = 2;

/// A frontend: evaluates Gatekeeper checks against values resolved through
/// the Laser client, and fires multi-key generation probes.
struct Frontend {
    client: LaserClient,
    rt: Runtime<ResolvedBackend>,
    query_every: SimDuration,
    start_delay: SimDuration,
    started: bool,
    probe_idx: u64,
    /// Gatekeeper evaluations completed / passed.
    evals: u64,
    passes: u64,
    /// Evaluations whose Laser query failed outright (no fresh reply, no
    /// cache cover) — the acceptance criterion counts these.
    failed_evals: u64,
    /// Multi-key probes checked / observed mixing two bulk generations.
    probes: u64,
    mixed: u64,
}

impl Frontend {
    fn new(cfg: ClientConfig, query_every: SimDuration, start_delay: SimDuration) -> Frontend {
        let mut rt = Runtime::new(ResolvedBackend::new());
        rt.update_project(Project::new(
            "exp",
            vec![Rule::new(
                vec![RestraintSpec::of(RestraintKind::Laser {
                    dataset: "gk".into(),
                    project: "proj".into(),
                    threshold: 0.5,
                })],
                1.0,
            )],
        ));
        Frontend {
            client: LaserClient::new(cfg),
            rt,
            query_every,
            start_delay,
            started: false,
            probe_idx: 0,
            evals: 0,
            passes: 0,
            failed_evals: 0,
            probes: 0,
            mixed: 0,
        }
    }

    fn complete(&mut self, ctx: &mut Ctx<'_>, c: Completion) {
        if c.dataset == "gk" {
            if c.served == Served::Failed {
                self.failed_evals += 1;
                ctx.metrics().incr("laser.exp.failed_evals", 1);
            } else {
                for (k, v) in c.keys.iter().zip(&c.values) {
                    self.rt.laser_mut().set("gk", k, *v);
                }
            }
            let Some(user) = c.keys[0]
                .strip_prefix("proj-")
                .and_then(|u| u.parse::<u64>().ok())
            else {
                return;
            };
            let user_ctx = UserContext::with_id(user);
            self.evals += 1;
            if self.rt.check("exp", &user_ctx) {
                self.passes += 1;
            }
        } else if c.dataset == "ranker" {
            if c.served == Served::Failed {
                return;
            }
            self.probes += 1;
            let floors: Vec<u64> = c.values.iter().flatten().map(|v| *v as u64).collect();
            if floors.windows(2).any(|w| w[0] != w[1]) {
                self.mixed += 1;
                ctx.metrics().incr("laser.exp.mixed_generation", 1);
            }
        }
    }
}

impl simnet::Actor for Frontend {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        if self.started {
            return;
        }
        self.started = true;
        ctx.set_timer(self.start_delay, TAG_QUERY);
        ctx.set_timer(self.start_delay + SimDuration(800_000), TAG_PROBE);
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_>, from: NodeId, msg: Message) {
        if let Ok(m) = msg.downcast::<LaserMsg>() {
            if let Some(c) = self.client.on_message(ctx, from, *m) {
                self.complete(ctx, c);
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, tag: u64) {
        if tag >= TAG_BASE {
            if let Some(c) = self.client.on_timer(ctx, tag) {
                self.complete(ctx, c);
            }
            return;
        }
        match tag {
            TAG_QUERY => {
                let user = ctx.rng().gen_range(0..USERS);
                let key = format!("proj-{user}");
                if let Some(c) = self.client.query(ctx, "gk", vec![key], None) {
                    self.complete(ctx, c);
                }
                ctx.set_timer(self.query_every, TAG_QUERY);
            }
            TAG_PROBE => {
                let start = (self.probe_idx * 4) as usize % BULK_KEYS;
                let keys: Vec<String> = (0..4)
                    .map(|i| format!("item-{}", (start + i) % BULK_KEYS))
                    .collect();
                self.probe_idx += 1;
                if let Some(c) = self.client.query(ctx, "ranker", keys, None) {
                    self.complete(ctx, c);
                }
                ctx.set_timer(SimDuration(PROBE_EVERY_US), TAG_PROBE);
            }
            _ => {}
        }
    }
}

use rand::Rng;

/// Everything installed for one run.
struct Stack {
    zeus: ZeusDeployment,
    laser: LaserDeployment,
    frontends: Vec<NodeId>,
    storage: NodeId,
}

/// Installs Zeus, the Laser tier, a PackageVessel storage node, and one
/// frontend per region, carving all roles out of the Zeus proxy pool.
fn install(sim: &mut Sim, qps: u64, hedge: bool) -> Stack {
    let zeus = ZeusDeployment::install(
        sim,
        &DeployConfig {
            ensemble_size: 5,
            observers_per_cluster: 1,
            subscriptions: Vec::new(),
            ensemble: EnsembleConfig::default(),
        },
    );
    let topo = sim.topology().clone();
    let mut by_region: Vec<Vec<NodeId>> = vec![Vec::new(); topo.num_regions()];
    for &p in &zeus.proxies {
        by_region[topo.placement(p).region.0 as usize].push(p);
    }
    let storage = by_region[0].remove(0);
    let frontends: Vec<NodeId> = by_region.iter_mut().map(|r| r.remove(0)).collect();
    let candidates: Vec<NodeId> = by_region.into_iter().flatten().collect();

    sim.add_actor(
        storage,
        Box::new(StorageActor::new(PeerPolicy::LocalityAware)),
    );
    let laser = LaserDeployment::install(
        sim,
        &LaserDeployConfig {
            shards: 4,
            replicas: 2,
            candidates,
            observers: zeus.observers.clone(),
            stream_datasets: vec!["gk".into()],
            bulk_datasets: vec!["ranker".into()],
            memory_cap: 4096,
            pv_window: 4,
        },
    );
    for (i, &f) in frontends.iter().enumerate() {
        let region = topo.placement(f).region;
        let mut cfg = ClientConfig::new(laser.map.clone(), region);
        cfg.hedge = hedge;
        sim.add_actor(
            f,
            Box::new(Frontend::new(
                cfg,
                SimDuration(1_000_000 / qps),
                SimDuration(300_000 + i as u64 * 17_000),
            )),
        );
    }
    Stack {
        zeus,
        laser,
        frontends,
        storage,
    }
}

/// Schedules the stream-refresh and bulk-publish workload.
fn schedule_workload(sim: &mut Sim, stack: &Stack) {
    // Stream dataset: full-state refresh of every user's score. Values
    // rotate so roughly half the users pass the 0.5 threshold at any time.
    let path = feed::stream_path("gk");
    let mut at = 200_000u64;
    let mut round = 0u64;
    while at < HORIZON_US {
        let entries: Vec<(String, f64)> = (0..USERS)
            .map(|u| {
                let v = ((u * 7 + round * 13) % 100) as f64 / 100.0;
                (format!("proj-{u}"), v)
            })
            .collect();
        stack
            .zeus
            .write_current(sim, SimTime(at), &path, feed::encode_entries(&entries));
        at += STREAM_EVERY_US;
        round += 1;
    }
    // Bulk dataset: three generations. Every value's integer part is the
    // generation, which is what the probes check for mixing. Content goes
    // to the storage node once per generation; the metadata write is
    // re-announced every 500 ms (a publisher that retries until its write
    // lands — a one-shot proposal during an election window would vanish,
    // and unlike the full-state stream feed nothing else would cover it).
    // Servers deduplicate repeats by version.
    let config = feed::bulk_path("ranker");
    let publishes: Vec<(u64, u64)> = vec![(1, 500_000), (2, 4_000_000), (3, 7_000_000)];
    let metas: Vec<(u64, packagevessel::types::BulkMeta)> = publishes
        .iter()
        .map(|&(version, at)| {
            let entries: Vec<(String, f64)> = (0..BULK_KEYS)
                .map(|i| (format!("item-{i}"), version as f64 + i as f64 / 1000.0))
                .collect();
            let data = bytes::Bytes::from(feed::encode_entries(&entries));
            let meta = PvDeployment::publish_bytes(
                sim,
                stack.storage,
                &config,
                version,
                data,
                256,
                SimTime(at),
            );
            (at, meta)
        })
        .collect();
    let mut at = 500_000u64;
    while at < HORIZON_US {
        let newest = metas
            .iter()
            .rfind(|(pub_at, _)| *pub_at <= at)
            .map(|(_, m)| m);
        if let Some(meta) = newest {
            stack
                .zeus
                .write_current(sim, SimTime(at), &config, feed::encode_bulk_meta(meta));
        }
        at += 500_000;
    }
}

/// Injects the cell's fault. The victim is always replica 0 of shard 0
/// (the primary that two of the three frontends prefer).
fn schedule_fault(sim: &mut Sim, stack: &Stack, fault: FaultMode) {
    let victim = stack.laser.map.replicas(0)[0];
    let victim_region = sim.topology().placement(victim).region;
    match fault {
        FaultMode::None => {}
        FaultMode::Crash => {
            sim.schedule(SimTime(FAULT_AT_US), move |s| s.crash(victim));
            sim.schedule(SimTime(FAULT_HEAL_US), move |s| s.recover(victim));
        }
        FaultMode::OneWay => {
            let to = RegionId((victim_region.0 + 1) % sim.topology().num_regions() as u16);
            sim.schedule(SimTime(FAULT_AT_US), move |s| {
                s.partition_oneway(victim_region, to);
            });
            sim.schedule(SimTime(FAULT_HEAL_US), move |s| {
                s.heal_oneway(victim_region, to);
            });
        }
        FaultMode::Slow => {
            sim.schedule(SimTime(FAULT_AT_US), move |s| {
                if let Some(srv) = s.actor_mut::<LaserShardServer>(victim) {
                    srv.set_response_delay(SimDuration(SLOW_DELAY_US));
                }
            });
            sim.schedule(SimTime(SLOW_HEAL_US), move |s| {
                if let Some(srv) = s.actor_mut::<LaserShardServer>(victim) {
                    srv.set_response_delay(SimDuration::ZERO);
                }
            });
        }
    }
}

/// One cell's merged observables.
#[derive(Debug, Default, Clone)]
struct Totals {
    queries: u64,
    cache: u64,
    hedges: u64,
    hedge_wins: u64,
    stale: u64,
    failed: u64,
    evals: u64,
    passes: u64,
    failed_evals: u64,
    probes: u64,
    mixed: u64,
    /// Lowest activated bulk generation across shard servers at the end.
    min_bulk: u64,
    p50_s: Option<f64>,
    p99_s: Option<f64>,
}

fn run_once(seed: u64, qps: u64, fault: FaultMode, hedge: bool) -> (Metrics, Totals) {
    let topo = Topology::symmetric(3, 2, 6);
    let mut sim = Sim::new(topo, NetConfig::datacenter(), seed);
    let stack = install(&mut sim, qps, hedge);
    schedule_workload(&mut sim, &stack);
    schedule_fault(&mut sim, &stack, fault);
    sim.run_until(SimTime(HORIZON_US));

    let mut t = Totals {
        min_bulk: u64::MAX,
        ..Totals::default()
    };
    for &f in &stack.frontends {
        let fe: &Frontend = sim.actor(f).expect("frontend installed");
        let s = fe.client.stats();
        t.queries += s.queries;
        t.cache += s.cache_answered;
        t.hedges += s.hedges;
        t.hedge_wins += s.hedge_wins;
        t.stale += s.stale_served;
        t.failed += s.failed;
        t.evals += fe.evals;
        t.passes += fe.passes;
        t.failed_evals += fe.failed_evals;
        t.probes += fe.probes;
        t.mixed += fe.mixed;
    }
    for &n in &stack.laser.servers {
        let srv: &LaserShardServer = sim.actor(n).expect("shard server installed");
        t.min_bulk = t.min_bulk.min(srv.activated_version("ranker"));
    }
    (sim.metrics().clone(), t)
}

/// Merges [`SUBRUNS`] seeded runs of one (qps, fault, mode) cell.
fn run_cell(seed: u64, qps: u64, fault: FaultMode, hedge: bool) -> Totals {
    let mut merged = Metrics::new();
    let mut t = Totals {
        min_bulk: u64::MAX,
        ..Totals::default()
    };
    for sub in 0..SUBRUNS {
        let (m, r) = run_once(seed + 1000 * sub, qps, fault, hedge);
        merged.merge(&m);
        t.queries += r.queries;
        t.cache += r.cache;
        t.hedges += r.hedges;
        t.hedge_wins += r.hedge_wins;
        t.stale += r.stale;
        t.failed += r.failed;
        t.evals += r.evals;
        t.passes += r.passes;
        t.failed_evals += r.failed_evals;
        t.probes += r.probes;
        t.mixed += r.mixed;
        t.min_bulk = t.min_bulk.min(r.min_bulk);
    }
    let h = merged.histogram(lm::QUERY_S);
    t.p50_s = h.map(|h| h.quantile_secs(0.50));
    t.p99_s = h.map(|h| h.quantile_secs(0.99));
    t
}

fn fmt_ms(p: Option<f64>) -> String {
    match p {
        Some(s) => format!("{:.1}ms", s * 1e3),
        None => "-".to_string(),
    }
}

/// The chaos section: a seeded random fault schedule (crashes of shard
/// replicas, symmetric and one-way partitions) with the generation-mix and
/// convergence invariants checked at every quiesce point.
fn chaos_section(seed: u64) -> String {
    struct GenerationAtomicity {
        frontends: Vec<NodeId>,
    }
    impl Invariant for GenerationAtomicity {
        fn name(&self) -> &'static str {
            "generation-atomicity"
        }
        fn check_always(&mut self, sim: &Sim) -> Result<(), String> {
            for &f in &self.frontends {
                let fe: &Frontend = sim.actor(f).ok_or("frontend missing")?;
                if fe.mixed > 0 {
                    return Err(format!(
                        "frontend {f} saw {} probes mixing two bulk generations",
                        fe.mixed
                    ));
                }
            }
            Ok(())
        }
    }

    struct BulkConvergence {
        servers: Vec<NodeId>,
        expect: u64,
        note: Option<String>,
    }
    impl Invariant for BulkConvergence {
        fn name(&self) -> &'static str {
            "bulk-convergence"
        }
        fn check_final(&mut self, sim: &Sim) -> Result<(), String> {
            let mut probed = 0u64;
            for &n in &self.servers {
                let srv: &LaserShardServer = sim.actor(n).ok_or("server missing")?;
                let v = srv.activated_version("ranker");
                probed += 1;
                if v != self.expect {
                    return Err(format!(
                        "server {n} activated generation {v}, expected {}",
                        self.expect
                    ));
                }
            }
            self.note = Some(format!(
                "{probed} servers at bulk generation {}",
                self.expect
            ));
            Ok(())
        }
        fn note(&self) -> Option<String> {
            self.note.clone()
        }
    }

    struct StreamConvergence {
        servers: Vec<NodeId>,
    }
    impl Invariant for StreamConvergence {
        fn name(&self) -> &'static str {
            "stream-convergence"
        }
        fn check_final(&mut self, sim: &Sim) -> Result<(), String> {
            let path = feed::stream_path("gk");
            let mut newest = zeus::types::Zxid::ZERO;
            for &n in &self.servers {
                let srv: &LaserShardServer = sim.actor(n).ok_or("server missing")?;
                newest = newest.max(srv.last_applied(&path));
            }
            for &n in &self.servers {
                let srv: &LaserShardServer = sim.actor(n).ok_or("server missing")?;
                let have = srv.last_applied(&path);
                if have < newest {
                    return Err(format!(
                        "server {n} stuck at {have:?}, newest applied is {newest:?}"
                    ));
                }
            }
            Ok(())
        }
    }

    let topo = Topology::symmetric(3, 2, 6);
    let mut sim = Sim::new(topo, NetConfig::datacenter(), seed);
    let stack = install(&mut sim, 40, true);
    schedule_workload(&mut sim, &stack);

    let crash_candidates: Vec<(String, NodeId)> = (0..stack.laser.map.num_shards())
        .flat_map(|s| {
            let map = &stack.laser.map;
            map.replicas(s)
                .iter()
                .enumerate()
                .map(move |(r, &n)| (format!("laser-s{s}r{r}"), n))
                .collect::<Vec<_>>()
        })
        .collect();
    let plan = ChaosPlan::generate(
        seed,
        &ChaosConfig {
            warmup: SimDuration::from_secs(2),
            horizon: SimDuration::from_secs(8),
            crash_candidates,
            max_crashes: 2,
            regions: 3,
            max_partitions: 1,
            max_oneway_partitions: 2,
            max_degrades: 0,
            min_outage: SimDuration::from_millis(500),
            max_outage: SimDuration::from_secs(2),
            ..ChaosConfig::default()
        },
    );
    let mut invariants: Vec<Box<dyn Invariant>> = vec![
        Box::new(GenerationAtomicity {
            frontends: stack.frontends.clone(),
        }),
        Box::new(BulkConvergence {
            servers: stack.laser.servers.clone(),
            expect: 3,
            note: None,
        }),
        Box::new(StreamConvergence {
            servers: stack.laser.servers.clone(),
        }),
    ];
    let report = run_plan(
        &mut sim,
        &plan,
        &mut invariants,
        SimDuration::from_millis(500),
        SimDuration::from_secs(5),
    );

    let mut out = format!("chaos schedule (seed {seed}):\n");
    for line in plan.describe() {
        out.push_str(&format!("  {line}\n"));
    }
    out.push_str(&format!(
        "checked {} quiesce points, finished at {:.1}s\n",
        report.checkpoints,
        report.finished_at.as_secs_f64()
    ));
    for v in &report.verdicts {
        let status = if v.ok() { "ok" } else { "FAIL" };
        out.push_str(&format!("  [{status}] {}", v.name));
        if let Some(f) = &v.failure {
            out.push_str(&format!(" — {f}"));
        }
        if let Some(n) = &v.note {
            out.push_str(&format!(" ({n})"));
        }
        out.push('\n');
    }
    out
}

/// Runs the sweep and renders the report.
pub fn laser(seed: u64) -> String {
    let mut out = format!(
        "laser serving tier — seed {seed}: hedged vs unhedged reads under faults\n\
         fleet: 3 regions × 2 clusters × 6 servers; 5-node Zeus ensemble, 1 observer/cluster\n\
         laser: 4 shards × 2 replicas (cross-region groups), 3 frontends, 1 PV storage\n\
         workload: {USERS}-user gk stream refreshed every {}ms; 3 bulk generations;\n\
         fault window [{}s..{}s] on shard-0 replica 0; {SUBRUNS} sub-runs per cell\n\n\
         {:>4} {:<7} {:<8} {:>7} {:>7} {:>7} {:>5} {:>6} {:>6} {:>9} {:>9} {:>6} {:>6}\n",
        STREAM_EVERY_US / 1000,
        FAULT_AT_US / 1_000_000,
        FAULT_HEAL_US as f64 / 1e6,
        "qps",
        "fault",
        "mode",
        "queries",
        "cache",
        "hedges",
        "wins",
        "stale",
        "failed",
        "p50",
        "p99",
        "mixed",
        "bulk_v",
    );
    let mut summary = String::new();
    for &qps in QPS {
        for fault in [
            FaultMode::None,
            FaultMode::Crash,
            FaultMode::OneWay,
            FaultMode::Slow,
        ] {
            let hedged = run_cell(seed, qps, fault, true);
            let unhedged = run_cell(seed, qps, fault, false);
            for (name, t) in [("hedged", &hedged), ("unhedged", &unhedged)] {
                out.push_str(&format!(
                    "{qps:>4} {:<7} {name:<8} {:>7} {:>7} {:>7} {:>5} {:>6} {:>6} {:>9} {:>9} {:>6} {:>6}\n",
                    fault.label(),
                    t.queries,
                    t.cache,
                    t.hedges,
                    t.hedge_wins,
                    t.stale,
                    t.failed,
                    fmt_ms(t.p50_s),
                    fmt_ms(t.p99_s),
                    t.mixed,
                    t.min_bulk,
                ));
            }
            if qps == QPS[QPS.len() - 1] {
                let ratio = match (unhedged.p99_s, hedged.p99_s) {
                    (Some(u), Some(h)) if h > 0.0 => format!("{:.2}×", u / h),
                    _ => "-".to_string(),
                };
                summary.push_str(&format!(
                    "{:<7} @ {qps} qps: p99 {} hedged vs {} unhedged ({ratio}); \
                     failed evals {} hedged / {} unhedged; mixed-generation probes {}\n",
                    fault.label(),
                    fmt_ms(hedged.p99_s),
                    fmt_ms(unhedged.p99_s),
                    hedged.failed_evals,
                    unhedged.failed_evals,
                    hedged.mixed + unhedged.mixed,
                ));
            }
        }
    }
    out.push('\n');
    out.push_str(&summary);
    out.push('\n');
    out.push_str(&chaos_section(seed));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hedging_cuts_p99_at_least_2x_under_slow_replica() {
        let hedged = run_cell(1, 160, FaultMode::Slow, true);
        let unhedged = run_cell(1, 160, FaultMode::Slow, false);
        let (h, u) = (hedged.p99_s.unwrap(), unhedged.p99_s.unwrap());
        assert!(
            u >= 2.0 * h,
            "expected ≥2× p99 cut from hedging under a slow replica: hedged={h:.4}s unhedged={u:.4}s"
        );
        assert!(hedged.hedge_wins > 0, "no hedge ever won the race");
    }

    #[test]
    fn no_failed_evals_during_single_replica_crash() {
        let t = run_cell(1, 40, FaultMode::Crash, true);
        assert!(t.evals > 100, "workload too thin: {} evals", t.evals);
        assert_eq!(
            t.failed_evals, 0,
            "gatekeeper laser() evaluations failed outright during a single-replica crash"
        );
        assert_eq!(t.failed, 0, "queries failed with a sibling replica up");
    }

    #[test]
    fn no_probe_observes_mixed_generations_and_bulk_converges() {
        for fault in [FaultMode::Crash, FaultMode::OneWay] {
            let t = run_cell(2, 40, fault, true);
            assert!(t.probes > 50, "probe workload too thin under {fault:?}");
            assert_eq!(t.mixed, 0, "mixed-generation probe under {fault:?}");
            assert_eq!(t.min_bulk, 3, "bulk load did not converge under {fault:?}");
        }
    }

    #[test]
    fn laser_report_is_deterministic_per_seed() {
        assert_eq!(laser(3), laser(3));
    }
}
