//! `repro fleet`: paper-scale diurnal replay of the distribution tree.
//!
//! The paper's production numbers are fleet-wide: hundreds of thousands of
//! servers receiving config updates through the Zeus ensemble → observer →
//! proxy tree, with commit arrivals following the strong diurnal cycle of
//! §5. This experiment replays that shape at three sizes (1k / 5k / 20k
//! nodes) on the allocation-free event core and recomputes the paper's
//! propagation-delay distribution table at each size: the delay from a
//! committed write to its landing in each subscribed proxy's on-disk
//! cache, summarized as p50/p90/p99/p999/max over every (write, proxy)
//! pair.
//!
//! Write arrivals are calibrated by `crates/workload`'s commit-rate model
//! (one modeled hour = one simulated second, so a day's diurnal curve is a
//! 24 s replay), exactly as `repro perf` does, so the two benchmarks stay
//! comparable. Propagation delays are *virtual* time: deterministic per
//! seed and byte-stable across queue implementations, machines, and runs.
//!
//! `fleet --check` prints only those deterministic fields (and skips the
//! 20k size to keep the gate fast); the live mode runs all three sizes,
//! reports wall-clock throughput, appends the `"fleet_runs"` section to
//! `BENCH_simnet.json` (preserving `repro perf`'s `"runs"`), and emits
//! schema + throughput gates on stderr. The throughput floor — 100k
//! events/s at ≥ 5k nodes — is deliberately far below a quiet release-mode
//! run: it catches order-of-magnitude regressions, not machine noise.

use std::fmt::Write as _;
use std::time::Instant;

use bytes::Bytes;
use simnet::prelude::*;
use workload::commits::CommitProcess;
use zeus::deploy::{DeployConfig, ZeusDeployment};
use zeus::metrics::{PROPAGATION_S, PROXY_UPDATES};

use crate::bench_json::{self, FleetRow};

/// Config paths the diurnal workload writes and every proxy subscribes to.
const PATHS: usize = 4;
/// Seed for every fleet size (the replay must be deterministic).
const SEED: u64 = 1;
/// Events/sec floor enforced on stderr for every fleet at or above
/// [`FLOOR_MIN_NODES`] nodes.
const EVENTS_PER_SEC_FLOOR: f64 = 100_000.0;
/// The floor applies from this fleet size up (the ISSUE's "≥ 5k nodes").
const FLOOR_MIN_NODES: usize = 5_000;

/// The three fleet sizes: (label, regions, clusters/region, servers/cluster).
const FLEETS: &[(&str, usize, usize, usize)] = &[
    ("1k", 3, 4, 84),    // 1008 nodes
    ("5k", 3, 7, 240),   // 5040 nodes
    ("20k", 4, 10, 500), // 20000 nodes
];

struct FleetResult {
    row: FleetRow,
    bytes_sent: u64,
    queue_peak: usize,
    queue_mean: f64,
}

/// Installs the Zeus tree and schedules the diurnal write day; returns
/// `(horizon, writes)`.
fn build_scenario(sim: &mut Sim) -> (SimTime, u64) {
    let cfg = DeployConfig {
        subscriptions: (0..PATHS).map(|i| format!("fleet/{i}")).collect(),
        ..DeployConfig::default()
    };
    let zeus = ZeusDeployment::install(sim, &cfg);

    // One modeled hour compresses to one simulated second; each hour's
    // commit count comes from the diurnal model and is scaled to at most
    // 12 writes/s so the 20k-node size stays tractable.
    let hours = CommitProcess::default().hourly_series(1, SEED);
    let scale = 12.0 / hours.iter().copied().max().unwrap_or(1).max(1) as f64;
    let mut seq = 0u64;
    for (h, &commits) in hours.iter().enumerate() {
        let window_start = 1_000_000 + h as u64 * 1_000_000;
        let n = ((commits as f64 * scale).round() as u64).max(1);
        for k in 0..n {
            let at = SimTime(window_start + k * (1_000_000 / n));
            let path = format!("fleet/{}", seq as usize % PATHS);
            zeus.write_current(sim, at, &path, Bytes::from(format!("v{seq}")));
            seq += 1;
        }
    }
    (
        SimTime(1_000_000 + hours.len() as u64 * 1_000_000 + 5_000_000),
        seq,
    )
}

fn run_fleet(name: &str, regions: usize, clusters: usize, servers: usize) -> FleetResult {
    let topo = Topology::symmetric(regions, clusters, servers);
    let nodes = topo.num_nodes();
    let mut sim = Sim::new(topo, NetConfig::datacenter(), SEED);
    sim.enable_profiler();
    let (horizon, writes) = build_scenario(&mut sim);
    let start = Instant::now();
    sim.run_until(horizon);
    let wall = start.elapsed();
    let events = sim.events_processed();
    // The paper's propagation table: virtual delay from commit to each
    // proxy's on-disk apply, from the log-bucketed histogram every proxy
    // samples into. All quantiles are deterministic.
    let prop = |q: f64| -> f64 {
        sim.metrics()
            .histogram(PROPAGATION_S)
            .map(|h| h.quantile_secs(q) * 1e3)
            .unwrap_or(0.0)
    };
    let propagation_ms = [prop(0.50), prop(0.90), prop(0.99), prop(0.999), prop(1.0)];
    let p = sim.profiler();
    FleetResult {
        row: FleetRow {
            fleet: name.to_string(),
            nodes: nodes as u64,
            events,
            wall_ms: wall.as_secs_f64() * 1e3,
            events_per_sec: events as f64 / wall.as_secs_f64().max(1e-9),
            writes,
            proxy_updates: sim.metrics().counter(PROXY_UPDATES),
            propagation_ms,
        },
        bytes_sent: sim.metrics().counter(simnet::stats::names::BYTES_SENT),
        queue_peak: p.queue_peak(),
        queue_mean: p.queue_mean(),
    }
}

fn virtual_report(out: &mut String, r: &FleetResult) {
    let row = &r.row;
    let _ = writeln!(
        out,
        "fleet={} nodes={} events={} writes={} proxy_updates={} bytes_sent={} peak_queue={} mean_queue={:.2}",
        row.fleet,
        row.nodes,
        row.events,
        row.writes,
        row.proxy_updates,
        r.bytes_sent,
        r.queue_peak,
        r.queue_mean,
    );
    let p = &row.propagation_ms;
    let _ = writeln!(
        out,
        "propagation delay (virtual ms): p50={:.3} p90={:.3} p99={:.3} p999={:.3} max={:.3}\n",
        p[0], p[1], p[2], p[3], p[4]
    );
}

/// Runs the paper-scale replay. With `check` set, runs the 1k and 5k
/// sizes and prints only the deterministic virtual fields (golden-gated
/// by `scripts/check.sh`); otherwise runs all three sizes, prints the live
/// wall-clock report, updates `BENCH_simnet.json`, and emits the schema +
/// throughput gates on stderr.
pub fn fleet(check: bool) -> String {
    let mut out = String::new();
    let sizes: Vec<&(&str, usize, usize, usize)> = FLEETS
        .iter()
        .filter(|&&(name, ..)| !(check && name == "20k"))
        .collect();
    let results: Vec<FleetResult> = sizes
        .iter()
        .map(|&&(name, r, c, s)| run_fleet(name, r, c, s))
        .collect();

    if check {
        let _ = writeln!(
            out,
            "paper-scale fleet replay — virtual (deterministic) fields only\n\
             (diurnal write day over the zeus tree; propagation delays are\n\
             simulated time and replay byte-identically per seed)\n"
        );
        for r in &results {
            virtual_report(&mut out, r);
        }
        return out;
    }

    let _ = writeln!(
        out,
        "paper-scale fleet replay — diurnal commit day over the zeus tree\n\
         (1 modeled hour = 1 s; propagation table recomputed per fleet size)\n"
    );
    for r in &results {
        let row = &r.row;
        let _ = writeln!(
            out,
            "fleet={} nodes={} events={} wall_ms={:.1} events/sec={:.0}",
            row.fleet, row.nodes, row.events, row.wall_ms, row.events_per_sec
        );
        virtual_report(&mut out, r);
    }

    let rows: Vec<FleetRow> = results.iter().map(|r| r.row.clone()).collect();
    match bench_json::write_fleet(bench_json::PATH, &rows) {
        Ok(()) => eprintln!("wrote {} (fleet_runs section)", bench_json::PATH),
        Err(e) => eprintln!("fleet: failed to write {}: {e}", bench_json::PATH),
    }
    match std::fs::read_to_string(bench_json::PATH)
        .map_err(|e| format!("unreadable: {e}"))
        .and_then(|t| bench_json::validate(&t))
    {
        Ok(()) => eprintln!("fleet schema: OK"),
        Err(e) => eprintln!("fleet schema: FAIL ({e})"),
    }
    let gated: Vec<&FleetResult> = results
        .iter()
        .filter(|r| r.row.nodes >= FLOOR_MIN_NODES as u64)
        .collect();
    let worst = gated
        .iter()
        .map(|r| r.row.events_per_sec)
        .fold(f64::INFINITY, f64::min);
    if gated.is_empty() {
        eprintln!("fleet throughput gate: SKIP (no fleet at >= {FLOOR_MIN_NODES} nodes)");
    } else if worst >= EVENTS_PER_SEC_FLOOR {
        eprintln!(
            "fleet throughput gate: PASS (slowest >= {FLOOR_MIN_NODES}-node fleet {worst:.0} events/s >= floor {EVENTS_PER_SEC_FLOOR:.0})"
        );
    } else {
        eprintln!(
            "fleet throughput gate: FAIL (slowest >= {FLOOR_MIN_NODES}-node fleet {worst:.0} events/s < floor {EVENTS_PER_SEC_FLOOR:.0})"
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_k_replay_is_deterministic_and_converges() {
        let (name, r, c, s) = FLEETS[0];
        let a = run_fleet(name, r, c, s);
        let b = run_fleet(name, r, c, s);
        let mut ra = String::new();
        let mut rb = String::new();
        virtual_report(&mut ra, &a);
        virtual_report(&mut rb, &b);
        assert_eq!(ra, rb, "virtual fleet report must be byte-identical");
        // Wall-clock leak audit: the --check surface is built from
        // `virtual_report` only, so nothing wall-clock may appear in it.
        for leak in ["wall_ms", "events/sec", "wall"] {
            assert!(
                !ra.contains(leak),
                "wall-clock field {leak:?} leaked into --check"
            );
        }
        assert_eq!(a.row.nodes, 1008);
        assert!(a.row.writes > 100, "diurnal day must commit writes");
        assert!(
            a.row.proxy_updates >= a.row.writes,
            "each write must land in at least one proxy cache"
        );
        let p = &a.row.propagation_ms;
        assert!(p[0] > 0.0 && p[0] <= p[1] && p[1] <= p[2] && p[2] <= p[4]);
    }
}
