//! `repro fleet`: paper-scale diurnal replay of the distribution tree.
//!
//! The paper's production numbers are fleet-wide: hundreds of thousands of
//! servers receiving config updates through the Zeus ensemble → observer →
//! proxy tree, with commit arrivals following the strong diurnal cycle of
//! §5. This experiment replays that shape at five sizes (1k / 5k / 20k /
//! 50k / 100k nodes) on the allocation-free event core — the watch-lease
//! protocol and shared fan-out frames are what make the top sizes
//! tractable — and recomputes the paper's propagation-delay distribution
//! table at each size: the delay from a committed write to its landing in
//! each subscribed proxy's on-disk cache, summarized as p50/p90/p99/p999/max
//! over every (write, proxy) pair.
//!
//! Percentiles are rank-interpolated from the raw per-landing sample
//! series (not log-bucketed), and every table carries its sample count: a
//! day compresses to 131 writes, so the upper quantiles of a small fleet
//! rest on few samples and the count keeps that honest.
//!
//! Write arrivals are calibrated by `crates/workload`'s commit-rate model
//! (one modeled hour = one simulated second, so a day's diurnal curve is a
//! 24 s replay), exactly as `repro perf` does, so the two benchmarks stay
//! comparable. Propagation delays are *virtual* time: deterministic per
//! seed and byte-stable across queue implementations, machines, and runs.
//!
//! `fleet --check` prints only those deterministic fields for the 1k, 5k,
//! and 100k sizes (the middle sizes add wall time, not coverage); the live
//! mode runs all five, reports wall-clock throughput, appends the
//! `"fleet_runs"` section to `BENCH_simnet.json` (preserving `repro
//! perf`'s `"runs"`), and emits schema + throughput gates on stderr: the
//! fleet-wide floor (100k events/s at ≥ 5k nodes) plus per-tier floors for
//! the 20k and 100k sizes. The floors are deliberately far below a quiet
//! release-mode run: they catch order-of-magnitude regressions, not
//! machine noise.
//!
//! Two env knobs aid hot-path work: `FLEET_PROFILE=1` switches the run
//! from the lean queue-stats profiling level to the full per-dispatch
//! profiler and dumps per-(kind, class) wall shares on stderr;
//! `FLEET_ONLY=<tier>` narrows the sweep to one size. Neither changes
//! the deterministic virtual fields.
//!
//! `fleet --mobile <clients>` swaps one proxy per cluster of the 1k fleet
//! for an aggregated MobileConfig population cohort
//! (`mobileconfig::population`): the requested client count splits across
//! the clusters, each cohort watches its cluster observer like a proxy and
//! models its clients' Poisson poll arrivals analytically, and the report
//! gives per-cohort staleness percentiles in modeled minutes.

use std::fmt::Write as _;
use std::time::Instant;

use bytes::Bytes;
use gatekeeper::experiment::ParamValue;
use gatekeeper::project::Project;
use gatekeeper::runtime::Runtime;
use mobileconfig::population::{
    cohort_metric, PopulationActor, PopulationCfg, COHORT_OBSERVATIONS, COHORT_POLLS,
    COHORT_STALENESS_S,
};
use mobileconfig::{Binding, FieldType, MobileConfigServer, MobileSchema, TranslationLayer};
use simnet::prelude::*;
use workload::commits::CommitProcess;
use zeus::deploy::{DeployConfig, ZeusDeployment};
use zeus::metrics::{PROPAGATION_S, PROXY_UPDATES};

use crate::bench_json::{self, FleetRow};

/// Config paths the diurnal workload writes and every proxy subscribes to.
const PATHS: usize = 4;
/// Seed for every fleet size (the replay must be deterministic).
const SEED: u64 = 1;
/// Events/sec floor enforced on stderr for every fleet at or above
/// [`FLOOR_MIN_NODES`] nodes.
const EVENTS_PER_SEC_FLOOR: f64 = 100_000.0;
/// The floor applies from this fleet size up (the ISSUE's "≥ 5k nodes").
const FLOOR_MIN_NODES: usize = 5_000;
/// Simulated microseconds per modeled hour (the replay's time
/// compression; also the spacing of the diurnal write windows).
const HOUR_US: u64 = 1_000_000;

/// The five fleet sizes: (label, regions, clusters/region, servers/cluster).
const FLEETS: &[(&str, usize, usize, usize)] = &[
    ("1k", 3, 4, 84),      // 1008 nodes
    ("5k", 3, 7, 240),     // 5040 nodes
    ("20k", 4, 10, 500),   // 20000 nodes
    ("50k", 5, 10, 1000),  // 50000 nodes
    ("100k", 5, 20, 1000), // 100000 nodes
];

/// Per-tier wall-clock floors (events/s), on top of the fleet-wide
/// [`EVENTS_PER_SEC_FLOOR`]. The 20k floor encodes the lease-protocol
/// speedup over the pre-lease baseline (825,993 events/s on the same
/// hardware class); the 100k floor is the paper-scale viability gate.
const TIER_FLOORS: &[(&str, f64)] = &[("20k", 1_400_000.0), ("100k", 100_000.0)];

/// Replay repetitions per tier in live mode, best wall kept. The replay
/// is deterministic, so repeats change nothing virtual — they only guard
/// the wall-clock floor against first-run noise (cold page cache, CPU
/// frequency ramp: ±20% observed on the same machine back to back). Only
/// the 20k tier repeats: its floor is the 2× lease-speedup gate with real
/// teeth, while the 100k floor has ~9× headroom and the ungated tiers
/// carry no wall assertion at all.
const TIER_REPEATS: &[(&str, usize)] = &[("20k", 3)];

struct FleetResult {
    row: FleetRow,
    bytes_sent: u64,
    queue_peak: usize,
    queue_mean: f64,
}

/// Installs the Zeus tree and schedules the diurnal write day; returns
/// `(horizon, writes, deployment)`.
fn build_scenario(sim: &mut Sim) -> (SimTime, u64, ZeusDeployment) {
    let cfg = DeployConfig {
        subscriptions: (0..PATHS).map(|i| format!("fleet/{i}")).collect(),
        ..DeployConfig::default()
    };
    let zeus = ZeusDeployment::install(sim, &cfg);

    // One modeled hour compresses to one simulated second; each hour's
    // commit count comes from the diurnal model and is scaled to at most
    // 12 writes/s so the 100k-node size stays tractable.
    let hours = CommitProcess::default().hourly_series(1, SEED);
    let scale = 12.0 / hours.iter().copied().max().unwrap_or(1).max(1) as f64;
    let mut seq = 0u64;
    for (h, &commits) in hours.iter().enumerate() {
        let window_start = HOUR_US + h as u64 * HOUR_US;
        let n = ((commits as f64 * scale).round() as u64).max(1);
        for k in 0..n {
            let at = SimTime(window_start + k * (HOUR_US / n));
            let path = format!("fleet/{}", seq as usize % PATHS);
            zeus.write_current(sim, at, &path, Bytes::from(format!("v{seq}")));
            seq += 1;
        }
    }
    let horizon = SimTime(HOUR_US + hours.len() as u64 * HOUR_US + 5_000_000);
    (horizon, seq, zeus)
}

/// One replay of one fleet size, best-of-N on wall time (see
/// [`TIER_REPEATS`]); every virtual field is identical across repeats.
fn run_fleet(name: &str, regions: usize, clusters: usize, servers: usize) -> FleetResult {
    let repeats = TIER_REPEATS
        .iter()
        .find(|&&(t, _)| t == name)
        .map_or(1, |&(_, n)| n);
    let mut best: Option<FleetResult> = None;
    for _ in 0..repeats {
        let r = run_fleet_once(name, regions, clusters, servers);
        match &best {
            Some(b) if b.row.wall_ms <= r.row.wall_ms => {}
            _ => best = Some(r),
        }
    }
    best.expect("at least one repeat")
}

fn run_fleet_once(name: &str, regions: usize, clusters: usize, servers: usize) -> FleetResult {
    let topo = Topology::symmetric(regions, clusters, servers);
    let nodes = topo.num_nodes();
    let mut sim = Sim::new(topo, NetConfig::datacenter(), SEED);
    // The report prints queue peak/mean only, so the lean queue-stats mode
    // suffices; FLEET_PROFILE=1 switches on the full per-dispatch profiler
    // for hot-path diagnosis (at ~10% wall overhead at 20k nodes).
    if std::env::var_os("FLEET_PROFILE").is_some() {
        sim.enable_profiler();
    } else {
        sim.enable_queue_stats();
    }
    let (horizon, writes, _zeus) = build_scenario(&mut sim);
    let start = Instant::now();
    sim.run_until(horizon);
    let wall = start.elapsed();
    let events = sim.events_processed();
    // The paper's propagation table: virtual delay from commit to each
    // proxy's on-disk apply, rank-interpolated from the raw sample series
    // every proxy feeds (one sample per landing). All quantiles — and the
    // sample count that qualifies them — are deterministic.
    let mut sorted: Vec<f64> = sim.metrics().samples(PROPAGATION_S).to_vec();
    sorted.sort_unstable_by(f64::total_cmp);
    let samples = sorted.len() as u64;
    let prop = |p: f64| -> f64 {
        if sorted.is_empty() {
            0.0
        } else {
            simnet::stats::percentile_sorted(&sorted, p) * 1e3
        }
    };
    let propagation_ms = [prop(50.0), prop(90.0), prop(99.0), prop(99.9), prop(100.0)];
    if std::env::var_os("FLEET_PROFILE").is_some() {
        let pr = sim.profiler();
        let handler_ns: u64 = pr.by_kind().iter().map(|(_, c)| c.wall_ns).sum();
        eprintln!(
            "[{name}] wall={:.1}ms handlers={:.1}ms engine={:.1}ms",
            wall.as_secs_f64() * 1e3,
            handler_ns as f64 / 1e6,
            wall.as_secs_f64() * 1e3 - handler_ns as f64 / 1e6
        );
        for (k, c, cell) in pr.cells() {
            eprintln!(
                "  {k}/{}: events={} wall_ms={:.1}",
                c.label(),
                cell.events,
                cell.wall_ns as f64 / 1e6
            );
        }
    }
    let p = sim.profiler();
    FleetResult {
        row: FleetRow {
            fleet: name.to_string(),
            nodes: nodes as u64,
            events,
            wall_ms: wall.as_secs_f64() * 1e3,
            events_per_sec: events as f64 / wall.as_secs_f64().max(1e-9),
            writes,
            proxy_updates: sim.metrics().counter(PROXY_UPDATES),
            samples,
            propagation_ms,
        },
        bytes_sent: sim.metrics().counter(simnet::stats::names::BYTES_SENT),
        queue_peak: p.queue_peak(),
        queue_mean: p.queue_mean(),
    }
}

fn virtual_report(out: &mut String, r: &FleetResult) {
    let row = &r.row;
    let _ = writeln!(
        out,
        "fleet={} nodes={} events={} writes={} proxy_updates={} bytes_sent={} peak_queue={} mean_queue={:.2}",
        row.fleet,
        row.nodes,
        row.events,
        row.writes,
        row.proxy_updates,
        r.bytes_sent,
        r.queue_peak,
        r.queue_mean,
    );
    let p = &row.propagation_ms;
    let _ = writeln!(
        out,
        "propagation delay (virtual ms, samples={}): p50={:.3} p90={:.3} p99={:.3} p999={:.3} max={:.3}\n",
        row.samples, p[0], p[1], p[2], p[3], p[4]
    );
}

/// Runs the paper-scale replay. With `check` set, runs the 1k, 5k, and
/// 100k sizes and prints only the deterministic virtual fields
/// (golden-gated by `scripts/check.sh`); otherwise runs all five sizes,
/// prints the live wall-clock report, updates `BENCH_simnet.json`, and
/// emits the schema + throughput gates on stderr.
pub fn fleet(check: bool) -> String {
    let mut out = String::new();
    let only = std::env::var("FLEET_ONLY").ok();
    let sizes: Vec<&(&str, usize, usize, usize)> = FLEETS
        .iter()
        .filter(|&&(name, ..)| match &only {
            Some(o) => name == o,
            None => !(check && (name == "20k" || name == "50k")),
        })
        .collect();
    let results: Vec<FleetResult> = sizes
        .iter()
        .map(|&&(name, r, c, s)| run_fleet(name, r, c, s))
        .collect();

    if check {
        let _ = writeln!(
            out,
            "paper-scale fleet replay — virtual (deterministic) fields only\n\
             (diurnal write day over the zeus tree; propagation delays are\n\
             simulated time and replay byte-identically per seed)\n"
        );
        for r in &results {
            virtual_report(&mut out, r);
        }
        return out;
    }

    let _ = writeln!(
        out,
        "paper-scale fleet replay — diurnal commit day over the zeus tree\n\
         (1 modeled hour = 1 s; propagation table recomputed per fleet size)\n"
    );
    for r in &results {
        let row = &r.row;
        let _ = writeln!(
            out,
            "fleet={} nodes={} events={} wall_ms={:.1} events/sec={:.0}",
            row.fleet, row.nodes, row.events, row.wall_ms, row.events_per_sec
        );
        virtual_report(&mut out, r);
    }

    let rows: Vec<FleetRow> = results.iter().map(|r| r.row.clone()).collect();
    match bench_json::write_fleet(bench_json::PATH, &rows) {
        Ok(()) => eprintln!("wrote {} (fleet_runs section)", bench_json::PATH),
        Err(e) => eprintln!("fleet: failed to write {}: {e}", bench_json::PATH),
    }
    match std::fs::read_to_string(bench_json::PATH)
        .map_err(|e| format!("unreadable: {e}"))
        .and_then(|t| bench_json::validate(&t))
    {
        Ok(()) => eprintln!("fleet schema: OK"),
        Err(e) => eprintln!("fleet schema: FAIL ({e})"),
    }
    let gated: Vec<&FleetResult> = results
        .iter()
        .filter(|r| r.row.nodes >= FLOOR_MIN_NODES as u64)
        .collect();
    let worst = gated
        .iter()
        .map(|r| r.row.events_per_sec)
        .fold(f64::INFINITY, f64::min);
    if gated.is_empty() {
        eprintln!("fleet throughput gate: SKIP (no fleet at >= {FLOOR_MIN_NODES} nodes)");
    } else if worst >= EVENTS_PER_SEC_FLOOR {
        eprintln!(
            "fleet throughput gate: PASS (slowest >= {FLOOR_MIN_NODES}-node fleet {worst:.0} events/s >= floor {EVENTS_PER_SEC_FLOOR:.0})"
        );
    } else {
        eprintln!(
            "fleet throughput gate: FAIL (slowest >= {FLOOR_MIN_NODES}-node fleet {worst:.0} events/s < floor {EVENTS_PER_SEC_FLOOR:.0})"
        );
    }
    for &(tier, floor) in TIER_FLOORS {
        match results.iter().find(|r| r.row.fleet == tier) {
            Some(r) if r.row.events_per_sec >= floor => eprintln!(
                "fleet tier gate [{tier}]: PASS ({:.0} events/s >= floor {floor:.0})",
                r.row.events_per_sec
            ),
            Some(r) => eprintln!(
                "fleet tier gate [{tier}]: FAIL ({:.0} events/s < floor {floor:.0})",
                r.row.events_per_sec
            ),
            None => eprintln!("fleet tier gate [{tier}]: SKIP (tier not run)"),
        }
    }
    out
}

/// The MobileConfig stack each cohort resolves through: the same schema +
/// translation bindings as `repro mobile`, so the population path
/// exercises real Gatekeeper/experiment/constant lookups.
fn cohort_server() -> (MobileConfigServer, MobileSchema) {
    let schema = MobileSchema::new(
        "MainApp",
        &[
            ("feature_x", FieldType::Bool),
            ("feed_batch", FieldType::Int),
            ("upload_quality", FieldType::Float),
        ],
    );
    let mut t = TranslationLayer::new();
    t.bind(
        "MainApp",
        "feature_x",
        Binding::Gatekeeper {
            project: "X".into(),
        },
    );
    t.bind(
        "MainApp",
        "feed_batch",
        Binding::Constant(ParamValue::Int(20)),
    );
    t.bind(
        "MainApp",
        "upload_quality",
        Binding::Constant(ParamValue::Float(0.8)),
    );
    let mut gk = Runtime::new(laser::Laser::new(16));
    gk.update_project(Project::fraction_launch("X", 0.5));
    let mut server = MobileConfigServer::new(t, gk);
    server.register_schema(schema.clone());
    (server, schema)
}

/// `repro fleet --mobile <clients>`: the 1k fleet with one aggregated
/// MobileConfig population cohort per cluster. The requested client count
/// splits evenly across clusters (remainder to the first ones); each
/// cohort replaces its cluster's last proxy, watches the cluster observer,
/// and models its clients analytically (no per-device actors). The report
/// is entirely virtual-time and byte-deterministic.
pub fn fleet_mobile(clients: u64) -> String {
    let (_, regions, clusters, servers) = FLEETS[0];
    let nclusters = regions * clusters;
    let mut sim = Sim::new(
        Topology::symmetric(regions, clusters, servers),
        NetConfig::datacenter(),
        SEED,
    );
    let (horizon, writes, zeus) = build_scenario(&mut sim);
    let topo = sim.topology().clone();

    let mut proxies_by_cluster: Vec<Vec<NodeId>> = vec![Vec::new(); nclusters];
    for &p in &zeus.proxies {
        proxies_by_cluster[topo.placement(p).cluster.0 as usize].push(p);
    }
    let obs_per_cluster = zeus.observers.len() / nclusters;
    let diurnal = CommitProcess::default().diurnal_factors();
    // Mean poll interval: 15 modeled minutes, expressed in the compressed
    // clock (1 modeled hour = HOUR_US of simulated time).
    let mean_poll = SimDuration::from_micros(HOUR_US / 4);
    let base = clients / nclusters as u64;
    let rem = clients % nclusters as u64;
    let mut cohorts: Vec<(String, u64)> = Vec::new();
    for (c, cluster_proxies) in proxies_by_cluster.iter().enumerate() {
        let cohort_clients = base + u64::from((c as u64) < rem);
        if cohort_clients == 0 {
            continue;
        }
        let host = *cluster_proxies.last().expect("every cluster hosts proxies");
        let label = format!("c{c:02}");
        let (server, schema) = cohort_server();
        let actor = PopulationActor::new(PopulationCfg {
            observer: zeus.observers[c * obs_per_cluster],
            paths: (0..PATHS).map(|i| format!("fleet/{i}")).collect(),
            clients: cohort_clients,
            mean_poll,
            diurnal,
            hour_us: HOUR_US,
            label: label.clone(),
        })
        // Tick every 100 ms of simulated time = 6 modeled minutes.
        .with_tick(SimDuration::from_millis(100))
        .with_server(server, schema);
        sim.add_actor(host, Box::new(actor));
        cohorts.push((label, cohort_clients));
    }

    sim.run_until(horizon);

    let mut out = String::new();
    let _ = writeln!(
        out,
        "mobileconfig population cohorts over the 1k fleet — virtual fields only\n\
         (diurnal write day; each cohort aggregates its cluster's pull\n\
         clients analytically; staleness is commit→client-visibility in\n\
         modeled minutes, 1 simulated second = 1 modeled hour)\n"
    );
    let _ = writeln!(
        out,
        "clients={} cohorts={} paths={} writes={} mean_poll_modeled_min=15",
        clients,
        cohorts.len(),
        PATHS,
        writes
    );
    // 1 simulated second = 60 modeled minutes.
    let min = |h: &simnet::stats::Histogram, q: f64| h.quantile_secs(q) * 60.0;
    for (label, cohort_clients) in &cohorts {
        let polls = sim.metrics().counter(&cohort_metric(COHORT_POLLS, label));
        let obs = sim
            .metrics()
            .counter(&cohort_metric(COHORT_OBSERVATIONS, label));
        match sim
            .metrics()
            .histogram(&cohort_metric(COHORT_STALENESS_S, label))
        {
            Some(h) => {
                let _ = writeln!(
                    out,
                    "cohort={label} clients={cohort_clients} polls={polls} observations={obs} \
                     staleness modeled min: p50={:.2} p90={:.2} p99={:.2} max={:.2}",
                    min(h, 0.50),
                    min(h, 0.90),
                    min(h, 0.99),
                    min(h, 1.0),
                );
            }
            None => {
                let _ = writeln!(
                    out,
                    "cohort={label} clients={cohort_clients} polls={polls} observations={obs} \
                     staleness modeled min: (no observations)"
                );
            }
        }
    }
    if let Some(h) = sim.metrics().histogram(COHORT_STALENESS_S) {
        let _ = writeln!(
            out,
            "\nall cohorts ({} clients) staleness modeled min: p50={:.2} p90={:.2} p99={:.2} max={:.2}",
            clients,
            min(h, 0.50),
            min(h, 0.90),
            min(h, 0.99),
            min(h, 1.0),
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_k_replay_is_deterministic_and_converges() {
        let (name, r, c, s) = FLEETS[0];
        let a = run_fleet(name, r, c, s);
        let b = run_fleet(name, r, c, s);
        let mut ra = String::new();
        let mut rb = String::new();
        virtual_report(&mut ra, &a);
        virtual_report(&mut rb, &b);
        assert_eq!(ra, rb, "virtual fleet report must be byte-identical");
        // Wall-clock leak audit: the --check surface is built from
        // `virtual_report` only, so nothing wall-clock may appear in it.
        for leak in ["wall_ms", "events/sec", "wall"] {
            assert!(
                !ra.contains(leak),
                "wall-clock field {leak:?} leaked into --check"
            );
        }
        assert_eq!(a.row.nodes, 1008);
        assert!(a.row.writes > 100, "diurnal day must commit writes");
        assert!(
            a.row.proxy_updates >= a.row.writes,
            "each write must land in at least one proxy cache"
        );
        assert_eq!(
            a.row.samples, a.row.proxy_updates,
            "one raw propagation sample per proxy apply"
        );
        let p = &a.row.propagation_ms;
        assert!(p[0] > 0.0 && p[0] <= p[1] && p[1] <= p[2] && p[2] <= p[4]);
    }

    #[test]
    fn mobile_cohorts_are_deterministic_and_observe_every_write() {
        let a = fleet_mobile(120_000);
        let b = fleet_mobile(120_000);
        assert_eq!(a, b, "--mobile report must be byte-identical");
        assert!(a.contains("cohort=c00 clients=10000"));
        assert!(
            a.contains("all cohorts (120000 clients)"),
            "aggregate staleness line missing:\n{a}"
        );
        // Every cohort line must carry a real staleness distribution.
        assert!(
            !a.contains("(no observations)"),
            "cohort saw no writes:\n{a}"
        );
    }
}
