//! `repro canary`: the fleet-integrated safe-rollout pipeline under chaos.
//!
//! The canary service of §3.3 graduates from the in-process
//! [`configerator::canary::SyntheticFleet`] to the real (simulated)
//! distribution fleet. Each landed commit is *staged*, not shipped: the
//! new artifact is written to a per-rollout `canary/<name>/<k>` path that
//! only the designated canary servers subscribe to (scoped delivery —
//! the phase-gated blast radius), health samples from the canary and
//! control cohorts feed a [`configerator::rollout::Rollout`] state
//! machine, and only a chain of passing phase verdicts widens delivery:
//! canary cohort → cluster 0 → the fleet path every proxy watches.
//!
//! A failing phase auto-rolls-back: the revert lands through the
//! [`configerator::Mutator`] as a regular gitstore commit ("the canary
//! service rolls back the config change by updating the git repository",
//! §3.3), so the bad change *and* the verdict on it are durable history,
//! and the staged path is re-written with the previous good bytes so the
//! canary cohort heals.
//!
//! The whole pipeline runs under a seeded [`ChaosPlan`] (crashes at every
//! tier including a canary server, partitions, message drop/delay, clock
//! skew, stalls) with seeded cache drift, while a periodic drift audit
//! ([`zeus::audit`]) fingerprints the fleet against the leader's canonical
//! state and repairs divergence. The experiment gates on the §3.3
//! promises: injected-bad commits never reach a non-canary proxy and
//! always leave a revert in gitstore history; good commits fully converge
//! despite the chaos.

use configerator::metrics::health;
use std::cell::RefCell;
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::rc::Rc;

use bytes::Bytes;
use configerator::canary::HealthPredicate;
use configerator::landing::{LandingStrip, SourceDiff};
use configerator::metrics::canary as cnames;
use configerator::rollout::{land_source_revert, PhaseVerdict, Rollout, RolloutPhase, RolloutSpec};
use configerator::service::{ConfigeratorService, SOURCE_PREFIX};
use configerator::tailer::GitTailer;
use configerator::Mutator;
use simnet::chaos::{ChaosConfig, ChaosPlan};
use simnet::prelude::*;
use zeus::audit::{audit_proxies, repair, CanonicalSet, DriftKind};
use zeus::deploy::{DeployConfig, ZeusDeployment};
use zeus::proxy::ProxyActor;
use zeus::types::{Write, Zxid};

/// Distinct config names the commit workload cycles over.
const NAMES: usize = 2;
/// Commits pushed through the pipeline by default.
const COMMITS: usize = 6;
/// Commit indices that carry an injected-bad config (§6.4's error-spew
/// class: degraded immediately, at any scale). Never the first commit to
/// a name — a rollback needs previous content to revert to.
const BAD_COMMITS: &[usize] = &[2, 5];
/// First commit time and inter-commit spacing.
const FIRST_COMMIT_US: u64 = 1_000_000;
const COMMIT_PERIOD_US: u64 = 5_000_000;
/// Review + CI latency between submit and land.
const LANDING_DELAY_US: u64 = 300_000;
/// Git tailer poll period.
const TAILER_PERIOD_US: u64 = 500_000;
/// Cohort health-sampling (and verdict) period.
const SAMPLE_PERIOD_US: u64 = 250_000;
/// Lost-write reconciliation period (a proposal during a full-ensemble
/// outage is silently unroutable; the driver re-drives lagging writes).
const RECONCILE_PERIOD_US: u64 = 2_000_000;
/// Drift-audit sweep period.
const AUDIT_PERIOD_US: u64 = 2_000_000;
/// When seeded cache drift is injected. Off the 500 ms anti-entropy grid:
/// a seed landing exactly on a resubscribe tick is healed in the same
/// instant, which would make the run look like the faults never existed.
const DRIFT_SEED_US: u64 = 20_100_000;
/// Canary cohort size (phase 1's blast radius).
const CANARY_SERVERS: usize = 4;
/// Health samples per metric, per cohort, before a phase verdict.
const MIN_SAMPLES: u64 = 8;

fn name_of(i: usize) -> String {
    format!("roll/{}", i % NAMES)
}

fn source_of(i: usize) -> String {
    format!("roll/{}.cconf", i % NAMES)
}

fn value_of(i: usize) -> u64 {
    if BAD_COMMITS.contains(&i) {
        9000 + i as u64
    } else {
        10 + i as u64
    }
}

/// The compiled artifact bytes of commit `i` (`export_if_last(v)` → `v\n`).
fn artifact_of(i: usize) -> Bytes {
    Bytes::from(format!("{}\n", value_of(i)))
}

fn spec() -> RolloutSpec {
    let predicates = vec![
        HealthPredicate::MaxRelativeIncrease {
            metric: health::ERROR_RATE.into(),
            limit: 0.25,
        },
        HealthPredicate::MaxRelativeIncrease {
            metric: health::LATENCY_MS.into(),
            limit: 0.25,
        },
    ];
    RolloutSpec {
        phases: vec![
            RolloutPhase {
                name: format!("canary-{CANARY_SERVERS}"),
                min_samples: MIN_SAMPLES,
                predicates: predicates.clone(),
            },
            RolloutPhase {
                name: "cluster-0".into(),
                min_samples: MIN_SAMPLES,
                predicates,
            },
        ],
    }
}

/// Deterministic noise in `[-1, 1]` (splitmix-style avalanche) — health
/// samples must replay byte-identically per seed.
fn noise(seed: u64, node: u32, at_us: u64, salt: u64) -> f64 {
    let mut x = seed
        ^ (node as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ at_us.wrapping_mul(0xBF58_476D_1CE4_E5B9)
        ^ salt.wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^= x >> 31;
    (x as f64 / u64::MAX as f64) * 2.0 - 1.0
}

/// One health sample: baseline with ±2% noise, degraded when the server
/// runs an injected-bad config (error rate +0.05, latency +80ms).
fn sample(metric: &str, bad: bool, seed: u64, node: u32, at_us: u64) -> f64 {
    match metric {
        m if m == health::ERROR_RATE => {
            0.01 * (1.0 + 0.02 * noise(seed, node, at_us, 1)) + if bad { 0.05 } else { 0.0 }
        }
        _ => 100.0 * (1.0 + 0.02 * noise(seed, node, at_us, 2)) + if bad { 80.0 } else { 0.0 },
    }
}

/// An in-flight staged rollout.
struct Active {
    rollout: Rollout,
    staged_path: String,
    staged: Bytes,
    source_path: String,
    /// Proxies subscribed to the staged path so far.
    audience: Vec<NodeId>,
}

/// Driver-side state shared across scheduled closures.
struct Pipeline {
    svc: ConfigeratorService,
    strip: LandingStrip,
    tailer: GitTailer,
    mutator: Mutator,
    active: Option<Active>,
    /// Pending rollouts, FIFO; a newer commit to a queued name supersedes
    /// its queued bytes in place.
    queue: VecDeque<(String, Bytes)>,
    staged_seq: u64,
    /// Artifact payloads known to be injected-bad.
    bad_payloads: BTreeSet<Bytes>,
    /// Tailer updates that must not start a rollout (landed reverts).
    suppress: BTreeMap<String, Bytes>,
    /// Promoted fleet state: `name → bytes` every proxy should converge to.
    fleet_desired: BTreeMap<String, Bytes>,
    /// Staged-path state: `path → (bytes, audience)`.
    staged_desired: BTreeMap<String, (Bytes, Vec<NodeId>)>,
    /// Blast-radius violations (bad bytes observed outside the canary
    /// cohort, or on a fleet path).
    violations: Vec<String>,
    /// Timestamped event log for the report.
    log: Vec<String>,
    /// Drift faults actually seeded.
    drift_seeded: usize,
    /// Findings of the final verification sweep.
    final_drift: usize,
}

impl Pipeline {
    fn event(&mut self, at: SimTime, msg: String) {
        self.log.push(format!("{:7.3}s  {msg}", at.as_secs_f64()));
    }
}

/// Pops the next queued rollout and stages it on the canary cohort.
fn start_next(s: &mut Sim, f: &mut Pipeline, dep: &ZeusDeployment, canary_cohort: &[NodeId]) {
    if f.active.is_some() {
        return;
    }
    let Some((name, data)) = f.queue.pop_front() else {
        return;
    };
    f.staged_seq += 1;
    let staged_path = format!("canary/{}/{}", name, f.staged_seq);
    let source_path = format!("{name}.cconf");
    dep.subscribe_cohort(s, &staged_path, canary_cohort);
    let now = s.now();
    dep.write_current(s, now, &staged_path, data.clone());
    f.staged_desired
        .insert(staged_path.clone(), (data.clone(), canary_cohort.to_vec()));
    f.event(
        now,
        format!(
            "rollout {}: {name} staged at {staged_path} (phase canary-{CANARY_SERVERS})",
            f.staged_seq
        ),
    );
    f.active = Some(Active {
        rollout: Rollout::new(&name, spec()),
        staged_path,
        staged: data,
        source_path,
        audience: canary_cohort.to_vec(),
    });
}

/// Run parameters (tests vary these; `repro canary` uses the defaults).
struct RunConfig {
    seed: u64,
    commits: usize,
    chaos: bool,
    drift: bool,
    /// Crash every canary-cohort server over this window (for the
    /// crash-mid-phase rollback test).
    crash_canaries: Option<(u64, u64)>,
}

/// Everything the report (and the tests) need from one run.
pub struct RunOutcome {
    /// Injected chaos faults, human-readable.
    pub faults: Vec<String>,
    /// Timestamped pipeline events.
    pub log: Vec<String>,
    /// Blast-radius violations (must be empty).
    pub violations: Vec<String>,
    /// Rollouts promoted to the fleet.
    pub promotions: u64,
    /// Rollouts rolled back.
    pub rollbacks: u64,
    /// Reverts found in gitstore history (author `mutator:canary`).
    pub reverts_in_git: usize,
    /// Bad commits injected.
    pub bad_commits: usize,
    /// Per-name final convergence of the promoted fleet state.
    pub converged: Vec<(String, bool)>,
    /// Drift faults seeded / left after the final sweep.
    pub drift_seeded: usize,
    /// Findings of the final verification sweep (must be 0).
    pub final_drift: usize,
    /// Counters worth reporting.
    pub counters: Vec<(&'static str, u64)>,
}

impl RunOutcome {
    /// Whether every gate held.
    pub fn ok(&self) -> bool {
        self.violations.is_empty()
            && self.rollbacks as usize == self.bad_commits
            && self.reverts_in_git == self.bad_commits
            && self.converged.iter().all(|(_, c)| *c)
            && self.final_drift == 0
    }
}

fn run_impl(cfg: RunConfig) -> (RunOutcome, Sim) {
    let seed = cfg.seed;
    let topo = Topology::symmetric(3, 2, 12);
    let mut sim = Sim::new(topo, NetConfig::datacenter(), seed);
    let dep_cfg = DeployConfig {
        ensemble_size: 5,
        observers_per_cluster: 2,
        subscriptions: (0..NAMES).map(name_of).collect(),
        ..DeployConfig::default()
    };
    let zeus = ZeusDeployment::install(&mut sim, &dep_cfg);

    // Cohorts: phase 1 runs on a placement-diverse handful of proxies
    // (spread across regions and clusters so a single-rack blind spot
    // cannot mask a bad config), phase 2 widens to all of cluster 0 plus
    // the phase-1 canaries; every proxy outside both is control and must
    // never see staged bytes.
    let cluster0: Vec<NodeId> = zeus
        .proxies
        .iter()
        .copied()
        .filter(|&p| sim.topology().placement(p).cluster == simnet::ClusterId(0))
        .collect();
    assert!(cluster0.len() > CANARY_SERVERS);
    let canary_cohort =
        configerator::placement_diverse_cohort(sim.topology(), &zeus.proxies, CANARY_SERVERS);
    assert_eq!(canary_cohort.len(), CANARY_SERVERS);
    let mut phase2_cohort = cluster0.clone();
    for &p in &canary_cohort {
        if !phase2_cohort.contains(&p) {
            phase2_cohort.push(p);
        }
    }
    let control: Vec<NodeId> = zeus
        .proxies
        .iter()
        .copied()
        .filter(|p| !phase2_cohort.contains(p))
        .collect();
    assert!(control.len() >= 4);
    let all_proxies = zeus.proxies.clone();

    let mut horizon = SimTime(FIRST_COMMIT_US + cfg.commits as u64 * COMMIT_PERIOD_US + 20_000_000);
    let mut faults = Vec::new();
    if cfg.chaos {
        let chaos_cfg = ChaosConfig {
            crash_candidates: vec![
                ("leader".into(), zeus.ensemble[0]),
                ("follower".into(), zeus.ensemble[1]),
                ("observer".into(), zeus.observers[0]),
                ("canary-server".into(), canary_cohort[1]),
                ("control-proxy".into(), control[0]),
            ],
            regions: 3,
            ..ChaosConfig::default()
        };
        let plan = ChaosPlan::generate(seed, &chaos_cfg);
        faults = plan.describe();
        horizon = horizon.max(plan.horizon + SimDuration::from_secs(20));
        plan.apply(&mut sim);
    }
    if let Some((from, until)) = cfg.crash_canaries {
        horizon = horizon.max(SimTime(until + 15_000_000));
        for &p in &canary_cohort {
            sim.schedule(SimTime(from), move |s| s.crash(p));
            sim.schedule(SimTime(until), move |s| s.recover(p));
        }
    }

    let bad_payloads: BTreeSet<Bytes> = BAD_COMMITS
        .iter()
        .filter(|&&i| i < cfg.commits)
        .map(|&i| artifact_of(i))
        .collect();
    let bad_commits = bad_payloads.len();

    let front = Rc::new(RefCell::new(Pipeline {
        svc: ConfigeratorService::new(),
        strip: LandingStrip::new(),
        tailer: GitTailer::new(),
        mutator: Mutator::new("canary"),
        active: None,
        queue: VecDeque::new(),
        staged_seq: 0,
        bad_payloads,
        suppress: BTreeMap::new(),
        fleet_desired: BTreeMap::new(),
        staged_desired: BTreeMap::new(),
        violations: Vec::new(),
        log: Vec::new(),
        drift_seeded: 0,
        final_drift: 0,
    }));

    // Commit workload: engineers' diffs through the landing strip.
    for i in 0..cfg.commits {
        let at = SimTime(FIRST_COMMIT_US + i as u64 * COMMIT_PERIOD_US);
        let fr = Rc::clone(&front);
        sim.schedule(at, move |_| {
            let mut f = fr.borrow_mut();
            let changes: BTreeMap<String, Option<String>> = [(
                source_of(i),
                Some(format!("export_if_last({})", value_of(i))),
            )]
            .into_iter()
            .collect();
            let diff = SourceDiff::against(&f.svc, "alice", &format!("rev v{i}"), changes);
            f.strip.submit(diff);
        });
        let fr = Rc::clone(&front);
        sim.schedule(at + SimDuration::from_micros(LANDING_DELAY_US), move |s| {
            let mut f = fr.borrow_mut();
            let f = &mut *f;
            if let Some(Ok(_)) = f.strip.process_one(&mut f.svc) {
                let now = s.now();
                f.event(now, format!("landed rev v{i} ({})", name_of(i)));
            }
        });
    }

    // Tailer ticks: drained commits start rollouts instead of shipping
    // straight to the fleet — the staging gate of the pipeline.
    let mut tick = TAILER_PERIOD_US;
    while tick < horizon.0 {
        let fr = Rc::clone(&front);
        let dep = zeus.clone();
        let cohort = canary_cohort.clone();
        sim.schedule(SimTime(tick), move |s| {
            let mut f = fr.borrow_mut();
            let f = &mut *f;
            let updates = f.tailer.drain(&f.svc);
            for u in updates {
                if u.deleted {
                    continue;
                }
                if f.suppress.get(&u.name) == Some(&u.data) {
                    // The drained commit is the revert the canary service
                    // itself landed; re-staging it would loop forever.
                    f.suppress.remove(&u.name);
                    continue;
                }
                if f.fleet_desired.get(&u.name) == Some(&u.data) {
                    continue;
                }
                match f.queue.iter_mut().find(|(n, _)| *n == u.name) {
                    Some(entry) => entry.1 = u.data,
                    None => f.queue.push_back((u.name, u.data)),
                }
            }
            start_next(s, f, &dep, &cohort);
        });
        tick += TAILER_PERIOD_US;
    }

    // Sampling + verdict ticks: the canary service's heartbeat. Also the
    // continuous blast-radius invariant — checked every tick, not just at
    // the end, so a transient escape cannot hide.
    let mut tick = SAMPLE_PERIOD_US;
    while tick < horizon.0 {
        let fr = Rc::clone(&front);
        let dep = zeus.clone();
        let canary_c = canary_cohort.clone();
        let cluster_c = phase2_cohort.clone();
        let control_c = control.clone();
        let all = all_proxies.clone();
        sim.schedule(SimTime(tick), move |s| {
            let mut f = fr.borrow_mut();
            let f = &mut *f;
            // Blast-radius invariant: injected-bad bytes may exist only on
            // canary-cohort servers, and only under staged canary/ paths.
            for &p in &all {
                let Some(a) = s.actor::<ProxyActor>(p) else {
                    continue;
                };
                for w in a.disk_cache().entries() {
                    if f.bad_payloads.contains(&w.data)
                        && (!canary_c.contains(&p) || !w.path.starts_with("canary/"))
                    {
                        f.violations.push(format!(
                            "{:.3}s bad bytes escaped to {} at {}",
                            s.now().as_secs_f64(),
                            w.path,
                            p
                        ));
                    }
                }
            }
            if f.active.is_none() {
                return;
            }
            let now_us = s.now().0;
            let verdict = {
                let active = f.active.as_mut().unwrap();
                let cohort: &[NodeId] = if active.rollout.phase_index() == 0 {
                    &canary_c
                } else {
                    &cluster_c
                };
                for &p in cohort {
                    if !s.is_up(p) {
                        continue;
                    }
                    let Some(a) = s.actor::<ProxyActor>(p) else {
                        continue;
                    };
                    // Only servers actually running the staged bytes are
                    // canaries; a crashed or lagging server contributes no
                    // samples (and therefore can only delay the verdict,
                    // never fake a pass).
                    if a.read(&active.staged_path).map(|w| &w.data) != Some(&active.staged) {
                        continue;
                    }
                    let bad = f.bad_payloads.contains(&active.staged);
                    for m in [health::ERROR_RATE, health::LATENCY_MS] {
                        active
                            .rollout
                            .record_canary(m, sample(m, bad, seed, p.0, now_us));
                    }
                }
                for &p in &control_c {
                    if !s.is_up(p) {
                        continue;
                    }
                    for m in [health::ERROR_RATE, health::LATENCY_MS] {
                        active
                            .rollout
                            .record_control(m, sample(m, false, seed, p.0, now_us));
                    }
                }
                active.rollout.tick()
            };
            match verdict {
                PhaseVerdict::Wait => {}
                PhaseVerdict::Promote => {
                    let done = f.active.as_ref().unwrap().rollout.done.is_some();
                    if done {
                        let active = f.active.take().unwrap();
                        let name = active.rollout.name.clone();
                        s.metrics_mut().incr(cnames::PROMOTIONS, 1);
                        f.fleet_desired.insert(name.clone(), active.staged.clone());
                        let now = s.now();
                        dep.write_current(s, now, &name, active.staged.clone());
                        f.event(now, format!("{name}: promoted to fleet"));
                        start_next(s, f, &dep, &canary_c);
                    } else {
                        let active = f.active.as_mut().unwrap();
                        s.metrics_mut().incr(cnames::PHASE_PROMOTIONS, 1);
                        dep.subscribe_cohort(s, &active.staged_path, &cluster_c);
                        active.audience = cluster_c.clone();
                        let path = active.staged_path.clone();
                        let name = active.rollout.name.clone();
                        f.staged_desired.get_mut(&path).unwrap().1 = cluster_c.clone();
                        let now = s.now();
                        f.event(now, format!("{name}: promoted to phase cluster-0"));
                    }
                }
                PhaseVerdict::Rollback => {
                    let active = f.active.take().unwrap();
                    let name = active.rollout.name.clone();
                    let outcome = active.rollout.outcomes.last().unwrap();
                    let phase = outcome.name.clone();
                    let detail: Vec<String> = outcome
                        .details
                        .iter()
                        .filter(|(_, _, _, held)| !held)
                        .map(|(m, c, x, _)| format!("{m} canary={c:.4} control={x:.4}"))
                        .collect();
                    s.metrics_mut().incr(cnames::ROLLBACKS, 1);
                    let now = s.now();
                    f.event(
                        now,
                        format!("{name}: ROLLBACK in {phase} ({})", detail.join(", ")),
                    );
                    match land_source_revert(
                        &mut f.svc,
                        &f.mutator,
                        &active.source_path,
                        &format!("canary phase {phase} failed"),
                    ) {
                        Ok(_) => {
                            if let Some(prev) = f.fleet_desired.get(&name).cloned() {
                                // The revert recompiles the artifact back
                                // to the promoted bytes; suppress its
                                // tailer pickup and heal the cohort.
                                f.suppress.insert(name.clone(), prev.clone());
                                f.staged_desired.insert(
                                    active.staged_path.clone(),
                                    (prev.clone(), active.audience.clone()),
                                );
                                dep.write_current(s, now, &active.staged_path, prev);
                            }
                            f.event(now, format!("{name}: revert landed via mutator"));
                        }
                        Err(e) => f.violations.push(format!("revert of {name} failed: {e}")),
                    }
                    start_next(s, f, &dep, &canary_c);
                }
            }
        });
        tick += SAMPLE_PERIOD_US;
    }

    // Reconciliation ticks: a write proposed while the whole ensemble is
    // unreachable is silently unroutable; re-drive whatever some up node
    // still lacks.
    let mut tick = RECONCILE_PERIOD_US;
    while tick < horizon.0 {
        let fr = Rc::clone(&front);
        let dep = zeus.clone();
        let all = all_proxies.clone();
        sim.schedule(SimTime(tick), move |s| {
            let (fleet, staged) = {
                let f = fr.borrow();
                (f.fleet_desired.clone(), f.staged_desired.clone())
            };
            let lagging = |s: &Sim, nodes: &[NodeId], path: &str, bytes: &Bytes| {
                nodes.iter().any(|&p| {
                    s.is_up(p)
                        && s.actor::<ProxyActor>(p)
                            .is_some_and(|a| a.read(path).map(|w| &w.data) != Some(bytes))
                })
            };
            for (name, bytes) in fleet {
                if lagging(s, &all, &name, &bytes) {
                    let now = s.now();
                    dep.write_current(s, now, &name, bytes);
                }
            }
            for (path, (bytes, audience)) in staged {
                if lagging(s, &audience, &path, &bytes) {
                    let now = s.now();
                    dep.write_current(s, now, &path, bytes);
                }
            }
        });
        tick += RECONCILE_PERIOD_US;
    }

    // Drift-audit sweeps: fingerprint every proxy's cache against the
    // leader's canonical fleet state; repair divergence by targeted
    // resync.
    let mut tick = AUDIT_PERIOD_US;
    while tick < horizon.0 {
        let fr = Rc::clone(&front);
        let ensemble = zeus.ensemble.clone();
        let all = all_proxies.clone();
        sim.schedule(SimTime(tick), move |s| {
            let Some(canon) = CanonicalSet::from_leader(s, &ensemble, "roll/") else {
                return;
            };
            let findings = audit_proxies(s, &all, &canon);
            if findings.is_empty() {
                return;
            }
            let by_kind = |k: DriftKind| findings.iter().filter(|f| f.kind == k).count();
            let (missing, stale, corrupt) = (
                by_kind(DriftKind::Missing),
                by_kind(DriftKind::Stale),
                by_kind(DriftKind::Corrupt),
            );
            repair(s, &findings);
            let now = s.now();
            fr.borrow_mut().event(
                now,
                format!(
                    "audit: repaired {} drifted entries (missing={missing} stale={stale} corrupt={corrupt})",
                    findings.len()
                ),
            );
        });
        tick += AUDIT_PERIOD_US;
    }

    // Seeded drift: silent cache rot on control proxies mid-run — the
    // audit, not the subscription protocol, must catch and repair it.
    if cfg.drift {
        let fr = Rc::clone(&front);
        let targets = [control[1], control[2], control[3]];
        sim.schedule(SimTime(DRIFT_SEED_US), move |s| {
            let mut seeded = 0;
            if let Some(a) = s.actor_mut::<ProxyActor>(targets[0]) {
                if a.disk_cache_mut()
                    .seed_corruption(&name_of(0), Bytes::from_static(b"rotten"))
                {
                    seeded += 1;
                }
            }
            if let Some(a) = s.actor_mut::<ProxyActor>(targets[1]) {
                if a.disk_cache_mut().seed_missing(&name_of(1)) {
                    seeded += 1;
                }
            }
            if let Some(a) = s.actor_mut::<ProxyActor>(targets[2]) {
                a.disk_cache_mut().seed_stale(Write {
                    zxid: Zxid {
                        epoch: 1,
                        counter: 1,
                    },
                    path: name_of(0),
                    data: Bytes::from_static(b"ancient"),
                    origin: SimTime::ZERO,
                    trace: None,
                });
                seeded += 1;
            }
            let now = s.now();
            let mut f = fr.borrow_mut();
            f.drift_seeded = seeded;
            f.event(
                now,
                format!(
                    "seeded {seeded} drift faults (corrupt, missing, stale) on control proxies"
                ),
            );
        });
    }

    // Final verification sweep, just before the horizon.
    {
        let fr = Rc::clone(&front);
        let ensemble = zeus.ensemble.clone();
        let all = all_proxies.clone();
        sim.schedule(SimTime(horizon.0 - 100_000), move |s| {
            let mut f = fr.borrow_mut();
            match CanonicalSet::from_leader(s, &ensemble, "roll/") {
                Some(canon) => {
                    let findings = audit_proxies(s, &all, &canon);
                    f.final_drift = findings.len();
                    for fd in &findings {
                        let now = s.now();
                        f.event(now, format!("FINAL DRIFT: {}", fd.describe()));
                    }
                }
                None => f.violations.push("no leader at final sweep".into()),
            }
        });
    }

    sim.run_until(horizon);

    // Post-run gates: convergence of the promoted fleet state, and the
    // durable revert trail in gitstore.
    let f = front.borrow();
    let converged: Vec<(String, bool)> = f
        .fleet_desired
        .iter()
        .map(|(name, bytes)| (name.clone(), zeus.coverage(&sim, name, bytes) == 1.0))
        .collect();
    let mut reverts_in_git = 0usize;
    for i in 0..NAMES {
        let path = format!("{SOURCE_PREFIX}{}", source_of(i));
        let repo = f.svc.repo().repo(f.svc.repo().route(&path));
        if let Some(head) = repo.head() {
            for id in repo.log(head).unwrap_or_default() {
                let c = repo.commit_info(id).unwrap();
                if c.author == f.mutator.author()
                    && c.message.starts_with(&format!("Revert {}", source_of(i)))
                {
                    reverts_in_git += 1;
                }
            }
        }
    }
    let counters = [
        cnames::PROMOTIONS,
        cnames::ROLLBACKS,
        cnames::PHASE_PROMOTIONS,
        zeus::metrics::COMMITS,
        zeus::metrics::LEADER_ELECTIONS,
        zeus::metrics::PROXY_FAILOVERS,
        zeus::metrics::PROXY_RESYNCS,
        zeus::metrics::audit::DRIFT_MISSING,
        zeus::metrics::audit::DRIFT_STALE,
        zeus::metrics::audit::DRIFT_CORRUPT,
        zeus::metrics::audit::REPAIRS,
        simnet::stats::names::DROPPED_CHAOS,
        simnet::stats::names::CHAOS_CLOCK_SKEWS,
        simnet::stats::names::CHAOS_STALLS,
    ]
    .iter()
    .map(|&n| (n, sim.metrics().counter(n)))
    .filter(|(_, v)| *v > 0)
    .collect();

    let outcome = RunOutcome {
        faults,
        log: f.log.clone(),
        violations: f.violations.clone(),
        promotions: sim.metrics().counter(cnames::PROMOTIONS),
        rollbacks: sim.metrics().counter(cnames::ROLLBACKS),
        reverts_in_git,
        bad_commits,
        converged,
        drift_seeded: f.drift_seeded,
        final_drift: f.final_drift,
        counters,
    };
    drop(f);
    (outcome, sim)
}

/// `repro canary`: one seeded rollout campaign under chaos with seeded
/// drift, reported deterministically (golden-gated by `scripts/check.sh`).
pub fn report(seed: u64) -> String {
    let (o, _) = run_impl(RunConfig {
        seed,
        commits: COMMITS,
        chaos: true,
        drift: true,
        crash_canaries: None,
    });
    let mut out = format!(
        "canary rollout campaign — seed {seed}\n\
         pipeline: landing strip → gitstore → tailer → staged canary write →\n\
         phase-gated promotion (placement-diverse canary-{CANARY_SERVERS} → cluster-0 → fleet) with auto-rollback\n\
         fleet: 3 regions × 2 clusters × 12 servers; {COMMITS} commits, {} injected-bad\n\n",
        o.bad_commits
    );
    out.push_str("injected chaos:\n");
    if o.faults.is_empty() {
        out.push_str("  (none drawn for this seed)\n");
    }
    for fl in &o.faults {
        out.push_str(&format!("  {fl}\n"));
    }
    out.push_str("\nevents:\n");
    for l in &o.log {
        out.push_str(&format!("  {l}\n"));
    }
    out.push_str("\ncounters:\n");
    for (n, v) in &o.counters {
        out.push_str(&format!("  {n:<28} {v}\n"));
    }
    out.push_str("\ngates:\n");
    out.push_str(&format!(
        "  containment: {} — {} blast-radius violations; {}/{} bad commits rolled back, {} reverts in gitstore\n",
        if o.violations.is_empty()
            && o.rollbacks as usize == o.bad_commits
            && o.reverts_in_git == o.bad_commits
        {
            "PASS"
        } else {
            "FAIL"
        },
        o.violations.len(),
        o.rollbacks,
        o.bad_commits,
        o.reverts_in_git,
    ));
    for v in &o.violations {
        out.push_str(&format!("    {v}\n"));
    }
    out.push_str(&format!(
        "  convergence: {} — {}\n",
        if !o.converged.is_empty() && o.converged.iter().all(|(_, c)| *c) {
            "PASS"
        } else {
            "FAIL"
        },
        o.converged
            .iter()
            .map(|(n, c)| format!("{n} {}", if *c { "ok" } else { "LAGGING" }))
            .collect::<Vec<_>>()
            .join(", "),
    ));
    out.push_str(&format!(
        "  drift repair: {} — {} seeded, {} left at final sweep\n",
        if o.drift_seeded > 0 && o.final_drift == 0 {
            "PASS"
        } else {
            "FAIL"
        },
        o.drift_seeded,
        o.final_drift,
    ));
    out.push_str(&format!(
        "\noverall: {}\n",
        if o.ok() && o.drift_seeded > 0 {
            "PASS"
        } else {
            "FAIL"
        }
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bad_commits_roll_back_with_reverts_in_history() {
        let (o, _) = run_impl(RunConfig {
            seed: 3,
            commits: COMMITS,
            chaos: false,
            drift: false,
            crash_canaries: None,
        });
        assert_eq!(o.bad_commits, 2);
        assert_eq!(o.rollbacks, 2, "every injected-bad commit rolls back");
        assert_eq!(o.reverts_in_git, 2, "every rollback lands a durable revert");
        assert_eq!(o.promotions, 4, "every good commit promotes");
        assert!(o.violations.is_empty(), "violations: {:?}", o.violations);
        assert!(
            !o.converged.is_empty() && o.converged.iter().all(|(_, c)| *c),
            "good commits must fully converge: {:?}",
            o.converged
        );
    }

    #[test]
    fn canary_crash_mid_phase_neither_promotes_nor_wedges() {
        // Crash the whole canary cohort right after staging, before any
        // health sample exists. The phase must sit in Wait (no samples can
        // only delay a verdict, never fake one) and complete after the
        // cohort recovers.
        let crash_at = 1_550_000;
        let recover_at = 8_000_000;
        let (o, _) = run_impl(RunConfig {
            seed: 5,
            commits: 1,
            chaos: false,
            drift: false,
            crash_canaries: Some((crash_at, recover_at)),
        });
        assert_eq!(o.rollbacks, 0);
        assert_eq!(o.promotions, 1, "rollout completes after recovery");
        let promoted = o
            .log
            .iter()
            .find(|l| l.contains("promoted to fleet"))
            .expect("promotion logged");
        let t: f64 = promoted
            .trim_start()
            .split('s')
            .next()
            .unwrap()
            .trim()
            .parse()
            .unwrap();
        assert!(
            t > recover_at as f64 / 1e6,
            "promotion at {t}s must wait for cohort recovery ({promoted})"
        );
        assert!(o.violations.is_empty());

        // Control: without the crash the same rollout promotes well before
        // the recovery time — the delay above is the crash, not slack.
        let (fast, _) = run_impl(RunConfig {
            seed: 5,
            commits: 1,
            chaos: false,
            drift: false,
            crash_canaries: None,
        });
        let promoted = fast
            .log
            .iter()
            .find(|l| l.contains("promoted to fleet"))
            .unwrap();
        let t: f64 = promoted
            .trim_start()
            .split('s')
            .next()
            .unwrap()
            .trim()
            .parse()
            .unwrap();
        assert!(t < recover_at as f64 / 1e6);
    }

    #[test]
    fn seeded_drift_is_detected_and_repaired() {
        let (o, _) = run_impl(RunConfig {
            seed: 2,
            commits: 4,
            chaos: false,
            drift: true,
            crash_canaries: None,
        });
        assert_eq!(o.drift_seeded, 3, "corrupt + missing + stale all seeded");
        assert_eq!(o.final_drift, 0, "final sweep must be clean");
        let repaired = o
            .counters
            .iter()
            .find(|(n, _)| *n == zeus::metrics::audit::DRIFT_CORRUPT)
            .map(|(_, v)| *v)
            .unwrap_or(0);
        assert!(repaired >= 1, "the corrupt entry is audit-repaired");
        assert!(o.ok(), "violations: {:?}", o.violations);
    }

    #[test]
    fn report_is_deterministic_per_seed() {
        assert_eq!(report(1), report(1));
    }
}
