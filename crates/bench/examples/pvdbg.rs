use packagevessel::prelude::*;
use simnet::prelude::*;
fn main() {
    let topo = Topology::symmetric(2, 3, 60);
    let net = NetConfig {
        egress_bytes_per_sec: 250_000_000,
        ingress_bytes_per_sec: 250_000_000,
        ..NetConfig::datacenter()
    };
    let mut sim = Sim::new(topo, net, 35);
    let pv = PvDeployment::install(&mut sim, PeerPolicy::LocalityAware, 4);
    let meta = pv.publish(&mut sim, "feed/model", 1, 128 << 20, 4 << 20, SimTime::ZERO);
    sim.run_for(SimDuration::from_secs(100));
    println!(
        "now={} events={} completion={}",
        sim.now(),
        sim.events_processed(),
        pv.completion(&sim, &meta.id)
    );
    for (k, v) in sim.metrics().counters() {
        println!("{k} = {v}");
    }
}
