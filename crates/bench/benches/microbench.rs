//! Criterion microbenchmarks for the measured kernels behind the paper's
//! figures:
//!
//! * `commit_throughput/*` — Figure 13: gitstore commit latency as the
//!   repository grows.
//! * `gk_check/*` — Figure 15: Gatekeeper check rate, optimized vs not.
//! * `cdsl_compile` — the Configerator compiler on a Figure 2-style config.
//! * `zeus_propagation` — one write through a simulated fleet.
//! * `diff`/`sha1` — gitstore primitives.

use std::collections::BTreeMap;

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion, Throughput};

fn commit_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("commit_throughput");
    group.sample_size(10);
    for &files in &[1_000usize, 10_000, 50_000, 200_000] {
        let mut repo = gitstore::repo::Repository::new();
        let mut replay = workload::commits::CommitReplay::new(1);
        replay.grow_repo(&mut repo, files);
        let mut ts = 10_000_000u64;
        group.throughput(Throughput::Elements(1));
        group.bench_with_input(BenchmarkId::from_parameter(files), &files, |b, _| {
            b.iter_batched(
                || replay.next_commit(),
                |changes| {
                    ts += 1;
                    repo.commit("bench", "m", ts, changes).expect("commit")
                },
                BatchSize::SmallInput,
            );
        });
    }
    group.finish();
}

fn gk_check(c: &mut Criterion) {
    use gatekeeper::prelude::*;
    let mut group = c.benchmark_group("gk_check");
    for optimized in [false, true] {
        let mut laser = laser::Laser::new(1 << 14);
        laser.load_dataset(
            "d",
            (0..10_000u64).map(|u| (format!("P-{u}"), 1.0)).collect(),
        );
        let mut rt = Runtime::new(laser);
        rt.update_project(Project::new(
            "P",
            vec![Rule::new(
                vec![
                    RestraintSpec::of(RestraintKind::Laser {
                        dataset: "d".into(),
                        project: "P".into(),
                        threshold: 0.5,
                    }),
                    RestraintSpec::of(RestraintKind::Employee),
                ],
                1.0,
            )],
        ));
        rt.set_optimize(optimized);
        if optimized {
            // Warm the statistics, then freeze the ordering.
            for u in 0..5_000u64 {
                let ctx = UserContext::with_id(u).employee(u.is_multiple_of(50));
                rt.check("P", &ctx);
            }
            rt.optimize_now();
        }
        let mut u = 0u64;
        group.throughput(Throughput::Elements(1));
        group.bench_function(
            BenchmarkId::from_parameter(if optimized {
                "optimized"
            } else {
                "declared_order"
            }),
            |b| {
                b.iter(|| {
                    u = (u + 1) % 10_000;
                    let ctx = UserContext::with_id(u).employee(u.is_multiple_of(50));
                    rt.check("P", &ctx)
                })
            },
        );
    }
    group.finish();
}

fn cdsl_compile(c: &mut Criterion) {
    let mut files = BTreeMap::new();
    files.insert(
        "schemas/job.schema".to_string(),
        "enum Kind { BATCH, SERVICE }\nstruct Job { 1: string name 2: i64 memory_mb = 1024 3: list<i64> ports 4: Kind kind = BATCH }".to_string(),
    );
    files.insert(
        "schemas/job.cvalidator".to_string(),
        "def validate(cfg):\n    require(cfg.memory_mb >= 64, \"mem\")\n    require(len(cfg.name) > 0, \"name\")".to_string(),
    );
    files.insert(
        "create_job.cinc".to_string(),
        "schema \"schemas/job.schema\"\ndef create_job(name, memory_mb=1024):\n    return Job { name: name, memory_mb: memory_mb, ports: [8089, 8090], kind: Kind.SERVICE }".to_string(),
    );
    files.insert(
        "cache.cconf".to_string(),
        "import \"create_job.cinc\"\nexport_if_last(create_job(\"cache\", memory_mb=2048))"
            .to_string(),
    );
    c.bench_function("cdsl_compile", |b| {
        b.iter(|| {
            cdsl::compile::Compiler::new(&files)
                .compile("cache.cconf")
                .expect("compiles")
        })
    });
}

fn zeus_propagation(c: &mut Criterion) {
    use simnet::prelude::*;
    use zeus::deploy::{DeployConfig, ZeusDeployment};
    c.bench_function("zeus_propagation_360_servers", |b| {
        b.iter(|| {
            let topo = Topology::symmetric(3, 2, 60);
            let mut sim = Sim::new(topo, NetConfig::datacenter(), 5);
            let cfg = DeployConfig {
                ensemble_size: 5,
                observers_per_cluster: 2,
                subscriptions: vec!["x".into()],
                ..DeployConfig::default()
            };
            let zeus = ZeusDeployment::install(&mut sim, &cfg);
            sim.run_for(SimDuration::from_secs(1));
            let now = sim.now();
            zeus.write_at(&mut sim, now, "x", &b"payload"[..]);
            sim.run_for(SimDuration::from_secs(2));
            sim.metrics().summary("zeus.propagation_s").map(|s| s.max)
        })
    });
}

fn primitives(c: &mut Criterion) {
    let data = vec![0xA5u8; 64 * 1024];
    let mut group = c.benchmark_group("primitives");
    group.throughput(Throughput::Bytes(data.len() as u64));
    group.bench_function("sha1_64k", |b| b.iter(|| gitstore::sha1::sha1(&data)));
    group.finish();

    let old: String = (0..200).map(|i| format!("line {i}\n")).collect();
    let new: String = (0..200)
        .map(|i| {
            if i % 10 == 0 {
                format!("changed {i}\n")
            } else {
                format!("line {i}\n")
            }
        })
        .collect();
    c.bench_function("myers_diff_200_lines", |b| {
        b.iter(|| gitstore::diff::diff_stat(&old, &new))
    });
}

criterion_group!(
    benches,
    commit_throughput,
    gk_check,
    cdsl_compile,
    zeus_propagation,
    primitives
);
criterion_main!(benches);
