//! Byte-determinism gates for the allocation-free event core.
//!
//! The calendar queue, slab, and interner are pure engine substitutions:
//! they must replay the exact `(at, seq)` dispatch order of the reference
//! binary heap, and the profiler must stay a pure observer. Both claims
//! are checked on real metric surfaces — the same ones `scripts/check.sh`
//! golden-gates — not on synthetic queues.

use bytes::Bytes;
use simnet::prelude::*;
use simnet::sim::set_default_reference_queue;
use zeus::deploy::{DeployConfig, ZeusDeployment};

/// `repro metrics` (the golden-gated Prometheus dump) must be
/// byte-identical whether sims run on the calendar queue or the reference
/// `BinaryHeap`. This is the top-level proof that the queue swap changes
/// wall time only.
#[test]
fn repro_metrics_identical_across_queue_impls() {
    let calendar = bench::trace_exp::metrics(1, false);
    set_default_reference_queue(true);
    let reference = bench::trace_exp::metrics(1, false);
    set_default_reference_queue(false);
    assert_eq!(
        calendar, reference,
        "repro metrics must not depend on the event-queue implementation"
    );
    assert!(calendar.contains("zeus_"), "dump must carry zeus metrics");
}

/// One small zeus scenario, exported four ways: {calendar, reference} x
/// {profiler on, off}. All four Prometheus dumps must match — the
/// profiler only observes (its wall fields never feed back into the
/// schedule), and the queues dispatch identically.
#[test]
fn replay_identical_across_queue_and_profiler() {
    fn run(reference: bool, profiler: bool) -> String {
        if reference {
            set_default_reference_queue(true);
        }
        let topo = Topology::symmetric(2, 2, 6);
        let mut sim = Sim::new(topo, NetConfig::datacenter(), 11);
        set_default_reference_queue(false);
        if profiler {
            sim.enable_profiler();
        }
        let cfg = DeployConfig {
            subscriptions: (0..3).map(|i| format!("det/{i}")).collect(),
            ..DeployConfig::default()
        };
        let zeus = ZeusDeployment::install(&mut sim, &cfg);
        for k in 0..20u64 {
            let at = SimTime(1_000_000 + k * 250_000);
            zeus.write_current(
                &mut sim,
                at,
                &format!("det/{}", k % 3),
                Bytes::from(format!("v{k}")),
            );
        }
        sim.run_until(SimTime(10_000_000));
        sim.metrics().export_prometheus()
    }
    let base = run(false, false);
    assert!(base.contains("zeus_"), "scenario must produce zeus metrics");
    for (reference, profiler) in [(false, true), (true, false), (true, true)] {
        assert_eq!(
            base,
            run(reference, profiler),
            "replay diverged (reference_queue={reference}, profiler={profiler})"
        );
    }
}
