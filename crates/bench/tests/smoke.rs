//! Smoke tests for the repro harness: every cheap experiment runs and
//! produces a report mentioning its key terms. The expensive sweeps
//! (fig13/fig14/packagevessel/partitioning) are exercised by `repro`
//! itself and kept out of the test suite for time.

use bench::{run_experiment, Scale, ALL};

fn run(name: &str) -> String {
    run_experiment(name, Scale::Small).expect("known experiment")
}

#[test]
fn statistics_experiments_produce_tables() {
    for (name, needle) in [
        ("table1", "paper: 92.8%"),
        ("table2", "line changes per update"),
        ("table3", "co-authors per config"),
        ("fig9", "last modified"),
        ("fig10", "age at update time"),
        ("headline", "mean lifetime writes"),
    ] {
        let out = run(name);
        assert!(out.contains(needle), "{name} missing {needle:?}:\n{out}");
        assert!(out.contains("measured"), "{name} lacks measured column");
    }
}

#[test]
fn growth_and_commit_figures() {
    let f7 = run("fig7");
    assert!(f7.contains("final compiled fraction"));
    let f11 = run("fig11");
    assert!(f11.contains("weekend/weekday ratio"));
    let f12 = run("fig12");
    assert!(f12.contains("day 0:"));
    let f8 = run("fig8");
    assert!(f8.contains("P50") && f8.contains("P95"));
}

#[test]
fn gatekeeper_experiments() {
    let opt = run("gk_opt");
    assert!(opt.contains("cost-optimized"));
    let roll = run("rollout");
    assert!(roll.contains("global 100%"));
}

#[test]
fn contention_and_canary() {
    let c = run("contention");
    assert!(c.contains("stale-clone retries"));
    assert!(c.contains("0 syncs"));
    let t = run("canary_timing");
    assert!(t.contains("10 min"));
}

#[test]
fn canary_rollout_and_audit() {
    let c = run("canary");
    assert!(c.contains("overall: PASS"), "canary gates failed:\n{c}");
    let a = run("audit");
    assert!(a.contains("overall: PASS"), "audit gates failed:\n{a}");
}

#[test]
fn mobile_bandwidth() {
    let m = run("mobile");
    assert!(m.contains("savings"));
}

#[test]
fn unknown_experiment_is_none() {
    assert!(run_experiment("nope", Scale::Small).is_none());
    // Every listed name resolves (cheap ones actually run above; this only
    // checks the registry is total — not executed here).
    for n in ALL {
        assert!(ALL.contains(n));
    }
}
