//! Property-based tests over the core data structures and invariants.

use std::collections::BTreeMap;

use bytes::Bytes;
use gitstore::diff::{apply, apply_reverse, diff_lines, diff_stat};
use gitstore::repo::{Change, Repository};
use proptest::prelude::*;

/// Model-based test: a gitstore repository's snapshot always equals a
/// plain map driven by the same change sequence, and every historical
/// snapshot stays readable.
mod repo_model {
    use super::*;

    #[derive(Debug, Clone)]
    enum Op {
        Put(u8, String),
        Delete(u8),
    }

    fn op_strategy() -> impl Strategy<Value = Op> {
        prop_oneof![
            (0u8..20, "[a-z]{0,12}").prop_map(|(k, v)| Op::Put(k, v)),
            (0u8..20).prop_map(Op::Delete),
        ]
    }

    fn path(k: u8) -> String {
        // Mix flat and nested paths.
        if k.is_multiple_of(3) {
            format!("dir{}/file{k}", k % 5)
        } else {
            format!("file{k}")
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn snapshot_matches_model(batches in prop::collection::vec(
            prop::collection::vec(op_strategy(), 1..6), 1..12)
        ) {
            let mut repo = Repository::new();
            let mut model: BTreeMap<String, String> = BTreeMap::new();
            let mut heads = Vec::new();
            let mut models = Vec::new();
            for (ts, batch) in batches.into_iter().enumerate() {
                let mut changes = Vec::new();
                let mut staged = model.clone();
                for op in batch {
                    match op {
                        Op::Put(k, v) => {
                            let p = path(k);
                            // Avoid file/dir collisions in the model too.
                            let collides = staged.keys().any(|q| {
                                q != &p && (q.starts_with(&format!("{p}/")) || p.starts_with(&format!("{q}/")))
                            });
                            if !collides {
                                staged.insert(p.clone(), v.clone());
                                changes.push(Change::put(p, v));
                            }
                        }
                        Op::Delete(k) => {
                            let p = path(k);
                            if staged.remove(&p).is_some() {
                                changes.push(Change::delete(p));
                            }
                        }
                    }
                }
                if changes.is_empty() {
                    continue;
                }
                let out = repo.commit("prop", "batch", ts as u64, changes);
                prop_assert!(out.is_ok(), "commit failed: {out:?}");
                model = staged;
                heads.push(out.unwrap().id);
                models.push(model.clone());
                prop_assert_eq!(repo.file_count(), model.len());
            }
            // Every historical snapshot matches its model state.
            for (head, m) in heads.iter().zip(&models) {
                let snap = repo.snapshot(*head).unwrap();
                prop_assert_eq!(snap.len(), m.len());
                for (p, v) in m {
                    let data = repo.read(*head, p).unwrap();
                    prop_assert_eq!(&data[..], v.as_bytes());
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Myers diff reconstructs both sides exactly, for arbitrary texts.
    #[test]
    fn diff_round_trips(old in "([a-c]{0,6}\n){0,12}", new in "([a-c]{0,6}\n){0,12}") {
        let old = old.trim_end_matches('\n');
        let new = new.trim_end_matches('\n');
        let ops = diff_lines(old, new);
        prop_assert_eq!(apply(&ops), new);
        prop_assert_eq!(apply_reverse(&ops), old);
    }

    /// Diff size is bounded by the sum of line counts and zero iff equal.
    #[test]
    fn diff_stat_bounds(old in "([a-b]{0,4}\n){0,10}", new in "([a-b]{0,4}\n){0,10}") {
        let s = diff_stat(&old, &new);
        let max = old.lines().count() + new.lines().count();
        prop_assert!(s.line_changes() <= max);
        if old == new {
            prop_assert_eq!(s.line_changes(), 0);
        }
    }

    /// SHA-1 incremental hashing equals one-shot for arbitrary splits.
    #[test]
    fn sha1_incremental(data in prop::collection::vec(any::<u8>(), 0..2048), split in 0usize..2048) {
        let split = split.min(data.len());
        let mut h = gitstore::sha1::Sha1::new();
        h.update(&data[..split]);
        h.update(&data[split..]);
        prop_assert_eq!(h.finalize(), gitstore::sha1::sha1(&data));
    }

    /// CDSL's canonical JSON is always parseable by serde_json and
    /// deterministic.
    #[test]
    fn cdsl_json_is_valid(ints in prop::collection::vec(any::<i32>(), 0..8),
                          strs in prop::collection::vec("[\\x00-\\x7f]{0,12}", 0..6),
                          f in any::<f64>()) {
        use cdsl::value::Value;
        let mut map = BTreeMap::new();
        map.insert("ints".to_string(), Value::list(ints.iter().map(|i| Value::Int(*i as i64)).collect()));
        map.insert("strs".to_string(), Value::list(strs.iter().map(Value::str).collect()));
        map.insert("f".to_string(), Value::Float(f));
        let v = Value::dict(map);
        let compact = v.to_json();
        let parsed: Result<serde_json::Value, _> = serde_json::from_str(&compact);
        prop_assert!(parsed.is_ok(), "invalid JSON: {compact}");
        prop_assert_eq!(compact.clone(), v.to_json(), "deterministic");
        // Pretty form parses to the same document.
        let pretty: serde_json::Value = serde_json::from_str(&v.to_json_pretty()).unwrap();
        prop_assert_eq!(parsed.unwrap(), pretty);
    }

    /// Gatekeeper sampling: in [0,1), deterministic, and monotone in the
    /// rollout fraction for every user.
    #[test]
    fn gatekeeper_sampling(project in "[a-z]{1,10}", user in any::<u64>(),
                           lo in 0.0f64..1.0, hi in 0.0f64..1.0) {
        use gatekeeper::context::user_sample;
        let s = user_sample(&project, user);
        prop_assert!((0.0..1.0).contains(&s));
        prop_assert_eq!(s, user_sample(&project, user));
        let (lo, hi) = if lo <= hi { (lo, hi) } else { (hi, lo) };
        // Monotone rollouts: passing at `lo` implies passing at `hi`.
        if s < lo {
            prop_assert!(s < hi);
        }
    }

    /// Zeus's store is last-writer-wins per path under any interleaving of
    /// (ordered) applies.
    #[test]
    fn zeus_store_last_write_wins(writes in prop::collection::vec((0u8..5, "[a-z]{0,4}"), 1..30)) {
        use zeus::store::ConfigStore;
        use zeus::types::{Write, Zxid};
        let mut store = ConfigStore::new(1024);
        let mut model: BTreeMap<String, String> = BTreeMap::new();
        for (i, (k, v)) in writes.iter().enumerate() {
            let path = format!("p{k}");
            let w = Write {
                zxid: Zxid { epoch: 1, counter: i as u64 + 1 },
                path: path.clone(),
                data: Bytes::from(v.clone().into_bytes()),
                origin: simnet::SimTime::ZERO,
                trace: None,
            };
            prop_assert!(store.apply(w));
            model.insert(path, v.clone());
        }
        prop_assert_eq!(store.len(), model.len());
        for (p, v) in &model {
            prop_assert_eq!(&store.get(p).unwrap().data[..], v.as_bytes());
        }
    }

    /// The workload bucket sampler always lands inside the chosen ranges.
    #[test]
    fn bucket_sampler_in_range(seed in any::<u64>()) {
        use rand::SeedableRng;
        let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
        let ranges = workload::paper::COUNT_BUCKET_RANGES;
        for _ in 0..50 {
            let v = workload::history::sample_bucketed(
                &mut rng, &workload::paper::T1_COMPILED, &ranges);
            prop_assert!(ranges.iter().any(|(lo, hi)| v >= *lo && v <= *hi));
        }
    }

    /// MobileConfig value hashing: permutation-insensitive via BTreeMap,
    /// sensitive to any value change.
    #[test]
    fn mobile_hash_discriminates(a in any::<i64>(), b in any::<i64>()) {
        use gatekeeper::experiment::ParamValue;
        use mobileconfig::server::hash_values;
        let mk = |x: i64, y: i64| {
            BTreeMap::from([
                ("p".to_string(), ParamValue::Int(x)),
                ("q".to_string(), ParamValue::Int(y)),
            ])
        };
        prop_assert_eq!(hash_values(&mk(a, b)), hash_values(&mk(a, b)));
        if a != b {
            prop_assert_ne!(hash_values(&mk(a, b)), hash_values(&mk(b, a)));
        }
    }
}
