//! Cross-crate integration tests: the full stack wired together the way
//! the paper's Figure 1/Figure 3 composes it.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;

use bytes::Bytes;
use configerator::canary::{CanarySpec, SyntheticFleet};
use configerator::mutator::Mutator;
use configerator::review::ReviewPolicy;
use configerator::stack::{ShipError, Stack};
use gatekeeper::prelude::*;
use simnet::prelude::*;
use zeus::deploy::{DeployConfig, ZeusDeployment};

fn ch(pairs: &[(&str, &str)]) -> BTreeMap<String, Option<String>> {
    pairs
        .iter()
        .map(|(p, s)| (p.to_string(), Some(s.to_string())))
        .collect()
}

fn no_review() -> ReviewPolicy {
    ReviewPolicy {
        mandatory_review: false,
        mandatory_tests: true,
    }
}

/// Authoring → compile → ship → distribution over the simulated fleet →
/// application read at a proxy: the complete Figure 3 path.
#[test]
fn config_change_reaches_simulated_fleet() {
    // Control plane.
    let mut stack = Stack::new(2);
    stack.set_policy(no_review());
    let id = stack.propose(
        "alice",
        "add store config",
        ch(&[(
            "store/cache.cconf",
            "export_if_last({\"prefetch_kb\": 64, \"write_batch\": 16})",
        )]),
    );
    let out = stack.ship(id, None).expect("ship");
    assert_eq!(out.distributed, vec!["store/cache"]);
    let json = stack.master().artifact("store/cache").unwrap().json.clone();

    // Data plane: push the tailer output through a simulated Zeus fleet.
    let topo = Topology::symmetric(2, 2, 30);
    let mut sim = Sim::new(topo, NetConfig::datacenter(), 77);
    let cfg = DeployConfig {
        ensemble_size: 3,
        observers_per_cluster: 2,
        subscriptions: vec!["store/cache".to_string()],
        ..DeployConfig::default()
    };
    let zeus = ZeusDeployment::install(&mut sim, &cfg);
    sim.run_for(SimDuration::from_secs(1));
    let now = sim.now();
    zeus.write_at(&mut sim, now, "store/cache", Bytes::from(json.clone()));
    sim.run_for(SimDuration::from_secs(3));
    assert_eq!(zeus.coverage(&sim, "store/cache", json.as_bytes()), 1.0);
}

/// Gatekeeper consumes its project config from Configerator, live.
#[test]
fn gatekeeper_project_updates_flow_from_configerator() {
    let mut stack = Stack::new(1);
    stack.set_policy(no_review());
    let runtime: Rc<RefCell<Runtime>> = Rc::new(RefCell::new(Runtime::new(laser::Laser::new(8))));
    let rt = runtime.clone();
    stack.subscribe("gk/launch", move |u| {
        rt.borrow_mut()
            .update_project_json(&String::from_utf8_lossy(&u.data))
            .expect("valid project json");
    });

    let project_src = |prob: f64| {
        ch(&[(
            "gk/launch.cconf",
            &format!(
                "export_if_last({{\"name\": \"launch\", \"rules\": [{{\"restraints\": [{{\"kind\": \"Always\", \"negate\": false}}], \"pass_prob\": {prob}}}]}})"
            ),
        )])
    };
    let id = stack.propose("tool", "launch at 0%", project_src(0.0));
    stack.ship(id, None).expect("ship");
    let user = UserContext::with_id(5);
    assert!(!runtime.borrow_mut().check("launch", &user));

    let id = stack.propose("tool", "launch at 100%", project_src(1.0));
    stack.ship(id, None).expect("ship");
    assert!(runtime.borrow_mut().check("launch", &user));
}

/// The full error-prevention gauntlet in one place: validator rejection,
/// Sandcastle rejection, canary rejection — each leaves production intact.
#[test]
fn defense_in_depth_layers() {
    let mut stack = Stack::new(1);
    stack.set_policy(no_review());
    stack.set_default_canary(CanarySpec::standard(1000));
    stack.sandcastle.register_check("no_ghost_cluster", |cfg| {
        if cfg.json.contains("ghost") {
            Err("unknown cluster".into())
        } else {
            Ok(())
        }
    });
    // Seed a guarded config.
    let id = stack.propose(
        "alice",
        "seed",
        ch(&[
            (
                "schemas/svc.schema",
                "struct Svc { 1: string cluster 2: i64 mem = 256 }",
            ),
            (
                "schemas/svc.cvalidator",
                "def validate(cfg):\n    require(cfg.mem >= 64, \"mem\")",
            ),
            (
                "svc.cconf",
                "schema \"schemas/svc.schema\"\nexport_if_last(Svc { cluster: \"c1\" })",
            ),
        ]),
    );
    let mut fleet = SyntheticFleet::new(4000, 3);
    stack.ship(id, Some(&mut fleet)).expect("seed ships");
    let good = stack.master().artifact("svc").unwrap().json.clone();

    // Layer 1: the validator (runs inside compilation at ship time).
    let id = stack.propose(
        "bob",
        "bad mem",
        ch(&[(
            "svc.cconf",
            "schema \"schemas/svc.schema\"\nexport_if_last(Svc { cluster: \"c1\", mem: 8 })",
        )]),
    );
    // The validator fails during Sandcastle's dry-run compile, so the
    // mandatory-tests policy blocks the ship at the review stage.
    let report = stack.phab.review(id).unwrap().report.clone().unwrap();
    assert!(!report.passed);
    assert!(report.failures[0].contains("mem"));
    assert!(matches!(stack.ship(id, None), Err(ShipError::Review(_))));

    // Layer 2: Sandcastle (integration knowledge the validator lacks).
    let id = stack.propose(
        "bob",
        "ghost cluster",
        ch(&[(
            "svc.cconf",
            "schema \"schemas/svc.schema\"\nexport_if_last(Svc { cluster: \"ghost\" })",
        )]),
    );
    assert!(
        !stack
            .phab
            .review(id)
            .unwrap()
            .report
            .as_ref()
            .unwrap()
            .passed
    );

    // Layer 3: the canary.
    let id = stack.propose(
        "bob",
        "slow path",
        ch(&[(
            "svc.cconf",
            "schema \"schemas/svc.schema\"\nexport_if_last(Svc { cluster: \"slow\" })",
        )]),
    );
    let mut fleet = SyntheticFleet::new(4000, 4);
    fleet.add_effect(|cfg, metric, _| {
        if metric == "error_rate" && cfg.contains("slow") {
            0.05
        } else {
            0.0
        }
    });
    assert!(matches!(
        stack.ship(id, Some(&mut fleet)),
        Err(ShipError::Canary(_))
    ));

    // Production config untouched through all three failures.
    assert_eq!(stack.master().artifact("svc").unwrap().json, good);
}

/// Region failure mid-stream: commits continue, the recovered region
/// catches up, and automation writes keep flowing.
#[test]
fn multi_region_failover_with_automation_traffic() {
    let mut stack = Stack::new(3);
    stack.set_policy(no_review());
    let shifter = Mutator::new("shifter");
    for i in 0..5 {
        shifter
            .update_raw(stack.master_mut(), "weights.json", "shift", |_| {
                format!("{{\"w\": {i}}}")
            })
            .expect("mutator write");
        stack.pump();
        if i == 2 {
            stack.fail_region(0);
            assert_eq!(stack.master_region(), 1);
        }
    }
    assert!(stack
        .master()
        .artifact("weights.json")
        .unwrap()
        .json
        .contains('4'));
    stack.recover_region(0);
    assert!(stack
        .region(0)
        .artifact("weights.json")
        .unwrap()
        .json
        .contains('4'));
}

/// Sitevars and CDSL interop: a sitevar value produced by the expression
/// evaluator serializes canonically and round-trips through serde_json.
#[test]
fn sitevars_values_are_valid_json() {
    let mut store = sitevars::SitevarStore::new();
    store
        .set(
            "feed_params",
            "{\"ranking\": [1.5, 2.0], \"flags\": {\"x\": true, \"y\": null}}",
        )
        .expect("set");
    let json = store.get("feed_params").unwrap().to_json();
    let parsed: serde_json::Value = serde_json::from_str(&json).expect("valid JSON");
    assert_eq!(parsed["ranking"][1], serde_json::json!(2.0));
    assert_eq!(parsed["flags"]["y"], serde_json::Value::Null);
}

/// The dependency ripple works through the whole stack: one shared module
/// edit distributes every dependent config in one ship.
#[test]
fn shared_module_ripple_distributes_all_dependents() {
    let mut stack = Stack::new(1);
    stack.set_policy(no_review());
    let count = Rc::new(RefCell::new(0));
    let (c1, c2) = (count.clone(), count.clone());
    stack.subscribe("app", move |_| *c1.borrow_mut() += 1);
    stack.subscribe("firewall", move |_| *c2.borrow_mut() += 1);
    let id = stack.propose(
        "alice",
        "seed",
        ch(&[
            ("shared/port.cinc", "PORT = 8089"),
            (
                "app.cconf",
                "import \"shared/port.cinc\"\nexport_if_last({\"port\": PORT})",
            ),
            (
                "firewall.cconf",
                "import \"shared/port.cinc\"\nexport_if_last({\"allow\": [PORT]})",
            ),
        ]),
    );
    stack.ship(id, None).expect("seed");
    assert_eq!(*count.borrow(), 2);
    let id = stack.propose("bob", "bump", ch(&[("shared/port.cinc", "PORT = 9090")]));
    let out = stack.ship(id, None).expect("bump");
    assert_eq!(out.report.ripple_recompiles.len(), 2);
    assert_eq!(*count.borrow(), 4, "both dependents redistributed");
    assert!(stack
        .master()
        .artifact("firewall")
        .unwrap()
        .json
        .contains("9090"));
}

/// The §8 future-work feature: a dormant config changed in an unusual way
/// by a stranger gets flagged at review time.
#[test]
fn high_risk_updates_are_flagged() {
    let mut stack = Stack::new(1);
    stack.set_policy(no_review());
    // An actively-maintained config with a small circle of authors.
    for (i, author) in ["ann", "bo", "cy", "ann", "bo", "cy", "ann", "bo"]
        .iter()
        .enumerate()
    {
        let id = stack.propose(
            author,
            "tweak",
            ch(&[("hot/knob.cconf", &format!("export_if_last({{\"v\": {i}}})"))]),
        );
        stack.ship(id, None).expect("ship");
    }
    // Routine change by a known author: low risk.
    let id = stack.propose(
        "ann",
        "tweak",
        ch(&[("hot/knob.cconf", "export_if_last({\"v\": 99})")]),
    );
    assert!(!stack.risk_of(id).unwrap().is_high_risk());
    stack.ship(id, None).expect("ship");

    // Dormant + huge + stranger: flagged. (Dormancy is measured on the
    // landed-commit clock, so land unrelated traffic first.)
    for i in 0..300 {
        let id = stack.propose(
            "other-team",
            "unrelated",
            ch(&[("elsewhere/cfg.cconf", &format!("export_if_last({i})"))]),
        );
        stack.ship(id, None).expect("ship");
    }
    let big_change: String = (0..400)
        .map(|i| format!("x{i} = {i}\n"))
        .chain(std::iter::once("export_if_last(x399)".to_string()))
        .collect();
    let id = stack.propose(
        "stranger",
        "big sweep",
        ch(&[("hot/knob.cconf", &big_change)]),
    );
    let risk = stack.risk_of(id).unwrap();
    assert!(
        risk.is_high_risk(),
        "score {}: {:?}",
        risk.score,
        risk.signals
    );
    let names: Vec<&str> = risk.signals.iter().map(|s| s.name).collect();
    assert!(names.contains(&"dormancy"), "{names:?}");
    assert!(names.contains(&"unusual-size"), "{names:?}");
    assert!(names.contains(&"stranger"), "{names:?}");
}

/// Sitevars as a shim on Configerator (§3.2): the sitevar's expression is
/// stored as a raw config; evaluation and checker run at the shim layer.
#[test]
fn sitevars_compose_with_the_stack() {
    let mut stack = Stack::new(1);
    let mut shim = sitevars::SitevarStore::new();

    // Setting a sitevar = validating at the shim + committing the raw
    // expression through Configerator.
    let set = |stack: &mut Stack,
               shim: &mut sitevars::SitevarStore,
               name: &str,
               expr: &str|
     -> Result<(), String> {
        let out = shim.set(name, expr).map_err(|e| e.to_string())?;
        for w in &out.warnings {
            // The UI would display these (§3.2); surfaced, not fatal.
            eprintln!("warning: {w}");
        }
        stack
            .master_mut()
            .commit_raw(
                "sitevar-ui",
                "update",
                &format!("sitevars/{name}"),
                expr.as_bytes().to_vec(),
            )
            .map_err(|e| e.to_string())?;
        stack.pump();
        Ok(())
    };

    set(&mut stack, &mut shim, "upload_limit", "10 * 1024").unwrap();
    shim.set_checker(
        "upload_limit",
        "def check(value):\n    require(value > 0, \"limit must be positive\")",
    )
    .unwrap();
    // A checker-violating update never reaches the repository.
    let heads_before = stack.master().repo().heads();
    assert!(set(&mut stack, &mut shim, "upload_limit", "-1").is_err());
    assert_eq!(stack.master().repo().heads(), heads_before);
    // A good update lands; the stored artifact is the raw expression.
    set(&mut stack, &mut shim, "upload_limit", "20 * 1024").unwrap();
    assert_eq!(
        stack
            .master()
            .artifact("sitevars/upload_limit")
            .unwrap()
            .json,
        "20 * 1024"
    );
    assert_eq!(shim.get("upload_limit").unwrap().to_json(), "20480");
}
