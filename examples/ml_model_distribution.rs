//! Distributing a machine-learning model (§2, §3.5): a News-Feed-ranking
//! style model of hundreds of MB is published through PackageVessel and
//! reaches a simulated fleet — metadata through the subscription channel,
//! bulk content through the locality-aware swarm.
//!
//! Run with: `cargo run --release --example ml_model_distribution`

use packagevessel::prelude::*;
use simnet::prelude::*;

fn main() {
    // 2 regions × 3 clusters × 120 servers = 720 servers; 2 Gb/s links.
    let topo = Topology::symmetric(2, 3, 120);
    let net = NetConfig {
        egress_bytes_per_sec: 250_000_000,
        ingress_bytes_per_sec: 250_000_000,
        ..NetConfig::datacenter()
    };
    let mut sim = Sim::new(topo, net, 2026);
    let pv = PvDeployment::install(&mut sim, PeerPolicy::LocalityAware, 4);

    // Publish model v1: 256 MB in 4 MB pieces.
    let meta = pv.publish(
        &mut sim,
        "feed/ranking_model",
        1,
        256 << 20,
        4 << 20,
        SimTime::ZERO,
    );
    sim.run_for(SimDuration::from_secs(600));

    let done = pv.completion(&sim, &meta.id);
    let s = sim
        .metrics()
        .summary("pv.fetch_complete_s")
        .expect("fetches completed");
    println!("model v1 (256 MB) → {} servers", pv.agents.len());
    println!("  completion: {:.1}%", done * 100.0);
    println!("  time to last server: {:.1}s (paper bound: < 240s)", s.max);
    println!(
        "  storage served {} pieces; peers served {} ({}% in-cluster)",
        sim.metrics().counter("pv.storage_pieces_sent"),
        sim.metrics().counter("pv.p2p_pieces_sent"),
        100 * sim.metrics().counter("pv.p2p_pieces_same_cluster")
            / sim.metrics().counter("pv.p2p_pieces_sent").max(1),
    );
    assert!(s.max < 240.0, "must meet the paper's four-minute bound");

    // Retrain: v2 supersedes v1, even on servers mid-download.
    let now = sim.now();
    let meta2 = pv.publish(&mut sim, "feed/ranking_model", 2, 256 << 20, 4 << 20, now);
    sim.run_for(SimDuration::from_secs(600));
    let done2 = pv.completion(&sim, &meta2.id);
    println!("\nmodel v2 published; completion {:.1}%", done2 * 100.0);
    for &a in &pv.agents {
        let agent: &PvAgentActor = sim.actor(a).expect("agent");
        assert_eq!(
            agent.latest_version("feed/ranking_model"),
            Some(2),
            "every server converges on the newest version (metadata-driven consistency)"
        );
    }
    println!("every server holds v2 — the hybrid subscription-P2P consistency guarantee (§3.5).");
}
