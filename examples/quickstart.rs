//! Quickstart: author a config as code, ship it through the full pipeline
//! (review → Sandcastle → canary → landing strip), and watch a subscribed
//! application receive the update — the Figure 2/Figure 3 flow end to end.
//!
//! Run with: `cargo run --example quickstart`

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;

use configerator::canary::{CanarySpec, SyntheticFleet};
use configerator::stack::Stack;

fn main() {
    // A three-region Configerator deployment with the standard canary spec.
    let mut stack = Stack::new(3);
    stack.set_default_canary(CanarySpec::standard(1000));

    // An application subscribes to its config, exactly as it would through
    // the Configerator proxy's client library.
    let app_config: Rc<RefCell<Option<String>>> = Rc::default();
    let seen = app_config.clone();
    stack.subscribe("cache/job", move |update| {
        *seen.borrow_mut() = Some(String::from_utf8_lossy(&update.data).to_string());
    });

    // The scheduler team owns the schema, the reusable module, and the
    // validator; the cache team writes a one-liner (§3.1, Figure 2).
    let mut changes = BTreeMap::new();
    changes.insert(
        "schemas/job.schema".to_string(),
        Some(
            "enum JobKind { BATCH, SERVICE }\n\
             struct Job {\n\
               1: string name\n\
               2: optional i64 memory_mb = 1024\n\
               3: list<i64> ports\n\
               4: JobKind kind = BATCH\n\
             }"
            .to_string(),
        ),
    );
    changes.insert(
        "schemas/job.cvalidator".to_string(),
        Some(
            "def validate(cfg):\n\
             \x20   require(cfg.memory_mb >= 64, \"memory_mb too small\")\n\
             \x20   require(len(cfg.ports) > 0, \"need at least one port\")\n"
                .to_string(),
        ),
    );
    changes.insert(
        "create_job.cinc".to_string(),
        Some(
            "schema \"schemas/job.schema\"\n\
             def create_job(name, memory_mb=1024):\n\
             \x20   return Job { name: name, memory_mb: memory_mb, ports: [8089], kind: JobKind.SERVICE }\n"
                .to_string(),
        ),
    );
    changes.insert(
        "cache/job.cconf".to_string(),
        Some("import \"create_job.cinc\"\nexport_if_last(create_job(\"cache\"))".to_string()),
    );

    // Propose → Sandcastle runs automatically → review → ship (canary,
    // land, replicate, distribute).
    let id = stack.propose("alice", "add the cache job config", changes);
    println!(
        "sandcastle passed: {:?}",
        stack
            .phab
            .review(id)
            .unwrap()
            .report
            .as_ref()
            .unwrap()
            .passed
    );
    stack.approve(id, "bob").expect("review approval");
    let mut fleet = SyntheticFleet::new(4000, 42);
    let out = stack.ship(id, Some(&mut fleet)).expect("ship");
    println!("canary passed: {}", out.canary.as_ref().unwrap().passed);
    println!("distributed configs: {:?}", out.distributed);

    // The subscribed application got the compiled JSON.
    println!(
        "\napplication sees:\n{}",
        app_config.borrow().as_ref().unwrap()
    );

    // A validator-violating change is rejected before anything lands.
    let mut bad = BTreeMap::new();
    bad.insert(
        "cache/job.cconf".to_string(),
        Some(
            "import \"create_job.cinc\"\nexport_if_last(create_job(\"cache\", memory_mb=8))"
                .to_string(),
        ),
    );
    let id = stack.propose("mallory", "shrink cache (oops)", bad);
    let review = stack.phab.review(id).unwrap();
    let report = review.report.as_ref().unwrap();
    println!("\nbad change sandcastle verdict: passed={}", report.passed);
    println!("  failure: {}", report.failures[0]);
    assert!(
        stack.approve(id, "bob").is_err(),
        "cannot approve failing tests"
    );
    println!("review system refuses approval while tests fail — the §3.3 safety net.");
}
