//! The §6.4 incident stories, replayed against the real pipeline:
//!
//! 1. the "log spew" config caught by the 20-server canary phase;
//! 2. the load-coupled backend overload that a 20-server canary *misses*
//!    but the cluster-scale phase catches (the paper's added phase);
//! 3. a valid config exposing a latent code bug (Type III).
//!
//! Run with: `cargo run --example canary_rollback`

use std::collections::BTreeMap;

use configerator::canary::{CanarySpec, SyntheticFleet};
use configerator::stack::{ShipError, Stack};

fn change(src: &str) -> BTreeMap<String, Option<String>> {
    let mut ch = BTreeMap::new();
    ch.insert("frontend/mode.cconf".to_string(), Some(src.to_string()));
    ch
}

fn fleet_with_incidents(seed: u64) -> SyntheticFleet {
    let mut fleet = SyntheticFleet::new(5000, seed);
    // Incident 1: schema-mismatched mode spews errors everywhere.
    fleet.add_effect(|cfg, metric, _| {
        if metric == "error_rate" && cfg.contains("old_schema") {
            0.08
        } else {
            0.0
        }
    });
    // Incident 2: a rare code path overloads a backend only at scale.
    fleet.add_effect(|cfg, metric, frac| {
        if metric == "latency_ms" && cfg.contains("rare_path") && frac > 0.05 {
            1500.0 * frac
        } else {
            0.0
        }
    });
    // Incident 3: a valid change exposes a race-condition crash.
    fleet.add_effect(|cfg, metric, _| {
        if metric == "error_rate" && cfg.contains("new_code_path") {
            0.03
        } else {
            0.0
        }
    });
    fleet
}

fn main() {
    let mut stack = Stack::new(1);
    stack.set_policy(configerator::review::ReviewPolicy {
        mandatory_review: false,
        mandatory_tests: true,
    });
    stack.set_default_canary(CanarySpec::standard(2000));

    // Baseline config ships cleanly.
    let id = stack.propose(
        "alice",
        "baseline",
        change("export_if_last({\"mode\": \"normal\"})"),
    );
    stack
        .ship(id, Some(&mut fleet_with_incidents(1)))
        .expect("baseline ships");
    println!(
        "baseline shipped: {:?}\n",
        stack.master().artifact("frontend/mode").is_some()
    );

    let scenarios = [
        ("log spew (§6.4 incident 1)", "{\"mode\": \"old_schema\"}"),
        (
            "backend overload at scale (§6.4 incident 3)",
            "{\"mode\": \"rare_path\"}",
        ),
        (
            "valid config, latent code bug (§6.4 type III)",
            "{\"mode\": \"new_code_path\"}",
        ),
    ];
    for (label, cfg) in scenarios {
        let id = stack.propose("bob", label, change(&format!("export_if_last({cfg})")));
        match stack.ship(id, Some(&mut fleet_with_incidents(2))) {
            Err(ShipError::Canary(outcome)) => {
                let failed = outcome.phases.last().expect("phases ran");
                println!("{label}:");
                println!("  BLOCKED by canary phase {:?}", failed.name);
                for (metric, canary, control, held) in &failed.details {
                    if !held {
                        println!("    {metric}: canary {canary:.3} vs control {control:.3}");
                    }
                }
                // Rollback is implicit: the change never landed.
                assert!(stack
                    .master()
                    .artifact("frontend/mode")
                    .unwrap()
                    .json
                    .contains("normal"));
                println!("  production still runs the old config.\n");
            }
            other => panic!("expected canary block for {label}: {other:?}"),
        }
    }

    // The paper's lesson: without the cluster phase, the load-coupled
    // incident escapes.
    let mut small_only = Stack::new(1);
    small_only.set_policy(configerator::review::ReviewPolicy {
        mandatory_review: false,
        mandatory_tests: true,
    });
    small_only.set_default_canary(CanarySpec {
        phases: vec![CanarySpec::standard(2000).phases[0].clone()],
    });
    let id = small_only.propose(
        "bob",
        "rare path again",
        change("export_if_last({\"mode\": \"rare_path\"})"),
    );
    let shipped = small_only.ship(id, Some(&mut fleet_with_incidents(3)));
    println!(
        "with only the 20-server phase, the overload config ships: {} —\n\
         \"the small scale testing was insufficient to cause any load issue\"\n\
         (§6.4); the cluster-scale phase above is the paper's fix.",
        shipped.is_ok()
    );
}
