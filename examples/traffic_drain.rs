//! Application-level traffic control (§2): an automation tool uses the
//! Mutator API to shift traffic weights between regions, and an emergency
//! drain is a single config change that every load balancer sees within
//! the distribution tree's propagation latency — measured here on a
//! simulated fleet.
//!
//! Run with: `cargo run --example traffic_drain`

use bytes::Bytes;
use configerator::mutator::Mutator;
use configerator::stack::Stack;
use simnet::prelude::*;
use zeus::deploy::{DeployConfig, ZeusDeployment};
use zeus::proxy::ProxyActor;

fn main() {
    // Part 1: the control plane. An automation tool rebalances traffic
    // weights with mutator commits (no human in the loop — 89% of raw
    // config updates are automated, §6.1).
    let mut stack = Stack::new(2);
    let shifter = Mutator::new("traffic-shifter");
    shifter
        .update_raw(stack.master_mut(), "traffic/weights.json", "init", |_| {
            "{\"atn\": 50, \"prn\": 50}".to_string()
        })
        .expect("initial weights");
    stack.pump();
    for step in 1..=3 {
        shifter
            .update_raw(
                stack.master_mut(),
                "traffic/weights.json",
                "rebalance",
                |cur| {
                    let cur = cur.expect("weights exist");
                    let atn = 50 - step * 15;
                    println!("shift {step}: {cur} → atn={atn}");
                    format!("{{\"atn\": {atn}, \"prn\": {}}}", 100 - atn)
                },
            )
            .expect("shift");
        stack.pump();
    }
    println!(
        "final weights at master: {}",
        stack
            .master()
            .artifact("traffic/weights.json")
            .unwrap()
            .json
    );

    // Part 2: the data plane. How fast does an emergency drain reach every
    // load balancer? Measure on a simulated 3-region fleet.
    let topo = Topology::symmetric(3, 2, 80);
    let mut sim = Sim::new(topo, NetConfig::datacenter(), 9);
    let cfg = DeployConfig {
        ensemble_size: 5,
        observers_per_cluster: 2,
        subscriptions: vec!["traffic/weights.json".to_string()],
        ..DeployConfig::default()
    };
    let zeus = ZeusDeployment::install(&mut sim, &cfg);
    sim.run_for(SimDuration::from_secs(1));

    let drain = "{\"atn\": 0, \"prn\": 100}";
    let now = sim.now();
    zeus.write_at(&mut sim, now, "traffic/weights.json", Bytes::from(drain));
    sim.run_for(SimDuration::from_secs(5));

    let coverage = zeus.coverage(&sim, "traffic/weights.json", drain.as_bytes());
    let s = sim
        .metrics()
        .summary("zeus.propagation_s")
        .expect("propagation");
    println!(
        "\nemergency drain \"atn → 0\" reached {:.1}% of {} load balancers",
        coverage * 100.0,
        zeus.proxies.len()
    );
    println!(
        "propagation: p50 {:.0} ms, p95 {:.0} ms, max {:.0} ms",
        s.p50 * 1e3,
        s.p95 * 1e3,
        s.max * 1e3
    );
    // Spot-check one proxy's view.
    let one: &ProxyActor = sim.actor(zeus.proxies[0]).expect("proxy");
    println!(
        "one load balancer reads: {}",
        String::from_utf8_lossy(&one.read("traffic/weights.json").unwrap().data)
    );
    assert_eq!(coverage, 1.0);
}
