//! The VoIP echo-canceling story from §2/§5: run an A/B experiment on a
//! mobile parameter through MobileConfig, find the winning value, then
//! remap the field from the experiment to a constant — without any client
//! change.
//!
//! Run with: `cargo run --example ab_experiment`

use std::collections::BTreeMap;

use gatekeeper::context::{mix64, UserContext};
use gatekeeper::experiment::{Experiment, ExperimentResults, Group, ParamValue};
use gatekeeper::project::Project;
use gatekeeper::runtime::Runtime;
use mobileconfig::{
    Binding, FieldType, MobileConfigClient, MobileConfigServer, MobileSchema, TranslationLayer,
};

fn main() {
    // The Messenger app ships with a schema containing VOIP_ECHO.
    let schema = MobileSchema::new("MessengerVoip", &[("VOIP_ECHO", FieldType::Float)]);

    // Phase 1: VOIP_ECHO is experiment-backed. Two candidate parameter
    // values against a 0.5 default.
    let experiment = Experiment::new(
        "echo_tuning",
        vec![
            Group {
                name: "gentle".into(),
                fraction: 0.2,
                params: BTreeMap::from([("VOIP_ECHO".to_string(), ParamValue::Float(0.3))]),
            },
            Group {
                name: "aggressive".into(),
                fraction: 0.2,
                params: BTreeMap::from([("VOIP_ECHO".to_string(), ParamValue::Float(0.9))]),
            },
        ],
        BTreeMap::from([("VOIP_ECHO".to_string(), ParamValue::Float(0.5))]),
    );
    let mut translation = TranslationLayer::new();
    translation.bind(
        "MessengerVoip",
        "VOIP_ECHO",
        Binding::Experiment {
            name: "echo_tuning".into(),
            param: "VOIP_ECHO".into(),
        },
    );
    let mut gk = Runtime::new(laser::Laser::new(64));
    gk.update_project(Project::fraction_launch("unused", 0.0));
    let mut server = MobileConfigServer::new(translation, gk);
    server.register_schema(schema.clone());
    server.update_experiment(experiment.clone());

    // 30k devices poll and run calls; call quality genuinely improves with
    // a higher echo parameter on this hardware mix.
    let mut results = ExperimentResults::new(experiment.groups.len());
    let mut devices: Vec<MobileConfigClient> = (0..30_000u64)
        .map(|u| MobileConfigClient::new(UserContext::with_id(u), schema.clone()))
        .collect();
    for (u, device) in devices.iter_mut().enumerate() {
        device.poll(&mut server);
        let echo = device.get_float("VOIP_ECHO");
        let noise = (mix64(u as u64) % 1000) as f64 / 1000.0 - 0.5;
        let call_quality = 3.0 + echo * 1.5 + noise;
        results.record(experiment.assign(u as u64), call_quality);
    }
    for (i, g) in experiment.groups.iter().enumerate() {
        let s = results.stats(Some(i)).unwrap();
        println!(
            "group {:<12} echo={:.1}  n={:5}  mean quality {:.3}",
            g.name,
            g.params["VOIP_ECHO"].as_f64().unwrap(),
            s.n,
            s.mean
        );
    }
    let control = results.stats(None).unwrap();
    println!(
        "control      echo=0.5  n={:5}  mean quality {:.3}",
        control.n, control.mean
    );
    let (winner, z) = results.winner().unwrap();
    println!(
        "\nwinner: {} (z = {z:.1} vs control)",
        experiment.groups[winner].name
    );

    // Phase 2: "After the experiment finishes and the best parameter is
    // found, VOIP_ECHO can be remapped to a constant stored in
    // Configerator" (§5) — one translation-layer update, zero app changes.
    let best = experiment.groups[winner].params["VOIP_ECHO"].clone();
    let mut translation = TranslationLayer::new();
    translation.bind(
        "MessengerVoip",
        "VOIP_ECHO",
        Binding::Constant(best.clone()),
    );
    server.update_translation(translation);

    let mut legacy_device = MobileConfigClient::new(UserContext::with_id(7), schema);
    legacy_device.poll(&mut server);
    println!(
        "after remap, every device (old app builds included) reads VOIP_ECHO = {:?}",
        legacy_device.get_float("VOIP_ECHO")
    );
    assert_eq!(
        ParamValue::Float(legacy_device.get_float("VOIP_ECHO")),
        best
    );
}
