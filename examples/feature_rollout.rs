//! Gating a product rollout with Gatekeeper (§4), driven by live config
//! updates through the Configerator stack: employees → 1% → 10% → global,
//! with an instantaneous kill switch at the end.
//!
//! Run with: `cargo run --example feature_rollout`

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;

use configerator::stack::Stack;
use gatekeeper::prelude::*;

fn gk_config(rules: &str) -> BTreeMap<String, Option<String>> {
    // The Gatekeeper project's control logic "is actually stored as a
    // config that can be changed live" (§4) — here authored as CDSL that
    // compiles to the project JSON the runtime consumes.
    let src =
        format!("export_if_last({{\n    \"name\": \"ProjectX\",\n    \"rules\": [{rules}]\n}})");
    let mut ch = BTreeMap::new();
    ch.insert("gk/projectx.cconf".to_string(), Some(src));
    ch
}

fn rule(restraints: &str, prob: f64) -> String {
    format!("{{\"restraints\": [{restraints}], \"pass_prob\": {prob}}}")
}

const EMPLOYEE: &str = "{\"kind\": \"Employee\", \"negate\": false}";
const ALWAYS: &str = "{\"kind\": \"Always\", \"negate\": false}";

fn main() {
    let mut stack = Stack::new(1);
    // Automation-speed example: skip human review for brevity.
    stack.set_policy(configerator::review::ReviewPolicy {
        mandatory_review: false,
        mandatory_tests: true,
    });

    // The Gatekeeper runtime on a frontend server subscribes to the
    // project config and hot-swaps the gating logic on every update.
    let runtime: Rc<RefCell<Runtime>> = Rc::new(RefCell::new(Runtime::new(laser::Laser::new(64))));
    let rt = runtime.clone();
    stack.subscribe("gk/projectx", move |update| {
        let json = String::from_utf8_lossy(&update.data);
        rt.borrow_mut()
            .update_project_json(&json)
            .expect("valid project config");
    });

    // A population of users; ~1% employees.
    let users: Vec<UserContext> = (0..50_000u64)
        .map(|u| {
            let mut c = UserContext::with_id(u).country(if u % 4 == 0 { "US" } else { "IN" });
            c.employee = u % 100 == 0;
            c
        })
        .collect();
    let pass_rate = |rt: &RefCell<Runtime>| {
        let mut rt = rt.borrow_mut();
        let n = users.iter().filter(|u| rt.check("ProjectX", u)).count();
        100.0 * n as f64 / users.len() as f64
    };

    let stages: Vec<(&str, String)> = vec![
        ("employees only", rule(EMPLOYEE, 1.0)),
        (
            "employees + 1% public",
            format!("{}, {}", rule(EMPLOYEE, 1.0), rule(ALWAYS, 0.01)),
        ),
        (
            "employees + 10% public",
            format!("{}, {}", rule(EMPLOYEE, 1.0), rule(ALWAYS, 0.10)),
        ),
        ("global launch", rule(ALWAYS, 1.0)),
        ("KILL SWITCH (bug found)", rule(ALWAYS, 0.0)),
    ];
    let mut previous: Vec<u64> = Vec::new();
    println!("stage                      pass-rate   previously-passing kept");
    for (label, rules) in stages {
        let id = stack.propose("launch-tool", label, gk_config(&rules));
        stack.ship(id, None).expect("ship config update");
        let rate = pass_rate(&runtime);
        let passing: Vec<u64> = {
            let mut rt = runtime.borrow_mut();
            users
                .iter()
                .filter(|u| rt.check("ProjectX", u))
                .map(|u| u.user_id)
                .collect()
        };
        let kept = if label.starts_with("KILL") {
            0
        } else {
            previous.iter().filter(|u| passing.contains(u)).count()
        };
        println!("{label:<26} {rate:>7.2}%   {kept}/{}", previous.len());
        if !label.starts_with("KILL") {
            previous = passing;
        }
    }
    println!(
        "\nEvery stage is just a config commit; the deterministic per-user\n\
         die makes expansion monotone, and the kill switch is one more\n\
         commit away (\"the new code can be disabled instantaneously\", §4)."
    );
}
