//! # holoconfig — a Rust reproduction of Facebook's holistic configuration
//! # management stack (SOSP 2015)
//!
//! This is the umbrella crate of the workspace: it re-exports every
//! subsystem so examples and downstream users can depend on one crate.
//! See `README.md` for the architecture overview, `DESIGN.md` for the
//! system inventory and experiment index, and `EXPERIMENTS.md` for the
//! paper-vs-measured results.
//!
//! The subsystems:
//!
//! * [`configerator`] — the core pipeline: config repository, compiler,
//!   dependency service, review, canary, landing strip, tailer, mutator,
//!   multi-region stack.
//! * [`cdsl`] — configuration-as-code: the config language, Thrift-style
//!   schemas, validators, canonical JSON.
//! * [`gitstore`] — the from-scratch content-addressed version control
//!   substrate.
//! * [`zeus`] — the replicated config store and leader→observer→proxy push
//!   tree.
//! * [`packagevessel`] — hybrid subscription-P2P bulk distribution.
//! * [`gatekeeper`] / [`laser`] — feature gating, A/B experiments, and the
//!   data store behind data-driven restraints.
//! * [`sitevars`] — the name-value shim for frontend products.
//! * [`mobileconfig`] — the mobile client/server with hash-based delta
//!   sync and the translation layer.
//! * [`simnet`] — the deterministic discrete-event fleet simulator.
//! * [`workload`] — generators calibrated to the paper's usage statistics.

pub use cdsl;
pub use configerator;
pub use gatekeeper;
pub use gitstore;
pub use laser;
pub use mobileconfig;
pub use packagevessel;
pub use simnet;
pub use sitevars;
pub use workload;
pub use zeus;
