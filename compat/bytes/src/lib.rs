//! Offline stand-in for the `bytes` crate.
//!
//! The container this workspace builds in has no crates.io access, so the
//! handful of external dependencies are vendored as minimal API-compatible
//! stubs. This one provides [`Bytes`]: an immutable, cheaply cloneable byte
//! buffer backed by an `Arc<[u8]>`. Only the surface the workspace uses is
//! implemented.
#![allow(clippy::all)] // vendored stand-in for an external crate

use std::borrow::Borrow;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::Deref;
use std::sync::Arc;

/// An immutable, reference-counted byte buffer.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// Creates an empty buffer.
    pub fn new() -> Bytes {
        Bytes::default()
    }

    /// Creates a buffer from a static slice (no copy semantics promised by
    /// the real crate; this stub copies once).
    pub fn from_static(data: &'static [u8]) -> Bytes {
        Bytes { data: data.into() }
    }

    /// Copies `data` into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Bytes {
        Bytes { data: data.into() }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Returns a copy of the contents as a `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data.to_vec()
    }

    /// Returns a sub-buffer for the given range (copies in this stub).
    pub fn slice(&self, range: impl std::ops::RangeBounds<usize>) -> Bytes {
        use std::ops::Bound;
        let start = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.data.len(),
        };
        Bytes {
            data: self.data[start..end].into(),
        }
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        Bytes { data: v.into() }
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Bytes {
        Bytes {
            data: s.into_bytes().into(),
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(s: &[u8]) -> Bytes {
        Bytes { data: s.into() }
    }
}

impl From<&str> for Bytes {
    fn from(s: &str) -> Bytes {
        Bytes {
            data: s.as_bytes().into(),
        }
    }
}

impl<const N: usize> From<&[u8; N]> for Bytes {
    fn from(s: &[u8; N]) -> Bytes {
        Bytes {
            data: s.as_slice().into(),
        }
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<I: IntoIterator<Item = u8>>(iter: I) -> Bytes {
        Bytes {
            data: iter.into_iter().collect::<Vec<u8>>().into(),
        }
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self.data[..] == other.data[..]
    }
}
impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        &self.data[..] == other
    }
}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Bytes) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Bytes {
    fn cmp(&self, other: &Bytes) -> std::cmp::Ordering {
        self.data.cmp(&other.data)
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.data.hash(state);
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.data.iter() {
            for c in std::ascii::escape_default(b) {
                write!(f, "{}", c as char)?;
            }
        }
        write!(f, "\"")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_round_trips() {
        assert_eq!(Bytes::from(vec![1, 2, 3]).to_vec(), vec![1, 2, 3]);
        assert_eq!(&Bytes::from_static(b"abc")[..], b"abc");
        assert_eq!(&Bytes::copy_from_slice(b"xy")[..], b"xy");
        assert_eq!(&Bytes::from("hi")[..], b"hi");
        assert!(Bytes::new().is_empty());
    }

    #[test]
    fn clone_is_cheap_and_equal() {
        let a = Bytes::from(vec![9u8; 1024]);
        let b = a.clone();
        assert_eq!(a, b);
        assert_eq!(a.len(), 1024);
    }

    #[test]
    fn slice_extracts_range() {
        let a = Bytes::from_static(b"hello world");
        assert_eq!(&a.slice(6..)[..], b"world");
        assert_eq!(&a.slice(..5)[..], b"hello");
    }
}
