//! Offline stand-in for the `rand` crate (0.8-compatible surface).
//!
//! The workspace builds in a container with no crates.io access, so the
//! external dependencies are vendored as minimal API-compatible stubs. This
//! one provides the subset of `rand` the workspace uses: [`rngs::SmallRng`]
//! (an xoshiro256**-based deterministic generator), the [`Rng`] /
//! [`SeedableRng`] traits with `gen`, `gen_range`, and `gen_bool`, and
//! [`seq::SliceRandom`] with `choose` and `shuffle`.
//!
//! Determinism matters more than statistical perfection here: every
//! simulation seed must replay identically, which this implementation
//! guarantees (the stream depends only on the seed).
#![allow(clippy::all)] // vendored stand-in for an external crate

pub mod rngs {
    /// A small, fast, deterministic PRNG (xoshiro256** core seeded via
    /// SplitMix64, like the real `SmallRng` on 64-bit platforms).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        pub(crate) s: [u64; 4],
    }

    impl SmallRng {
        pub(crate) fn next_raw(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl crate::SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> SmallRng {
            // SplitMix64 expansion of the 64-bit seed into full state.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E3779B97F4A7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                z ^ (z >> 31)
            };
            SmallRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl crate::RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            self.next_raw()
        }
    }
}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator deterministically from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// The raw entropy source.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing sampling methods (blanket-implemented over [`RngCore`]).
pub trait Rng: RngCore {
    /// Samples a uniform value of type `T`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Samples uniformly from a range (`a..b` or `a..=b`).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore> Rng for R {}

/// Types that can be sampled uniformly over their natural domain.
pub trait Standard {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}
impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}
impl Standard for u16 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u16 {
        (rng.next_u64() >> 48) as u16
    }
}
impl Standard for u8 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u8 {
        (rng.next_u64() >> 56) as u8
    }
}
impl Standard for i64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> i64 {
        rng.next_u64() as i64
    }
}
impl Standard for i32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> i32 {
        (rng.next_u64() >> 32) as i32
    }
}
impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}
impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 uniform bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}
impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges a value can be sampled from.
pub trait SampleRange<T> {
    /// Draws one value inside the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Rejection-free bounded sampling via 128-bit multiply (Lemire); the tiny
/// modulo bias is irrelevant for simulation workloads.
fn bounded_u64<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    ((rng.next_u64() as u128 * bound as u128) >> 64) as u64
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + bounded_u64(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t;
                }
                (start as i128 + bounded_u64(rng, span as u64) as i128) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

impl SampleRange<f32> for std::ops::Range<f32> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f32::sample(rng) * (self.end - self.start)
    }
}

impl SampleRange<f64> for std::ops::RangeInclusive<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "cannot sample empty range");
        start + f64::sample(rng) * (end - start)
    }
}

impl SampleRange<f32> for std::ops::RangeInclusive<f32> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "cannot sample empty range");
        start + f32::sample(rng) * (end - start)
    }
}

pub mod seq {
    use crate::{bounded_u64, RngCore};

    /// Slice extensions: random choice and in-place shuffle.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Returns a uniformly chosen element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[bounded_u64(rng, self.len() as u64) as usize])
            }
        }

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = bounded_u64(rng, i as u64 + 1) as usize;
                self.swap(i, j);
            }
        }
    }
}

/// Prelude mirroring `rand::prelude`.
pub mod prelude {
    pub use crate::rngs::SmallRng;
    pub use crate::seq::SliceRandom;
    pub use crate::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn determinism_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v: u64 = rng.gen_range(10..20);
            assert!((10..20).contains(&v));
            let w: u64 = rng.gen_range(5..=5);
            assert_eq!(w, 5);
            let f: f64 = rng.gen_range(0.25..0.75);
            assert!((0.25..0.75).contains(&f));
            let x: i32 = rng.gen_range(-5..5);
            assert!((-5..5).contains(&x));
        }
    }

    #[test]
    fn unit_float_in_half_open_interval() {
        let mut rng = SmallRng::seed_from_u64(2);
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for _ in 0..10_000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
            lo = lo.min(f);
            hi = hi.max(f);
        }
        assert!(lo < 0.05 && hi > 0.95, "poor coverage: [{lo}, {hi}]");
    }

    #[test]
    fn choose_and_shuffle() {
        let mut rng = SmallRng::seed_from_u64(3);
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
        let items = [1, 2, 3, 4];
        for _ in 0..50 {
            assert!(items.contains(items.choose(&mut rng).unwrap()));
        }
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(
            v, sorted,
            "a 50-element shuffle virtually never is identity"
        );
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = SmallRng::seed_from_u64(4);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_700..3_300).contains(&hits), "got {hits}");
    }
}
