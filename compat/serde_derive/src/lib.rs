//! Offline stand-in for `serde_derive`.
//!
//! Generates `Serialize` / `Deserialize` impls targeting the value-tree
//! traits of the vendored `serde` stub. Written against `proc_macro`
//! directly (no `syn`/`quote`, which are unavailable offline): the input is
//! token-walked into a small AST, and the impl is emitted by formatting a
//! code string and re-parsing it into a `TokenStream`.
//!
//! Supported shapes (everything the workspace derives):
//!
//! * structs with named fields, including `#[serde(default)]` fields;
//! * enums with unit, tuple, and struct variants, using serde's default
//!   externally tagged JSON representation.
//!
//! Generics, tuple structs, and other serde attributes are rejected with a
//! compile error rather than silently mis-handled.
#![allow(clippy::all)] // vendored stand-in for an external crate

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
struct Field {
    name: String,
    default: bool,
}

#[derive(Debug)]
enum Shape {
    Struct(Vec<Field>),
    Enum(Vec<Variant>),
}

#[derive(Debug)]
struct Variant {
    name: String,
    kind: VariantKind,
}

#[derive(Debug)]
enum VariantKind {
    Unit,
    Tuple(usize),
    Struct(Vec<Field>),
}

/// Derives `serde::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, gen_serialize)
}

/// Derives `serde::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, gen_deserialize)
}

fn expand(input: TokenStream, gen: fn(&str, &Shape) -> String) -> TokenStream {
    match parse_input(input) {
        Ok((name, shape)) => gen(&name, &shape).parse().expect("generated impl parses"),
        Err(msg) => format!("compile_error!({msg:?});").parse().unwrap(),
    }
}

// ---------------------------------------------------------------- parsing

fn parse_input(input: TokenStream) -> Result<(String, Shape), String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0usize;
    // Skip outer attributes and visibility.
    loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => i += 2,
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
            _ => break,
        }
    }
    let kind = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected struct/enum, got {other:?}")),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected type name, got {other:?}")),
    };
    i += 1;
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            return Err(format!(
                "serde stub derive: generics unsupported on `{name}`"
            ));
        }
    }
    let body = match tokens.get(i) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
        other => {
            return Err(format!(
                "serde stub derive: `{name}` must have a brace-delimited body, got {other:?}"
            ))
        }
    };
    let shape = match kind.as_str() {
        "struct" => Shape::Struct(parse_fields(body)?),
        "enum" => Shape::Enum(parse_variants(body)?),
        other => return Err(format!("cannot derive for `{other}`")),
    };
    Ok((name, shape))
}

/// Parses `name: Type, ...` fields, recording `#[serde(default)]`.
fn parse_fields(body: TokenStream) -> Result<Vec<Field>, String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        let mut default = false;
        // Attributes.
        while let Some(TokenTree::Punct(p)) = tokens.get(i) {
            if p.as_char() != '#' {
                break;
            }
            if let Some(TokenTree::Group(g)) = tokens.get(i + 1) {
                if attr_is_serde_default(&g.stream()) {
                    default = true;
                }
            }
            i += 2;
        }
        // Visibility.
        if let Some(TokenTree::Ident(id)) = tokens.get(i) {
            if id.to_string() == "pub" {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
        }
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => return Err(format!("expected field name, got {other:?}")),
        };
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => return Err(format!("expected ':' after `{name}`, got {other:?}")),
        }
        // Skip the type: consume until a top-level comma (tracking angle
        // bracket depth so `BTreeMap<String, V>` does not split early).
        let mut angle = 0i32;
        while let Some(tok) = tokens.get(i) {
            if let TokenTree::Punct(p) = tok {
                match p.as_char() {
                    '<' => angle += 1,
                    '>' => angle -= 1,
                    ',' if angle == 0 => {
                        i += 1;
                        break;
                    }
                    _ => {}
                }
            }
            i += 1;
        }
        fields.push(Field { name, default });
    }
    Ok(fields)
}

fn attr_is_serde_default(stream: &TokenStream) -> bool {
    let tokens: Vec<TokenTree> = stream.clone().into_iter().collect();
    match (tokens.first(), tokens.get(1)) {
        (Some(TokenTree::Ident(id)), Some(TokenTree::Group(g))) if id.to_string() == "serde" => g
            .stream()
            .into_iter()
            .any(|t| matches!(&t, TokenTree::Ident(i) if i.to_string() == "default")),
        _ => false,
    }
}

fn parse_variants(body: TokenStream) -> Result<Vec<Variant>, String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        // Attributes (doc comments etc.).
        while let Some(TokenTree::Punct(p)) = tokens.get(i) {
            if p.as_char() != '#' {
                break;
            }
            i += 2;
        }
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => return Err(format!("expected variant name, got {other:?}")),
        };
        i += 1;
        let kind = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                VariantKind::Tuple(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                VariantKind::Struct(parse_fields(g.stream())?)
            }
            _ => VariantKind::Unit,
        };
        // Skip to the separating comma.
        while let Some(tok) = tokens.get(i) {
            i += 1;
            if matches!(tok, TokenTree::Punct(p) if p.as_char() == ',') {
                break;
            }
        }
        variants.push(Variant { name, kind });
    }
    Ok(variants)
}

/// Counts the comma-separated types in a tuple variant's parentheses.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 1usize;
    let mut angle = 0i32;
    let mut saw_tokens_since_comma = true;
    for tok in &tokens {
        if let TokenTree::Punct(p) = tok {
            match p.as_char() {
                '<' => angle += 1,
                '>' => angle -= 1,
                ',' if angle == 0 => {
                    count += 1;
                    saw_tokens_since_comma = false;
                    continue;
                }
                _ => {}
            }
        }
        saw_tokens_since_comma = true;
    }
    // Trailing comma does not add a field.
    if !saw_tokens_since_comma {
        count -= 1;
    }
    count
}

// ------------------------------------------------------------- generation

fn gen_serialize(name: &str, shape: &Shape) -> String {
    let body = match shape {
        Shape::Struct(fields) => {
            let mut b = String::from("let mut m = ::std::collections::BTreeMap::new();\n");
            for f in fields {
                b.push_str(&format!(
                    "m.insert(::std::string::String::from(\"{n}\"), \
                     ::serde::Serialize::serialize_value(&self.{n}));\n",
                    n = f.name
                ));
            }
            b.push_str("::serde::Value::Object(m)");
            b
        }
        Shape::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                match &v.kind {
                    VariantKind::Unit => arms.push_str(&format!(
                        "{name}::{v} => ::serde::Value::String(\
                         ::std::string::String::from(\"{v}\")),\n",
                        v = v.name
                    )),
                    VariantKind::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
                        let inner = if *n == 1 {
                            "::serde::Serialize::serialize_value(f0)".to_string()
                        } else {
                            let items: Vec<String> = binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::serialize_value({b})"))
                                .collect();
                            format!("::serde::Value::Array(vec![{}])", items.join(", "))
                        };
                        arms.push_str(&format!(
                            "{name}::{v}({binds}) => {{\
                             let mut m = ::std::collections::BTreeMap::new();\
                             m.insert(::std::string::String::from(\"{v}\"), {inner});\
                             ::serde::Value::Object(m) }}\n",
                            v = v.name,
                            binds = binds.join(", ")
                        ));
                    }
                    VariantKind::Struct(fields) => {
                        let binds: Vec<&str> = fields.iter().map(|f| f.name.as_str()).collect();
                        let mut inner =
                            String::from("let mut fm = ::std::collections::BTreeMap::new();\n");
                        for f in fields {
                            inner.push_str(&format!(
                                "fm.insert(::std::string::String::from(\"{n}\"), \
                                 ::serde::Serialize::serialize_value({n}));\n",
                                n = f.name
                            ));
                        }
                        arms.push_str(&format!(
                            "{name}::{v} {{ {binds} }} => {{\
                             {inner}\
                             let mut m = ::std::collections::BTreeMap::new();\
                             m.insert(::std::string::String::from(\"{v}\"), \
                             ::serde::Value::Object(fm));\
                             ::serde::Value::Object(m) }}\n",
                            v = v.name,
                            binds = binds.join(", ")
                        ));
                    }
                }
            }
            format!("match self {{\n{arms}}}")
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn serialize_value(&self) -> ::serde::Value {{\n{body}\n}}\n}}"
    )
}

fn gen_deserialize(name: &str, shape: &Shape) -> String {
    let body = match shape {
        Shape::Struct(fields) => {
            let mut b = format!(
                "let m = v.as_object().ok_or_else(|| \
                 format!(\"{name}: expected object, got {{v:?}}\"))?;\n\
                 ::std::result::Result::Ok({name} {{\n"
            );
            for f in fields {
                b.push_str(&gen_field_init(name, &f.name, "m", f.default));
            }
            b.push_str("})");
            b
        }
        Shape::Enum(variants) => {
            let mut unit_arms = String::new();
            let mut tagged_arms = String::new();
            for v in variants {
                match &v.kind {
                    VariantKind::Unit => unit_arms.push_str(&format!(
                        "\"{v}\" => return ::std::result::Result::Ok({name}::{v}),\n",
                        v = v.name
                    )),
                    VariantKind::Tuple(n) => {
                        let build = if *n == 1 {
                            format!(
                                "{name}::{v}(::serde::Deserialize::deserialize_value(inner)?)",
                                v = v.name
                            )
                        } else {
                            let items: Vec<String> = (0..*n)
                                .map(|i| {
                                    format!(
                                        "::serde::Deserialize::deserialize_value(\
                                         arr.get({i}).unwrap_or(&::serde::Value::Null))?"
                                    )
                                })
                                .collect();
                            format!(
                                "{{ let arr = inner.as_array().ok_or_else(|| \
                                 format!(\"{name}::{v}: expected array\"))?;\n\
                                 {name}::{v}({items}) }}",
                                v = v.name,
                                items = items.join(", ")
                            )
                        };
                        tagged_arms.push_str(&format!(
                            "\"{v}\" => return ::std::result::Result::Ok({build}),\n",
                            v = v.name
                        ));
                    }
                    VariantKind::Struct(fields) => {
                        let mut inits = String::new();
                        for f in fields {
                            inits.push_str(&gen_field_init(name, &f.name, "fm", f.default));
                        }
                        tagged_arms.push_str(&format!(
                            "\"{v}\" => {{ let fm = inner.as_object().ok_or_else(|| \
                             format!(\"{name}::{v}: expected object\"))?;\n\
                             return ::std::result::Result::Ok({name}::{v} {{ {inits} }}); }}\n",
                            v = v.name
                        ));
                    }
                }
            }
            format!(
                "if let ::serde::Value::String(s) = v {{\n\
                 match s.as_str() {{\n{unit_arms}\
                 _ => return ::std::result::Result::Err(\
                 format!(\"{name}: unknown variant `{{s}}`\")) }}\n}}\n\
                 if let Some(m) = v.as_object() {{\n\
                 if m.len() == 1 {{\n\
                 let (tag, inner) = m.iter().next().expect(\"len 1\");\n\
                 match tag.as_str() {{\n{tagged_arms}\
                 _ => return ::std::result::Result::Err(\
                 format!(\"{name}: unknown variant `{{tag}}`\")) }}\n}}\n}}\n\
                 ::std::result::Result::Err(format!(\"{name}: cannot deserialize {{v:?}}\"))"
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
         fn deserialize_value(v: &::serde::Value) -> \
         ::std::result::Result<Self, ::std::string::String> {{\n{body}\n}}\n}}"
    )
}

fn gen_field_init(ty: &str, field: &str, map: &str, default: bool) -> String {
    if default {
        format!(
            "{field}: match {map}.get(\"{field}\") {{\n\
             Some(x) => ::serde::Deserialize::deserialize_value(x)?,\n\
             None => ::std::default::Default::default(),\n}},\n"
        )
    } else {
        format!(
            "{field}: match {map}.get(\"{field}\") {{\n\
             Some(x) => ::serde::Deserialize::deserialize_value(x)?,\n\
             None => return ::std::result::Result::Err(\
             ::std::string::String::from(\"{ty}: missing field `{field}`\")),\n}},\n"
        )
    }
}
