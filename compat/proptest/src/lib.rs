//! Offline stand-in for `proptest`.
//!
//! Provides the strategy combinators and macros the workspace's property
//! tests use, built on the vendored deterministic `rand` stub. Differences
//! from real proptest, deliberately accepted for an offline test container:
//!
//! * **No shrinking.** A failing case panics with its case index and seed;
//!   the seed replays the exact inputs, which is enough to debug.
//! * **Regex strategies** support the subset the tests use: literals,
//!   character classes (with ranges and `\xHH` escapes), groups, and
//!   `{m,n}` / `{n}` repetition.
//! * Cases are generated from a fixed per-test seed, so runs are fully
//!   deterministic rather than OS-entropy seeded.
#![allow(clippy::all)] // vendored stand-in for an external crate

use rand::prelude::*;

/// The RNG driving all strategies.
pub type TestRng = rand::rngs::SmallRng;

/// A generator of test values.
pub trait Strategy {
    /// The value type this strategy produces.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Erases the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(move |rng| self.generate(rng)))
    }
}

/// A type-erased strategy (a boxed generator closure; no shrink tree).
pub struct BoxedStrategy<T>(Box<dyn Fn(&mut TestRng) -> T>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

/// The result of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy for any value of `T`'s natural domain (via `rand`'s `Standard`).
pub struct Any<T>(std::marker::PhantomData<T>);

/// Returns the [`Any`] strategy for `T`.
pub fn any<T: rand::Standard>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: rand::Standard> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        rng.gen()
    }
}

macro_rules! range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64, f32);

macro_rules! tuple_strategies {
    ($(($($s:ident / $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategies! {
    (A/0)
    (A/0, B/1)
    (A/0, B/1, C/2)
    (A/0, B/1, C/2, D/3)
    (A/0, B/1, C/2, D/3, E/4)
    (A/0, B/1, C/2, D/3, E/4, F/5)
}

/// A uniform choice over type-erased alternatives (the `prop_oneof!` shape).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Builds a union; panics if empty.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Union<T> {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let idx = rng.gen_range(0..self.options.len());
        self.options[idx].generate(rng)
    }
}

// ------------------------------------------------------------------ regex

/// `&str` literals are regex strategies producing matching strings.
impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let nodes =
            regex::parse(self).unwrap_or_else(|e| panic!("unsupported test regex {self:?}: {e}"));
        let mut out = String::new();
        regex::emit(&nodes, rng, &mut out);
        out
    }
}

mod regex {
    use super::TestRng;
    use rand::Rng;

    pub struct Node {
        pub kind: Kind,
        pub min: u32,
        pub max: u32,
    }

    pub enum Kind {
        Lit(char),
        /// Inclusive char ranges; single chars are `(c, c)`.
        Class(Vec<(char, char)>),
        Group(Vec<Node>),
    }

    pub fn parse(pattern: &str) -> Result<Vec<Node>, String> {
        let chars: Vec<char> = pattern.chars().collect();
        let mut pos = 0usize;
        let nodes = parse_seq(&chars, &mut pos, false)?;
        if pos != chars.len() {
            return Err(format!("unexpected `{}` at {pos}", chars[pos]));
        }
        Ok(nodes)
    }

    fn parse_seq(c: &[char], pos: &mut usize, in_group: bool) -> Result<Vec<Node>, String> {
        let mut nodes = Vec::new();
        while let Some(&ch) = c.get(*pos) {
            let kind = match ch {
                ')' if in_group => break,
                '(' => {
                    *pos += 1;
                    let inner = parse_seq(c, pos, true)?;
                    if c.get(*pos) != Some(&')') {
                        return Err("unbalanced group".to_string());
                    }
                    *pos += 1;
                    Kind::Group(inner)
                }
                '[' => {
                    *pos += 1;
                    Kind::Class(parse_class(c, pos)?)
                }
                '\\' => {
                    *pos += 1;
                    Kind::Lit(parse_escape(c, pos)?)
                }
                '.' => {
                    *pos += 1;
                    // Printable ASCII, close enough for generation.
                    Kind::Class(vec![(' ', '~')])
                }
                other => {
                    *pos += 1;
                    Kind::Lit(other)
                }
            };
            let (min, max) = parse_rep(c, pos)?;
            nodes.push(Node { kind, min, max });
        }
        Ok(nodes)
    }

    fn parse_class(c: &[char], pos: &mut usize) -> Result<Vec<(char, char)>, String> {
        let mut ranges = Vec::new();
        loop {
            let lo = match c.get(*pos) {
                None => return Err("unterminated class".to_string()),
                Some(']') => {
                    *pos += 1;
                    return Ok(ranges);
                }
                Some('\\') => {
                    *pos += 1;
                    parse_escape(c, pos)?
                }
                Some(&ch) => {
                    *pos += 1;
                    ch
                }
            };
            if c.get(*pos) == Some(&'-') && c.get(*pos + 1).is_some_and(|&n| n != ']') {
                *pos += 1;
                let hi = match c.get(*pos) {
                    Some('\\') => {
                        *pos += 1;
                        parse_escape(c, pos)?
                    }
                    Some(&ch) => {
                        *pos += 1;
                        ch
                    }
                    None => return Err("unterminated range".to_string()),
                };
                if hi < lo {
                    return Err(format!("inverted range {lo:?}-{hi:?}"));
                }
                ranges.push((lo, hi));
            } else {
                ranges.push((lo, lo));
            }
        }
    }

    fn parse_escape(c: &[char], pos: &mut usize) -> Result<char, String> {
        let Some(&ch) = c.get(*pos) else {
            return Err("dangling escape".to_string());
        };
        *pos += 1;
        Ok(match ch {
            'n' => '\n',
            'r' => '\r',
            't' => '\t',
            '0' => '\0',
            'x' => {
                let hex: String = c
                    .get(*pos..*pos + 2)
                    .ok_or("truncated \\x")?
                    .iter()
                    .collect();
                *pos += 2;
                let v = u8::from_str_radix(&hex, 16).map_err(|e| format!("bad \\x: {e}"))?;
                v as char
            }
            other => other, // \\, \., \[, \( ...
        })
    }

    fn parse_rep(c: &[char], pos: &mut usize) -> Result<(u32, u32), String> {
        match c.get(*pos) {
            Some('{') => {
                *pos += 1;
                let mut min = String::new();
                while c.get(*pos).is_some_and(|ch| ch.is_ascii_digit()) {
                    min.push(c[*pos]);
                    *pos += 1;
                }
                let min: u32 = min.parse().map_err(|e| format!("bad repetition: {e}"))?;
                let max = if c.get(*pos) == Some(&',') {
                    *pos += 1;
                    let mut max = String::new();
                    while c.get(*pos).is_some_and(|ch| ch.is_ascii_digit()) {
                        max.push(c[*pos]);
                        *pos += 1;
                    }
                    max.parse().map_err(|e| format!("bad repetition: {e}"))?
                } else {
                    min
                };
                if c.get(*pos) != Some(&'}') {
                    return Err("unterminated repetition".to_string());
                }
                *pos += 1;
                Ok((min, max))
            }
            Some('*') => {
                *pos += 1;
                Ok((0, 8))
            }
            Some('+') => {
                *pos += 1;
                Ok((1, 8))
            }
            Some('?') => {
                *pos += 1;
                Ok((0, 1))
            }
            _ => Ok((1, 1)),
        }
    }

    pub fn emit(nodes: &[Node], rng: &mut TestRng, out: &mut String) {
        for node in nodes {
            let reps = rng.gen_range(node.min..=node.max);
            for _ in 0..reps {
                match &node.kind {
                    Kind::Lit(c) => out.push(*c),
                    Kind::Class(ranges) => {
                        let total: u32 = ranges
                            .iter()
                            .map(|(lo, hi)| *hi as u32 - *lo as u32 + 1)
                            .sum();
                        let mut idx = rng.gen_range(0..total);
                        for (lo, hi) in ranges {
                            let span = *hi as u32 - *lo as u32 + 1;
                            if idx < span {
                                out.push(char::from_u32(*lo as u32 + idx).unwrap_or('?'));
                                break;
                            }
                            idx -= span;
                        }
                    }
                    Kind::Group(inner) => emit(inner, rng, out),
                }
            }
        }
    }
}

// ------------------------------------------------------------- collections

/// `prop::collection` equivalents.
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;

    /// A strategy producing vectors of `inner`-generated elements.
    pub struct VecStrategy<S> {
        inner: S,
        size: std::ops::Range<usize>,
    }

    /// Generates vectors with lengths drawn from `size`.
    pub fn vec<S: Strategy>(inner: S, size: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { inner, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = if self.size.start + 1 >= self.size.end {
                self.size.start
            } else {
                rng.gen_range(self.size.clone())
            };
            (0..len).map(|_| self.inner.generate(rng)).collect()
        }
    }
}

/// Namespace alias matching `proptest::prelude::prop`.
pub mod prop {
    pub use crate::collection;
}

// ------------------------------------------------------------------ runner

/// Test-runner configuration (`ProptestConfig`).
pub mod test_runner {
    /// How many cases to run, and (ignored) shrink settings.
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of generated cases per test.
        pub cases: u32,
    }

    impl Config {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> Config {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Config {
            Config { cases: 256 }
        }
    }

    /// Runs `f` for each case with a deterministic per-test RNG. Panics with
    /// the case index and seed on the first failure (no shrinking).
    pub fn run(
        config: &Config,
        name: &str,
        mut f: impl FnMut(&mut super::TestRng) -> Result<(), String>,
    ) {
        use rand::SeedableRng;
        let base = fnv1a(name.as_bytes());
        for case in 0..config.cases {
            let seed = base ^ (case as u64).wrapping_mul(0x9E3779B97F4A7C15);
            let mut rng = super::TestRng::seed_from_u64(seed);
            if let Err(msg) = f(&mut rng) {
                panic!("proptest `{name}` failed at case {case} (seed {seed:#x}): {msg}");
            }
        }
    }

    fn fnv1a(bytes: &[u8]) -> u64 {
        let mut h = 0xcbf29ce484222325u64;
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        h
    }
}

pub use test_runner::Config as ProptestConfig;

// ------------------------------------------------------------------ macros

/// Declares property tests (stub of `proptest::proptest!`).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[macro_export]
macro_rules! __proptest_tests {
    (($cfg:expr) $($(#[$meta:meta])* fn $name:ident(
        $($arg:ident in $strat:expr),+ $(,)?
    ) $body:block)*) => {$(
        $(#[$meta])*
        fn $name() {
            let config = $cfg;
            $crate::test_runner::run(&config, stringify!($name), |__rng| {
                $(let $arg = $crate::Strategy::generate(&($strat), __rng);)+
                let __case = || -> ::std::result::Result<(), ::std::string::String> {
                    $body
                    ::std::result::Result::Ok(())
                };
                __case()
            });
        }
    )*};
}

/// Uniformly chooses between strategy alternatives.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strat)),+])
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err(
                format!("assertion failed: {}", stringify!($cond)));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(format!($($fmt)+));
        }
    };
}

/// Fails the current case unless both sides are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return ::std::result::Result::Err(
                format!("assertion failed: `{} == {}`\n  left: {l:?}\n right: {r:?}",
                        stringify!($left), stringify!($right)));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return ::std::result::Result::Err(
                format!("{}\n  left: {l:?}\n right: {r:?}", format!($($fmt)+)));
        }
    }};
}

/// Fails the current case if both sides are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if l == r {
            return ::std::result::Result::Err(
                format!("assertion failed: `{} != {}`\n  both: {l:?}",
                        stringify!($left), stringify!($right)));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if l == r {
            return ::std::result::Result::Err(
                format!("{}\n  both: {l:?}", format!($($fmt)+)));
        }
    }};
}

/// Prelude mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{any, prop, BoxedStrategy, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn regex_strategies_match_shape() {
        use rand::SeedableRng;
        let mut rng = crate::TestRng::seed_from_u64(1);
        for _ in 0..200 {
            let s = crate::Strategy::generate(&"[a-z]{1,10}", &mut rng);
            assert!((1..=10).contains(&s.len()), "{s:?}");
            assert!(s.chars().all(|c| c.is_ascii_lowercase()));

            let s = crate::Strategy::generate(&"([a-c]{0,6}\n){0,12}", &mut rng);
            assert!(s
                .lines()
                .all(|l| l.len() <= 6 && l.chars().all(|c| ('a'..='c').contains(&c))));

            let s = crate::Strategy::generate(&"[\\x00-\\x7f]{0,12}", &mut rng);
            assert!(s.chars().count() <= 12);
            assert!(s.chars().all(|c| (c as u32) < 0x80));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn macro_pipeline_works(v in prop::collection::vec(0u8..10, 0..5), s in "[a-z]{0,4}") {
            prop_assert!(v.len() < 5);
            prop_assert!(v.iter().all(|&x| x < 10));
            prop_assert!(s.len() <= 4);
            prop_assert_eq!(v.len(), v.len());
            prop_assert_ne!(v.len(), v.len() + 1);
        }
    }

    #[test]
    fn oneof_and_map() {
        use rand::SeedableRng;
        let strat = prop_oneof![
            (0u8..3).prop_map(|v| v as u32),
            (10u8..13).prop_map(|v| v as u32),
        ];
        let mut rng = crate::TestRng::seed_from_u64(9);
        let mut seen_low = false;
        let mut seen_high = false;
        for _ in 0..100 {
            let v = crate::Strategy::generate(&strat, &mut rng);
            assert!((0..3).contains(&v) || (10..13).contains(&v));
            seen_low |= v < 3;
            seen_high |= v >= 10;
        }
        assert!(seen_low && seen_high);
    }
}
