//! Offline stand-in for `criterion`.
//!
//! Mirrors the API surface the workspace's benches use (`Criterion`,
//! benchmark groups, `iter` / `iter_batched`, `BenchmarkId`, `Throughput`)
//! with a simple fixed-budget timing loop instead of criterion's statistical
//! machinery: each benchmark warms up briefly, then runs for a small wall
//! clock budget and prints the mean iteration time. Good enough to keep
//! `cargo bench` compiling and producing indicative numbers offline.
#![allow(clippy::all)] // vendored stand-in for an external crate

use std::time::{Duration, Instant};

const WARMUP: Duration = Duration::from_millis(50);
const MEASURE: Duration = Duration::from_millis(300);

/// The top-level benchmark driver.
pub struct Criterion {
    _private: (),
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion { _private: () }
    }
}

impl Criterion {
    /// Runs a standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Display2,
        mut f: F,
    ) -> &mut Self {
        run_one(&id.render(), &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            _parent: self,
        }
    }

    /// Finalizes the run (matching criterion's API; nothing to aggregate).
    pub fn final_summary(&mut self) {}
}

/// A named set of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the stub's budget is fixed.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; throughput is not reported.
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Runs a benchmark inside the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Display2,
        mut f: F,
    ) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id.render()), &mut f);
        self
    }

    /// Runs a benchmark parameterized by `input`.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let name = format!("{}/{}", self.name, id.render());
        let mut b = Bencher::default();
        f(&mut b, input); // warmup-discovery call
        b.report(&name);
        self
    }

    /// Closes the group.
    pub fn finish(self) {}
}

/// Identifies a benchmark within a group.
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// An id rendered from a single parameter.
    pub fn from_parameter(p: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId {
            text: p.to_string(),
        }
    }

    /// An id with a function name and a parameter.
    pub fn new(name: impl std::fmt::Display, p: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId {
            text: format!("{name}/{p}"),
        }
    }

    fn render(&self) -> String {
        self.text.clone()
    }
}

/// Either a `BenchmarkId` or anything displayable can name a benchmark.
pub trait Display2 {
    /// The display text.
    fn render(&self) -> String;
}

impl Display2 for BenchmarkId {
    fn render(&self) -> String {
        self.text.clone()
    }
}

impl Display2 for &str {
    fn render(&self) -> String {
        (*self).to_string()
    }
}

impl Display2 for String {
    fn render(&self) -> String {
        self.clone()
    }
}

/// Declared throughput of one iteration (accepted, not reported).
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// How batched setup output is sized (accepted, not used).
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per batch.
    PerIteration,
}

/// Drives the measured closure.
#[derive(Default)]
pub struct Bencher {
    iters: u64,
    total: Duration,
}

impl Bencher {
    /// Times `f` repeatedly under the fixed budget.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warmup.
        let start = Instant::now();
        while start.elapsed() < WARMUP {
            std::hint::black_box(f());
        }
        // Measure.
        let start = Instant::now();
        let mut iters = 0u64;
        while start.elapsed() < MEASURE {
            std::hint::black_box(f());
            iters += 1;
        }
        self.iters += iters;
        self.total += start.elapsed();
    }

    /// Times `routine` over fresh `setup` outputs, excluding setup time.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let warm_start = Instant::now();
        while warm_start.elapsed() < WARMUP {
            let input = setup();
            std::hint::black_box(routine(input));
        }
        let mut measured = Duration::ZERO;
        let mut iters = 0u64;
        let start = Instant::now();
        while start.elapsed() < MEASURE {
            let input = setup();
            let t = Instant::now();
            std::hint::black_box(routine(input));
            measured += t.elapsed();
            iters += 1;
        }
        self.iters += iters;
        self.total += measured;
    }

    fn report(&self, name: &str) {
        if self.iters == 0 {
            println!("{name}: no iterations recorded");
            return;
        }
        let mean = self.total.as_nanos() as f64 / self.iters as f64;
        println!("{name}: {} iters, mean {}", self.iters, fmt_ns(mean));
    }
}

fn run_one<F: FnMut(&mut Bencher)>(name: &str, f: &mut F) {
    let mut b = Bencher::default();
    f(&mut b);
    b.report(name);
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// Declares a group of benchmark functions (stub of `criterion_group!`).
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares the benchmark entry point (stub of `criterion_main!`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_iterations() {
        let mut b = Bencher::default();
        b.iter(|| 1 + 1);
        assert!(b.iters > 0);
    }
}
