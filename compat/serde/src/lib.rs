//! Offline stand-in for `serde` (value-tree flavoured).
//!
//! The workspace builds in a container with no crates.io access, so the
//! external dependencies are vendored as minimal API-compatible stubs.
//! Instead of serde's zero-copy visitor architecture, this stub serializes
//! through an owned JSON [`Value`] tree: [`Serialize`] renders `Self` into a
//! `Value`, [`Deserialize`] rebuilds `Self` from one. The derive macros
//! (re-exported from `serde_derive`) generate externally tagged enum
//! representations matching real serde's default, so JSON produced by the
//! stub round-trips the same way.
#![allow(clippy::all)] // vendored stand-in for an external crate

pub use serde_derive::{Deserialize, Serialize};

pub mod value;

pub use value::{Number, Value};

/// Types renderable into a JSON [`Value`].
pub trait Serialize {
    /// Renders `self` as a value tree.
    fn serialize_value(&self) -> Value;
}

/// Types rebuildable from a JSON [`Value`].
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from a value tree.
    fn deserialize_value(v: &Value) -> Result<Self, String>;
}

macro_rules! int_impls {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_value(&self) -> Value {
                Value::Number(Number::from_i64(*self as i64))
            }
        }
        impl Deserialize for $t {
            fn deserialize_value(v: &Value) -> Result<$t, String> {
                match v {
                    Value::Number(n) => Ok(n.as_f64() as $t),
                    _ => Err(format!("expected number, got {v:?}")),
                }
            }
        }
    )*};
}

int_impls!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_impls {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_value(&self) -> Value {
                Value::Number(Number::from_f64(*self as f64))
            }
        }
        impl Deserialize for $t {
            fn deserialize_value(v: &Value) -> Result<$t, String> {
                match v {
                    Value::Number(n) => Ok(n.as_f64() as $t),
                    _ => Err(format!("expected number, got {v:?}")),
                }
            }
        }
    )*};
}

float_impls!(f32, f64);

impl Serialize for bool {
    fn serialize_value(&self) -> Value {
        Value::Bool(*self)
    }
}
impl Deserialize for bool {
    fn deserialize_value(v: &Value) -> Result<bool, String> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(format!("expected bool, got {v:?}")),
        }
    }
}

impl Serialize for String {
    fn serialize_value(&self) -> Value {
        Value::String(self.clone())
    }
}
impl Deserialize for String {
    fn deserialize_value(v: &Value) -> Result<String, String> {
        match v {
            Value::String(s) => Ok(s.clone()),
            _ => Err(format!("expected string, got {v:?}")),
        }
    }
}

impl Serialize for &str {
    fn serialize_value(&self) -> Value {
        Value::String((*self).to_string())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize_value(&self) -> Value {
        match self {
            Some(x) => x.serialize_value(),
            None => Value::Null,
        }
    }
}
impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize_value(v: &Value) -> Result<Option<T>, String> {
        match v {
            Value::Null => Ok(None),
            other => T::deserialize_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize_value).collect())
    }
}
impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize_value(v: &Value) -> Result<Vec<T>, String> {
        match v {
            Value::Array(items) => items.iter().map(T::deserialize_value).collect(),
            _ => Err(format!("expected array, got {v:?}")),
        }
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn serialize_value(&self) -> Value {
        (**self).serialize_value()
    }
}
impl<T: Deserialize> Deserialize for Box<T> {
    fn deserialize_value(v: &Value) -> Result<Box<T>, String> {
        T::deserialize_value(v).map(Box::new)
    }
}

impl<V: Serialize> Serialize for std::collections::BTreeMap<String, V> {
    fn serialize_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.serialize_value()))
                .collect(),
        )
    }
}
impl<V: Deserialize> Deserialize for std::collections::BTreeMap<String, V> {
    fn deserialize_value(v: &Value) -> Result<Self, String> {
        match v {
            Value::Object(map) => map
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::deserialize_value(v)?)))
                .collect(),
            _ => Err(format!("expected object, got {v:?}")),
        }
    }
}

impl<V: Serialize> Serialize for std::collections::HashMap<String, V> {
    fn serialize_value(&self) -> Value {
        // Sorted for deterministic output.
        let mut entries: Vec<(&String, &V)> = self.iter().collect();
        entries.sort_by(|a, b| a.0.cmp(b.0));
        Value::Object(
            entries
                .into_iter()
                .map(|(k, v)| (k.clone(), v.serialize_value()))
                .collect(),
        )
    }
}
impl<V: Deserialize> Deserialize for std::collections::HashMap<String, V> {
    fn deserialize_value(v: &Value) -> Result<Self, String> {
        match v {
            Value::Object(map) => map
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::deserialize_value(v)?)))
                .collect(),
            _ => Err(format!("expected object, got {v:?}")),
        }
    }
}

impl Serialize for Value {
    fn serialize_value(&self) -> Value {
        self.clone()
    }
}
impl Deserialize for Value {
    fn deserialize_value(v: &Value) -> Result<Value, String> {
        Ok(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trips() {
        let v = 42u32.serialize_value();
        assert_eq!(u32::deserialize_value(&v).unwrap(), 42);
        let v = (-7i64).serialize_value();
        assert_eq!(i64::deserialize_value(&v).unwrap(), -7);
        let v = true.serialize_value();
        assert!(bool::deserialize_value(&v).unwrap());
        let v = "hi".to_string().serialize_value();
        assert_eq!(String::deserialize_value(&v).unwrap(), "hi");
    }

    #[test]
    fn containers_round_trip() {
        let xs = vec![1u64, 2, 3];
        assert_eq!(
            Vec::<u64>::deserialize_value(&xs.serialize_value()).unwrap(),
            xs
        );
        let mut m = std::collections::BTreeMap::new();
        m.insert("a".to_string(), 1i64);
        assert_eq!(
            std::collections::BTreeMap::<String, i64>::deserialize_value(&m.serialize_value())
                .unwrap(),
            m
        );
        let o: Option<u32> = None;
        assert_eq!(
            Option::<u32>::deserialize_value(&o.serialize_value()).unwrap(),
            None
        );
    }
}
