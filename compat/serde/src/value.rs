//! The JSON value tree shared by the `serde` and `serde_json` stubs.

use std::collections::BTreeMap;
use std::fmt;

/// A JSON number: integer-preserving where the source text (or Rust value)
/// was integral, float otherwise. Integral and float forms compare equal
/// when they denote the same quantity, matching `serde_json` semantics
/// closely enough for the workspace's assertions.
#[derive(Debug, Clone)]
pub enum Number {
    /// An integer that fits i64.
    Int(i64),
    /// Any other finite number.
    Float(f64),
}

impl Number {
    /// Wraps an i64.
    pub fn from_i64(v: i64) -> Number {
        Number::Int(v)
    }

    /// Wraps an f64, demoting integral values to the integer form so that
    /// `2.0` and `2` compare equal after parsing either spelling.
    pub fn from_f64(v: f64) -> Number {
        if v.fract() == 0.0 && v.is_finite() && v.abs() < 9.0e15 {
            Number::Int(v as i64)
        } else {
            Number::Float(v)
        }
    }

    /// The numeric value as f64.
    pub fn as_f64(&self) -> f64 {
        match self {
            Number::Int(v) => *v as f64,
            Number::Float(v) => *v,
        }
    }

    /// The value as i64 when integral.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Number::Int(v) => Some(*v),
            Number::Float(_) => None,
        }
    }
}

impl PartialEq for Number {
    fn eq(&self, other: &Number) -> bool {
        self.as_f64() == other.as_f64()
    }
}

impl fmt::Display for Number {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Number::Int(v) => write!(f, "{v}"),
            Number::Float(v) => {
                if v.is_finite() {
                    // `{}` on f64 is the shortest round-trippable form, but
                    // always include a decimal marker so the output re-parses
                    // as a float-shaped token.
                    if v.fract() == 0.0 {
                        write!(f, "{v:.1}")
                    } else {
                        write!(f, "{v}")
                    }
                } else {
                    // JSON has no inf/nan; serde_json emits null.
                    write!(f, "null")
                }
            }
        }
    }
}

/// An owned JSON document.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number.
    Number(Number),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object (sorted keys; good enough for the workspace, which only
    /// compares whole documents and reads fields by name).
    Object(BTreeMap<String, Value>),
}

impl Value {
    /// The object form, if this is an object.
    pub fn as_object(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// The array form, if this is an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The string form, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric form as f64, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(n.as_f64()),
            _ => None,
        }
    }

    /// The numeric form as i64, if this is an integral number.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) => n.as_i64(),
            _ => None,
        }
    }

    /// The boolean form, if this is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Whether this is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Field access that returns `Null` for missing keys / wrong types,
    /// mirroring `serde_json`'s `Index` behaviour.
    pub fn get_path(&self, key: &str) -> &Value {
        static NULL: Value = Value::Null;
        match self {
            Value::Object(m) => m.get(key).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

impl std::ops::Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        self.get_path(key)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;
    fn index(&self, idx: usize) -> &Value {
        static NULL: Value = Value::Null;
        match self {
            Value::Array(a) => a.get(idx).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

impl Value {
    /// Compact JSON rendering.
    pub fn render_compact(&self) -> String {
        let mut out = String::new();
        self.render(&mut out, None, 0);
        out
    }

    /// Pretty JSON rendering (2-space indent, like `serde_json`).
    pub fn render_pretty(&self) -> String {
        let mut out = String::new();
        self.render(&mut out, Some(2), 0);
        out
    }

    fn render(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Number(n) => out.push_str(&n.to_string()),
            Value::String(s) => render_string(s, out),
            Value::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    item.render(out, indent, depth + 1);
                }
                newline_indent(out, indent, depth);
                out.push(']');
            }
            Value::Object(map) => {
                if map.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    render_string(k, out);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.render(out, indent, depth + 1);
                }
                newline_indent(out, indent, depth);
                out.push('}');
            }
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn render_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A recursive-descent JSON parser for the stub.
pub fn parse(text: &str) -> Result<Value, String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let v = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing characters at byte {pos}"));
    }
    Ok(v)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    skip_ws(b, pos);
    let Some(&c) = b.get(*pos) else {
        return Err("unexpected end of input".to_string());
    };
    match c {
        b'n' => expect_lit(b, pos, "null").map(|_| Value::Null),
        b't' => expect_lit(b, pos, "true").map(|_| Value::Bool(true)),
        b'f' => expect_lit(b, pos, "false").map(|_| Value::Bool(false)),
        b'"' => parse_string(b, pos).map(Value::String),
        b'[' => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Value::Array(items));
            }
            loop {
                items.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Value::Array(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {pos}")),
                }
            }
        }
        b'{' => {
            *pos += 1;
            let mut map = BTreeMap::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Value::Object(map));
            }
            loop {
                skip_ws(b, pos);
                let key = parse_string(b, pos)?;
                skip_ws(b, pos);
                if b.get(*pos) != Some(&b':') {
                    return Err(format!("expected ':' at byte {pos}"));
                }
                *pos += 1;
                let value = parse_value(b, pos)?;
                map.insert(key, value);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Value::Object(map));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
                }
            }
        }
        b'-' | b'0'..=b'9' => parse_number(b, pos),
        other => Err(format!("unexpected byte {:?} at {pos}", other as char)),
    }
}

fn expect_lit(b: &[u8], pos: &mut usize, lit: &str) -> Result<(), String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(format!("expected `{lit}` at byte {pos}"))
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    if b.get(*pos) != Some(&b'"') {
        return Err(format!("expected string at byte {pos}"));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        let Some(&c) = b.get(*pos) else {
            return Err("unterminated string".to_string());
        };
        *pos += 1;
        match c {
            b'"' => return Ok(out),
            b'\\' => {
                let Some(&esc) = b.get(*pos) else {
                    return Err("unterminated escape".to_string());
                };
                *pos += 1;
                match esc {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'b' => out.push('\u{8}'),
                    b'f' => out.push('\u{c}'),
                    b'u' => {
                        let hex = b
                            .get(*pos..*pos + 4)
                            .ok_or("truncated \\u escape")
                            .and_then(|h| std::str::from_utf8(h).map_err(|_| "bad \\u escape"))
                            .map_err(String::from)?;
                        let cp =
                            u32::from_str_radix(hex, 16).map_err(|e| format!("bad \\u: {e}"))?;
                        *pos += 4;
                        // Surrogate pairs: only the BMP subset the workspace
                        // emits is handled; lone surrogates become U+FFFD.
                        out.push(char::from_u32(cp).unwrap_or('\u{FFFD}'));
                    }
                    other => return Err(format!("bad escape \\{}", other as char)),
                }
            }
            c if c < 0x80 => out.push(c as char),
            _ => {
                // Multi-byte UTF-8: find the full scalar.
                let start = *pos - 1;
                let len = utf8_len(c);
                let slice = b
                    .get(start..start + len)
                    .ok_or("truncated UTF-8 sequence")?;
                let s = std::str::from_utf8(slice).map_err(|e| e.to_string())?;
                out.push_str(s);
                *pos = start + len;
            }
        }
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-') {
        *pos += 1;
    }
    let text = std::str::from_utf8(&b[start..*pos]).map_err(|e| e.to_string())?;
    if !text.contains(['.', 'e', 'E']) {
        if let Ok(i) = text.parse::<i64>() {
            return Ok(Value::Number(Number::Int(i)));
        }
    }
    text.parse::<f64>()
        .map(|f| Value::Number(Number::from_f64(f)))
        .map_err(|e| format!("bad number `{text}`: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_render_round_trip() {
        let doc = r#"{"a": [1, 2.5, "x\n", true, null], "b": {"c": -3}}"#;
        let v = parse(doc).unwrap();
        assert_eq!(v["a"][0], Value::Number(Number::Int(1)));
        assert_eq!(v["a"][2], Value::String("x\n".to_string()));
        assert_eq!(v["b"]["c"].as_i64(), Some(-3));
        assert!(v["missing"].is_null());
        let rendered = v.render_compact();
        assert_eq!(parse(&rendered).unwrap(), v);
        let pretty = v.render_pretty();
        assert_eq!(parse(&pretty).unwrap(), v);
    }

    #[test]
    fn int_and_float_forms_compare_equal() {
        assert_eq!(parse("2").unwrap(), parse("2.0").unwrap());
        assert_ne!(parse("2").unwrap(), parse("2.5").unwrap());
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("nul").is_err());
        assert!(parse("1 2").is_err());
    }

    #[test]
    fn escapes_render_safely() {
        let v = Value::String("a\"b\\c\nd\u{1}".to_string());
        let rendered = v.render_compact();
        assert_eq!(parse(&rendered).unwrap(), v);
    }

    #[test]
    fn unicode_passthrough() {
        let v = parse(r#""héllo ☃""#).unwrap();
        assert_eq!(v.as_str(), Some("héllo ☃"));
    }
}
