//! Offline stand-in for `serde_json`.
//!
//! Thin facade over the vendored `serde` stub's [`Value`] tree: serialization
//! renders `T::serialize_value()` to text, deserialization parses text into a
//! `Value` and rebuilds `T` from it. Covers the surface the workspace uses:
//! [`to_string`], [`to_string_pretty`], [`from_str`], [`to_value`],
//! [`from_value`], [`Value`] with indexing, and a scalar-friendly [`json!`]
//! macro.
#![allow(clippy::all)] // vendored stand-in for an external crate

pub use serde::value::{Number, Value};

/// Parse or conversion failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
}

impl Error {
    /// Creates an error carrying `msg`.
    pub fn new(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.msg)
    }
}

impl std::error::Error for Error {}

impl From<String> for Error {
    fn from(msg: String) -> Self {
        Error { msg }
    }
}

/// Result alias matching `serde_json::Result`.
pub type Result<T> = std::result::Result<T, Error>;

/// Serializes `value` as compact JSON text.
pub fn to_string<T: serde::Serialize>(value: &T) -> Result<String> {
    Ok(value.serialize_value().render_compact())
}

/// Serializes `value` as 2-space-indented JSON text.
pub fn to_string_pretty<T: serde::Serialize>(value: &T) -> Result<String> {
    Ok(value.serialize_value().render_pretty())
}

/// Parses JSON text into a `T`.
pub fn from_str<T: serde::Deserialize>(text: &str) -> Result<T> {
    let value = serde::value::parse(text).map_err(Error::from)?;
    T::deserialize_value(&value).map_err(Error::from)
}

/// Converts any serializable value into a [`Value`] tree.
pub fn to_value<T: serde::Serialize>(value: &T) -> Result<Value> {
    Ok(value.serialize_value())
}

/// Rebuilds a `T` from a [`Value`] tree.
pub fn from_value<T: serde::Deserialize>(value: Value) -> Result<T> {
    T::deserialize_value(&value).map_err(Error::from)
}

/// Builds a [`Value`] from a serializable expression.
///
/// Unlike real `serde_json::json!` this is not a full JSON-shaped DSL: it
/// accepts any expression implementing `Serialize` (scalars, strings,
/// vectors, derived types), which covers every call site in the workspace.
#[macro_export]
macro_rules! json {
    (null) => {
        $crate::Value::Null
    };
    ($e:expr) => {
        $crate::to_value(&$e).expect("json! value")
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_compact() {
        let v: Vec<u64> = vec![1, 2, 3];
        let text = to_string(&v).unwrap();
        assert_eq!(text, "[1,2,3]");
        let back: Vec<u64> = from_str(&text).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn json_macro_scalars() {
        assert_eq!(json!(2), Value::Number(Number::from_i64(2)));
        assert_eq!(json!("shard-7"), Value::String("shard-7".to_string()));
        assert_eq!(json!(null), Value::Null);
    }

    #[test]
    fn value_indexing() {
        let v: Value = serde::value::parse(r#"{"a": {"b": [10, 20]}}"#).unwrap();
        assert_eq!(v["a"]["b"][1].as_i64(), Some(20));
        assert_eq!(v["missing"].as_i64(), None);
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<Value>("{nope").is_err());
    }
}
